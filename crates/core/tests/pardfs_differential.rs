//! Differential testing of the work-stealing parallel proof-check DFS
//! against the sequential walk on randomly generated concurrent
//! programs: `--dfs-threads N` must be unobservable in verdicts, traces,
//! round counts and proof sizes; the scout must visit exactly the
//! sequential state set on proven rounds; and injected governor faults
//! mid-traversal may only degrade verdicts to give-ups, never flip them.

use automata::bitset::BitSet;
use automata::dfa::DfaBuilder;
use gemcutter::check::{check_proof, CheckConfig, CheckResult, CheckStats, UselessCache};
use gemcutter::govern::{FaultPlan, GovernorConfig};
use gemcutter::pardfs::{routed_check_proof, ParDfs};
use gemcutter::proof::ProofAutomaton;
use gemcutter::verify::{verify, Verdict, VerifierConfig};
use program::commutativity::{CommutativityLevel, CommutativityOracle};
use program::concurrent::{Program, Spec};
use program::stmt::{SimpleStmt, Statement};
use program::thread::{Thread, ThreadId};
use proptest::prelude::*;
use reduction::persistent::PersistentSets;
use smt::linear::LinExpr;
use smt::term::TermPool;

/// A random simple statement description: which variable (0..3, where
/// 0–1 are shared between threads) and what operation.
#[derive(Clone, Debug)]
struct StmtDesc {
    var: usize,
    op: u8, // 0: := k, 1: += 1, 2: havoc
}

fn stmt_desc() -> impl Strategy<Value = StmtDesc> {
    (0usize..4, 0u8..3).prop_map(|(var, op)| StmtDesc { var, op })
}

/// 2–3 threads with 1–3 statements each.
fn program_desc() -> impl Strategy<Value = Vec<Vec<StmtDesc>>> {
    proptest::collection::vec(proptest::collection::vec(stmt_desc(), 1..=3), 2..=3)
}

/// Builds the random program with an error guard `assume s0 > bound`
/// appended to thread 0, so the corpus mixes safe and unsafe instances.
fn build_program(pool: &mut TermPool, desc: &[Vec<StmtDesc>], bound: i128) -> Program {
    let mut b = Program::builder("random");
    let shared: Vec<_> = (0..2).map(|i| pool.var(&format!("s{i}"))).collect();
    for &v in &shared {
        b.add_global(v, 0);
    }
    let mut letters_per_thread = Vec::new();
    for (t, stmts) in desc.iter().enumerate() {
        let private: Vec<_> = (0..2).map(|i| pool.var(&format!("p{t}_{i}"))).collect();
        for &v in &private {
            b.add_global(v, 0);
        }
        let mut letters = Vec::new();
        for (s, d) in stmts.iter().enumerate() {
            let var = if d.var < 2 {
                shared[d.var]
            } else {
                private[d.var - 2]
            };
            let stmt = match d.op {
                0 => SimpleStmt::Assign(var, LinExpr::constant(s as i128)),
                1 => SimpleStmt::Assign(var, LinExpr::var(var).add(&LinExpr::constant(1))),
                _ => SimpleStmt::Havoc(var),
            };
            letters.push(b.add_statement(Statement::simple(
                ThreadId(t as u32),
                &format!("t{t}s{s}"),
                stmt,
                pool,
            )));
        }
        letters_per_thread.push(letters);
    }
    let le = pool.le_const(shared[0], bound);
    let violated = pool.not(le);
    let guard = b.add_statement(Statement::simple(
        ThreadId(0),
        "assert-fail",
        SimpleStmt::Assume(violated),
        pool,
    ));
    for (t, letters) in letters_per_thread.iter().enumerate() {
        let mut cfg = DfaBuilder::new();
        let mut prev = cfg.add_state(letters.is_empty());
        let entry = prev;
        for (i, &l) in letters.iter().enumerate() {
            let next = cfg.add_state(i + 1 == letters.len());
            cfg.add_transition(prev, l, next);
            prev = next;
        }
        let mut errors = BitSet::new(letters.len() + 2);
        if t == 0 {
            let err = cfg.add_state(false);
            cfg.add_transition(prev, guard, err);
            errors.insert(err.index());
        }
        b.add_thread(Thread::new("t", cfg.build(entry), errors));
    }
    b.build(pool)
}

/// `true` when one verdict proves the program safe while another reports
/// a bug — the only disagreement that matters; give-ups are fine.
fn contradiction(verdicts: &[Verdict]) -> bool {
    verdicts.iter().any(|v| matches!(v, Verdict::Correct))
        && verdicts
            .iter()
            .any(|v| matches!(v, Verdict::Incorrect { .. }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// End-to-end: verdict (including the counterexample trace), round
    /// count and proof size are identical at 1, 2 and 4 DFS workers.
    #[test]
    fn dfs_threads_are_unobservable(
        desc in program_desc(),
        bound in 0i128..4,
    ) {
        let mut reference = None;
        for threads in [1usize, 2, 4] {
            let mut pool = TermPool::new();
            let p = build_program(&mut pool, &desc, bound);
            let config = VerifierConfig::gemcutter_seq().with_dfs_threads(threads);
            let outcome = verify(&mut pool, &p, &config);
            let fp = (outcome.verdict, outcome.stats.rounds, outcome.stats.proof_size);
            match &reference {
                None => reference = Some(fp),
                Some(first) => prop_assert_eq!(
                    first, &fp,
                    "dfs-threads {} diverged ({:?}, bound {})", threads, desc, bound
                ),
            }
        }
    }

    /// Round-level: on a proven first round, the parallel scout visits
    /// exactly as many states as the sequential DFS — with useless-cache
    /// writes frozen, the visited set is schedule-independent, so equal
    /// counts over the same deduplicated key space mean equal sets. On
    /// counterexample rounds the scout stops early, so only the result
    /// kind is compared.
    #[test]
    fn scout_visits_the_sequential_state_set(
        desc in program_desc(),
        bound in 0i128..4,
    ) {
        let spec = Spec::ErrorOf(ThreadId(0));
        let config = CheckConfig {
            freeze_useless: true,
            ..CheckConfig::default()
        };

        let run_seq = || {
            let mut pool = TermPool::new();
            let p = build_program(&mut pool, &desc, bound);
            let order = VerifierConfig::gemcutter_seq().order.build();
            let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
            let persistent = PersistentSets::new(&mut pool, &p, &mut oracle);
            let mut proof = ProofAutomaton::new();
            let init = pool.and([p.init_formula(), p.pre()]);
            proof.initial_state(&mut pool, init);
            let mut useless = UselessCache::new();
            let mut stats = CheckStats::default();
            let r = check_proof(
                &mut pool, &p, spec, order.as_ref(), &mut oracle, Some(&persistent),
                &mut proof, &mut useless, &config, &mut stats,
            );
            (r, stats.visited)
        };
        let (seq_result, seq_visited) = run_seq();

        let mut pool = TermPool::new();
        let p = build_program(&mut pool, &desc, bound);
        let order = VerifierConfig::gemcutter_seq().order.build();
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
        let persistent = PersistentSets::new(&mut pool, &p, &mut oracle);
        let mut proof = ProofAutomaton::new();
        let init = pool.and([p.init_formula(), p.pre()]);
        proof.initial_state(&mut pool, init);
        let mut stats = CheckStats::default();
        let mut par = ParDfs::new(2);
        let par_result = par.check(
            &mut pool, &p, spec, order.as_ref(), &oracle, Some(&persistent),
            &proof, &config, &mut stats,
        );

        match (&seq_result, &par_result) {
            (CheckResult::Proven, CheckResult::Proven) => prop_assert_eq!(
                seq_visited, stats.visited,
                "scout visited a different state set on a proven round ({:?}, bound {})",
                desc, bound
            ),
            (CheckResult::Counterexample(_), CheckResult::Counterexample(_)) => {}
            (s, p2) => prop_assert!(
                false,
                "scout and sequential DFS disagree: {s:?} vs {p2:?} ({desc:?}, bound {bound})"
            ),
        }
    }

    /// Governor faults injected mid-traversal may turn a conclusive
    /// verdict into a give-up but never flip Correct vs Incorrect,
    /// regardless of the DFS worker count.
    #[test]
    fn injected_faults_cannot_flip_verdicts(
        desc in program_desc(),
        bound in 0i128..4,
        trip in 3u64..12,
    ) {
        let mut verdicts = Vec::new();
        // Unfaulted sequential ground truth, then faulted runs at 1 and
        // 2 workers. Only the canonical sequential pass charges
        // dfs-states (the scout polls the governor without counting), so
        // the fault fires at the same charge index at every thread count.
        let mut pool = TermPool::new();
        let p = build_program(&mut pool, &desc, bound);
        verdicts.push(verify(&mut pool, &p, &VerifierConfig::gemcutter_seq()).verdict);
        for threads in [1usize, 2] {
            let mut pool = TermPool::new();
            let p = build_program(&mut pool, &desc, bound);
            let config = VerifierConfig {
                govern: GovernorConfig {
                    fault_plan: FaultPlan::parse(&format!("dfs-states:{trip}:unknown"))
                        .expect("valid fault plan"),
                    ..GovernorConfig::default()
                },
                ..VerifierConfig::gemcutter_seq()
            }
            .with_dfs_threads(threads);
            verdicts.push(verify(&mut pool, &p, &config).verdict);
        }
        prop_assert!(
            !contradiction(&verdicts),
            "governor fault flipped a verdict: {verdicts:?} ({desc:?}, bound {bound})"
        );
    }
}

/// Regression: the canonical replay must get the *full* `max_visited`
/// budget. The scout folds its visited count into the round's stats, and
/// an earlier version let that count leak into the replay's
/// `stats.visited > max_visited` bound — so a round needing more than
/// about half the budget returned `LimitReached` at `--dfs-threads > 1`
/// while the sequential path proved it. `Spec::PrePost` with the trivial
/// post makes the round Proven under the empty proof, and the frozen
/// useless-cache makes the scout's visited set schedule-independent
/// (`scout_visits_the_sequential_state_set`), so clamping the budget to
/// *exactly* the sequential visited count is deterministic: the scout
/// fits, the replay fits — unless the scout's count eats the replay's
/// budget.
#[test]
fn replay_gets_the_full_visited_budget() {
    let desc = vec![
        vec![
            StmtDesc { var: 0, op: 1 },
            StmtDesc { var: 1, op: 0 },
            StmtDesc { var: 0, op: 1 },
        ],
        vec![
            StmtDesc { var: 0, op: 0 },
            StmtDesc { var: 1, op: 1 },
            StmtDesc { var: 2, op: 1 },
        ],
    ];
    let spec = Spec::PrePost;

    let run = |threads: usize, max_visited: usize| {
        let mut pool = TermPool::new();
        let p = build_program(&mut pool, &desc, 0);
        let order = VerifierConfig::gemcutter_seq().order.build();
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
        let persistent = PersistentSets::new(&mut pool, &p, &mut oracle);
        let mut proof = ProofAutomaton::new();
        let init = pool.and([p.init_formula(), p.pre()]);
        proof.initial_state(&mut pool, init);
        let mut useless = UselessCache::new();
        let mut par = None;
        let config = CheckConfig {
            freeze_useless: true,
            dfs_threads: threads,
            max_visited,
            ..CheckConfig::default()
        };
        let mut stats = CheckStats::default();
        let r = routed_check_proof(
            &mut pool,
            &p,
            spec,
            order.as_ref(),
            &mut oracle,
            Some(&persistent),
            &mut proof,
            &mut useless,
            &mut par,
            &config,
            &mut stats,
        );
        (r, stats)
    };

    let (seq_result, seq_stats) = run(1, usize::MAX);
    assert!(
        matches!(seq_result, CheckResult::Proven),
        "trivial-post round must prove, got {seq_result:?}"
    );
    assert!(seq_stats.visited > 0, "sequential walk visited no states");

    let (par_result, par_stats) = run(2, seq_stats.visited);
    assert!(
        matches!(par_result, CheckResult::Proven),
        "tight budget flipped the parallel round to {par_result:?} \
         (seq visited {}, par visited {})",
        seq_stats.visited,
        par_stats.visited
    );
    // Scout + replay over the same schedule-independent state set.
    assert_eq!(
        par_stats.visited,
        2 * seq_stats.visited,
        "scout or replay visited a different state set"
    );
}
