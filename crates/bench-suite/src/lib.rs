//! The benchmark corpus: CPL translations in the spirit of the two suites
//! the paper evaluates on (§8).
//!
//! * **SV-COMP-like** ([`svcomp`]): programs modeled on the
//!   *ConcurrencySafety* category — lock idioms, racy counters, flag
//!   synchronization — with both correct and buggy variants (the original
//!   suite is ~20 % correct / 80 % incorrect; this corpus keeps a similar
//!   skew of easy-bug programs).
//! * **Weaver-like** ([`weaver`]): programs needing nontrivial proof
//!   arguments (counting, lockstep invariants), almost all correct —
//!   stress tests for proof *finding*.
//!
//! Every benchmark is a plain CPL source string plus its ground-truth
//! verdict; [`generators`] additionally exposes the parametric families
//! used by the figures (most prominently the §2 bluetooth driver).

pub mod generators;

use smt::term::TermPool;

/// Ground truth for a benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expected {
    /// All assertions hold.
    Safe,
    /// Some assertion can fail.
    Unsafe,
}

/// Which suite a benchmark belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// SV-COMP ConcurrencySafety-like.
    SvComp,
    /// Weaver-like.
    Weaver,
}

/// A benchmark program.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Unique name, e.g. `"bluetooth-3"`.
    pub name: String,
    /// CPL source.
    pub source: String,
    /// Ground truth.
    pub expected: Expected,
    /// Suite membership.
    pub suite: Suite,
}

impl Benchmark {
    fn new(name: impl Into<String>, suite: Suite, expected: Expected, source: String) -> Benchmark {
        Benchmark {
            name: name.into(),
            source,
            expected,
            suite,
        }
    }

    /// Compiles the benchmark into a program.
    ///
    /// # Panics
    ///
    /// Panics if the source does not compile — corpus sources are tested.
    pub fn compile(&self, pool: &mut TermPool) -> program::Program {
        cpl::compile(&self.source, pool)
            .unwrap_or_else(|e| panic!("benchmark {} does not compile: {e}", self.name))
    }
}

/// The SV-COMP-like suite.
pub fn svcomp() -> Vec<Benchmark> {
    use generators::*;
    let mut out = Vec::new();
    for n in 1..=3 {
        out.push(Benchmark::new(
            format!("bluetooth-{n}"),
            Suite::SvComp,
            Expected::Safe,
            bluetooth(n),
        ));
    }
    for n in 1..=2 {
        out.push(Benchmark::new(
            format!("bluetooth-bug-{n}"),
            Suite::SvComp,
            Expected::Unsafe,
            bluetooth_buggy(n),
        ));
    }
    for n in 2..=4 {
        out.push(Benchmark::new(
            format!("counter-safe-{n}"),
            Suite::SvComp,
            Expected::Safe,
            shared_counter(n, 2, 2 * n as i128),
        ));
        out.push(Benchmark::new(
            format!("counter-bug-{n}"),
            Suite::SvComp,
            Expected::Unsafe,
            shared_counter(n, 2, 2 * n as i128 - 1),
        ));
    }
    for n in 2..=3 {
        out.push(Benchmark::new(
            format!("spinlock-{n}"),
            Suite::SvComp,
            Expected::Safe,
            spinlock(n, true),
        ));
        out.push(Benchmark::new(
            format!("race-{n}"),
            Suite::SvComp,
            Expected::Unsafe,
            spinlock(n, false),
        ));
    }
    out.push(Benchmark::new(
        "peterson",
        Suite::SvComp,
        Expected::Safe,
        peterson(true),
    ));
    out.push(Benchmark::new(
        "peterson-bug",
        Suite::SvComp,
        Expected::Unsafe,
        peterson(false),
    ));
    for k in [2, 4] {
        out.push(Benchmark::new(
            format!("prodcons-{k}"),
            Suite::SvComp,
            Expected::Safe,
            producer_consumer(k, true),
        ));
        out.push(Benchmark::new(
            format!("prodcons-bug-{k}"),
            Suite::SvComp,
            Expected::Unsafe,
            producer_consumer(k, false),
        ));
    }
    out.push(Benchmark::new(
        "fib-safe",
        Suite::SvComp,
        Expected::Safe,
        fib_bench(2, 8),
    ));
    out.push(Benchmark::new(
        "fib-bug",
        Suite::SvComp,
        Expected::Unsafe,
        fib_bench(2, 7),
    ));
    out.push(Benchmark::new(
        "split-rmw-bug",
        Suite::SvComp,
        Expected::Unsafe,
        split_read_modify_write(),
    ));
    out.push(Benchmark::new(
        "flag-handshake",
        Suite::SvComp,
        Expected::Safe,
        flag_handshake(),
    ));
    out.push(Benchmark::new(
        "flag-handshake-bug",
        Suite::SvComp,
        Expected::Unsafe,
        flag_handshake_buggy(),
    ));
    out.push(Benchmark::new(
        "dekker",
        Suite::SvComp,
        Expected::Safe,
        dekker(true),
    ));
    out.push(Benchmark::new(
        "dekker-bug",
        Suite::SvComp,
        Expected::Unsafe,
        dekker(false),
    ));
    for n in 1..=2 {
        out.push(Benchmark::new(
            format!("readers-writers-{n}"),
            Suite::SvComp,
            Expected::Safe,
            readers_writers(n, true),
        ));
        out.push(Benchmark::new(
            format!("readers-writers-bug-{n}"),
            Suite::SvComp,
            Expected::Unsafe,
            readers_writers(n, false),
        ));
    }
    out.push(Benchmark::new(
        "inc-dec",
        Suite::SvComp,
        Expected::Safe,
        inc_dec(2, true),
    ));
    out.push(Benchmark::new(
        "inc-dec-bug",
        Suite::SvComp,
        Expected::Unsafe,
        inc_dec(2, false),
    ));
    out.push(Benchmark::new(
        "dcl-init",
        Suite::SvComp,
        Expected::Safe,
        double_checked_init(true),
    ));
    out.push(Benchmark::new(
        "dcl-init-bug",
        Suite::SvComp,
        Expected::Unsafe,
        double_checked_init(false),
    ));
    out
}

/// The Weaver-like suite.
pub fn weaver() -> Vec<Benchmark> {
    use generators::*;
    let mut out = Vec::new();
    for n in 2..=4 {
        out.push(Benchmark::new(
            format!("count-up-down-{n}"),
            Suite::Weaver,
            Expected::Safe,
            count_up_down(n),
        ));
    }
    for n in 2..=4 {
        out.push(Benchmark::new(
            format!("parallel-add-{n}"),
            Suite::Weaver,
            Expected::Safe,
            parallel_add(n),
        ));
    }
    for n in 2..=3 {
        out.push(Benchmark::new(
            format!("lockstep-flags-{n}"),
            Suite::Weaver,
            Expected::Safe,
            lockstep_flags(n),
        ));
    }
    out.push(Benchmark::new(
        "ticket-lock",
        Suite::Weaver,
        Expected::Safe,
        ticket_lock(),
    ));
    out.push(Benchmark::new(
        "max-of-locals",
        Suite::Weaver,
        Expected::Safe,
        max_of_locals(3),
    ));
    for n in 2..=3 {
        out.push(Benchmark::new(
            format!("barrier-{n}"),
            Suite::Weaver,
            Expected::Safe,
            barrier(n, true),
        ));
    }
    // Weaver has exactly one incorrect program; mirror that.
    out.push(Benchmark::new(
        "count-up-down-bug",
        Suite::Weaver,
        Expected::Unsafe,
        count_up_down_buggy(2),
    ));
    out
}

/// The full corpus (SV-COMP-like followed by Weaver-like).
pub fn all() -> Vec<Benchmark> {
    let mut out = svcomp();
    out.extend(weaver());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_compiles() {
        for b in all() {
            let mut pool = TermPool::new();
            let p = b.compile(&mut pool);
            assert!(p.num_threads() >= 1, "{}", b.name);
            assert!(
                !p.asserting_threads().is_empty(),
                "{} has no asserts",
                b.name
            );
        }
    }

    #[test]
    fn corpus_names_unique() {
        let names: Vec<String> = all().into_iter().map(|b| b.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn suites_have_expected_shape() {
        let sv = svcomp();
        let wv = weaver();
        assert!(sv.len() >= 20, "{}", sv.len());
        assert!(wv.len() >= 10, "{}", wv.len());
        // Weaver: exactly one unsafe program (as in the paper).
        assert_eq!(
            wv.iter().filter(|b| b.expected == Expected::Unsafe).count(),
            1
        );
        // SV-COMP-like: a mix of safe and unsafe.
        assert!(sv.iter().any(|b| b.expected == Expected::Safe));
        assert!(sv.iter().any(|b| b.expected == Expected::Unsafe));
    }
}
