//! **§4.1 size study**: how the preference order affects the *optimal*
//! size of the reduction's finite representation. For each order, the
//! reduction automaton is built explicitly and then minimized (partition
//! refinement), factoring out construction artifacts like duplicated
//! sleep-set states — the fair comparison behind Thm 4.3's linear bound
//! and the exponential lower bounds discussed in §4.
//!
//! Run: `cargo run --release -p bench --bin reduction_size_study`

use automata::minimize::minimize;
use bench_suite::generators::{bluetooth, shared_counter};
use gemcutter::verify::OrderSpec;
use program::commutativity::{CommutativityLevel, CommutativityOracle};
use program::concurrent::Spec;
use reduction::reduce::{reduction_automaton, ReductionConfig};
use smt::term::TermPool;

fn study(name: &str, source: &str) {
    println!("-- {name} --");
    println!(
        "{:>12} {:>10} {:>12} {:>12}",
        "order", "reduction", "minimized", "product"
    );
    for order_spec in [
        OrderSpec::Seq,
        OrderSpec::Lockstep,
        OrderSpec::Random(1),
        OrderSpec::Random(2),
    ] {
        let mut pool = TermPool::new();
        let program = cpl::compile(source, &mut pool).expect("benchmark compiles");
        let spec = match program.asserting_threads().first() {
            Some(&t) => Spec::ErrorOf(t),
            None => Spec::PrePost,
        };
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
        let order = order_spec.build();
        let reduction = reduction_automaton(
            &mut pool,
            &program,
            spec,
            order.as_ref(),
            &mut oracle,
            ReductionConfig::default(),
        );
        let minimized = minimize(&reduction);
        let product = program.explicit_product(spec);
        println!(
            "{:>12} {:>10} {:>12} {:>12}",
            order.name(),
            reduction.num_states(),
            minimized.num_states(),
            product.num_states()
        );
    }
    println!();
}

fn main() {
    println!("Reduction representation sizes per preference order (§4.1)\n");
    study("bluetooth-2", &bluetooth(2));
    study("bluetooth-3", &bluetooth(3));
    study("counter-2x1", &shared_counter(2, 1, 2));
    study("counter-3x1", &shared_counter(3, 1, 3));
    println!("Observations (paper shape): the existence of a compact representation depends");
    println!("on the order; thread-uniform (seq) orders admit the smallest recognizers, while");
    println!("positional/random orders can pay for their better proofs with larger automata.");
}
