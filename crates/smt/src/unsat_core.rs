//! Deletion-based unsat cores.
//!
//! The refinement loop slices counterexample traces to the statements that
//! actually participate in the infeasibility (treating the rest as havoc),
//! which is what makes the generated Floyd/Hoare assertions small — the
//! `pendingIo ≥ C ∧ ¬stoppingEvent` family of the paper's §2 arises from
//! exactly this slicing. The core is computed by deletion: drop each
//! assertion in turn and keep it only if the rest becomes satisfiable.

use crate::solver::{check, SatResult};
use crate::term::{TermId, TermPool};

/// Computes a (locally minimal) unsat core of `assertions`.
///
/// Returns the *indices* of a subset whose conjunction is still
/// unsatisfiable, or `None` if the input is not proven unsatisfiable in the
/// first place (including `Unknown` verdicts).
///
/// The result is subset-minimal with respect to single deletions: removing
/// any one returned index makes the conjunction satisfiable or unknown.
///
/// # Example
///
/// ```
/// use smt::term::TermPool;
/// use smt::unsat_core::unsat_core;
///
/// let mut pool = TermPool::new();
/// let x = pool.var("x");
/// let y = pool.var("y");
/// let a = pool.ge_const(x, 5);   // relevant
/// let b = pool.le_const(y, 100); // irrelevant
/// let c = pool.le_const(x, 2);   // relevant
/// let core = unsat_core(&mut pool, &[a, b, c]).unwrap();
/// assert_eq!(core, vec![0, 2]);
/// ```
pub fn unsat_core(pool: &mut TermPool, assertions: &[TermId]) -> Option<Vec<usize>> {
    if !check(pool, assertions).is_unsat() {
        return None;
    }
    let mut kept: Vec<usize> = (0..assertions.len()).collect();
    let mut i = 0;
    while i < kept.len() {
        let candidate: Vec<TermId> = kept
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &k)| assertions[k])
            .collect();
        if matches!(check(pool, &candidate), SatResult::Unsat) {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    Some(kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_drops_irrelevant_assertions() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let noise: Vec<TermId> = (0..5)
            .map(|i| {
                let v = p.var(&format!("n{i}"));
                p.ge_const(v, i)
            })
            .collect();
        let mut assertions = noise.clone();
        assertions.push(p.eq_const(x, 1)); // index 5
        assertions.push(p.eq_const(x, 2)); // index 6
        let core = unsat_core(&mut p, &assertions).unwrap();
        assert_eq!(core, vec![5, 6]);
    }

    #[test]
    fn sat_input_has_no_core() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a = p.ge_const(x, 0);
        assert_eq!(unsat_core(&mut p, &[a]), None);
    }

    #[test]
    fn core_of_false_is_single() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a = p.ge_const(x, 0);
        let core = unsat_core(&mut p, &[a, TermPool::FALSE]).unwrap();
        assert_eq!(core, vec![1]);
    }

    #[test]
    fn core_through_disjunction() {
        let mut p = TermPool::new();
        let x = p.var("x");
        // (x ≤ 0 ∨ x ≥ 10), x ≥ 1, x ≤ 9: all three are needed.
        let low = p.le_const(x, 0);
        let high = p.ge_const(x, 10);
        let disj = p.or([low, high]);
        let a = p.ge_const(x, 1);
        let b = p.le_const(x, 9);
        let core = unsat_core(&mut p, &[disj, a, b]).unwrap();
        assert_eq!(core, vec![0, 1, 2]);
    }
}
