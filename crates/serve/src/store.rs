//! The crash-safe persistent proof store behind `seqver serve`.
//!
//! One text file holds everything a daemon wants back after a restart:
//! per-program **records** (fingerprint, definitive verdict, refinement
//! round count, and the harvested Floyd/Hoare assertions in their
//! pool-independent [`ExportedTerm`] text form) plus a bounded set of
//! exported **query-cache entries** that pre-warm the solver-level
//! memoization cache.
//!
//! Robustness contract:
//!
//! * **Atomic + durable writes** — the whole store is rendered and written
//!   through [`gemcutter::snapshot::write_atomic_durable`] after every
//!   served request (fsynced temp file, atomic rename, fsynced parent
//!   directory), so a `kill -9` or power cut leaves the previous complete
//!   store, never a torn one.
//! * **Per-record checksums** — every record and every query-cache entry
//!   carries an FNV-1a checksum over its own body *including the
//!   fingerprint/key*, so a flipped bit anywhere (even one that would
//!   re-home a record under the wrong program) drops exactly that entry.
//! * **Lenient loading** — [`ProofStore::open`] never panics and never
//!   fails: a missing file is a fresh store, a wrong version or missing
//!   `end` marker is a cold start, and a corrupt record is dropped with a
//!   warning while intact siblings survive. The worst corruption can do
//!   is cost warm starts.
//! * **Soundness regardless** — even a record that passes its checksum is
//!   only ever *advice*: assertions are re-validated by Hoare queries when
//!   seeded, query-cache `Sat` models are re-validated by evaluation, and
//!   a stored verdict is only served for an exact fingerprint match of a
//!   program this build already verified.

use gemcutter::snapshot::{fnv1a, write_atomic_durable};
use smt::qcache::CachedVerdict;
use smt::transfer::ExportedTerm;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// First line of a store file.
pub const STORE_HEADER: &str = "seqver-store v1";
/// Trailing completeness marker.
const FOOTER: &str = "end";

/// A definitive verdict worth persisting. `GaveUp` outcomes are
/// deliberately unrepresentable: they depend on the budgets of the run
/// that produced them, so replaying one from disk could mask a verdict a
/// better-resourced rerun would reach.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoredVerdict {
    Correct,
    /// The witness interleaving as statement letter indices.
    Incorrect(Vec<u32>),
}

impl StoredVerdict {
    fn to_line(&self) -> String {
        match self {
            StoredVerdict::Correct => "correct".to_owned(),
            StoredVerdict::Incorrect(trace) => {
                let letters: Vec<String> = trace.iter().map(u32::to_string).collect();
                format!("incorrect {}", letters.join(" "))
                    .trim_end()
                    .to_owned()
            }
        }
    }

    fn parse(s: &str) -> Result<StoredVerdict, String> {
        if s == "correct" {
            return Ok(StoredVerdict::Correct);
        }
        if let Some(trace) = s.strip_prefix("incorrect") {
            let letters: Result<Vec<u32>, _> = trace.split_whitespace().map(str::parse).collect();
            return letters
                .map(StoredVerdict::Incorrect)
                .map_err(|_| format!("invalid trace in stored verdict `{s}`"));
        }
        Err(format!("unknown stored verdict `{s}`"))
    }
}

/// One program's persisted result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreRecord {
    /// [`gemcutter::snapshot::program_fingerprint`] of the program.
    pub fingerprint: u64,
    /// Program name — the near-duplicate warm-start key: a resubmitted
    /// program whose fingerprint changed but whose name matches seeds
    /// from this record's assertions.
    pub name: String,
    pub verdict: StoredVerdict,
    /// Refinement rounds the original run took (reported on store hits).
    pub rounds: u64,
    /// Harvested proof assertions, discovery order.
    pub assertions: Vec<ExportedTerm>,
}

impl StoreRecord {
    /// The checksummed body: every line after the `record:` line through
    /// `end-record`, exactly as written.
    fn body(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name: {}\n", self.name.replace(['\n', '\r'], " ")));
        out.push_str(&format!("verdict: {}\n", self.verdict.to_line()));
        out.push_str(&format!("rounds: {}\n", self.rounds));
        for a in &self.assertions {
            out.push_str(&format!("assertion: {}\n", a.to_text()));
        }
        out.push_str("end-record\n");
        out
    }

    /// Checksum over fingerprint *and* body, so a bit flip in the
    /// `record:` header line (which would re-home the record under a
    /// different program) is caught exactly like one in the body.
    fn checksum(&self) -> u64 {
        fnv1a(format!("{:016x}\n{}", self.fingerprint, self.body()).as_bytes())
    }

    fn to_text(&self) -> String {
        format!(
            "record: {:016x} {:016x}\n{}",
            self.fingerprint,
            self.checksum(),
            self.body()
        )
    }

    /// Parses one record given its header fields and body lines.
    fn parse(fingerprint: u64, declared: u64, body: &str) -> Result<StoreRecord, String> {
        let actual = fnv1a(format!("{fingerprint:016x}\n{body}").as_bytes());
        if actual != declared {
            return Err(format!(
                "record {fingerprint:016x}: checksum mismatch (declared {declared:016x}, \
                 computed {actual:016x})"
            ));
        }
        let mut record = StoreRecord {
            fingerprint,
            name: String::new(),
            verdict: StoredVerdict::Correct,
            rounds: 0,
            assertions: Vec::new(),
        };
        let mut seen_verdict = false;
        for line in body.lines() {
            if line == "end-record" {
                break;
            }
            let (key, value) = line
                .split_once(": ")
                .ok_or_else(|| format!("malformed record line `{line}`"))?;
            match key {
                "name" => record.name = value.to_owned(),
                "verdict" => {
                    record.verdict = StoredVerdict::parse(value)?;
                    seen_verdict = true;
                }
                "rounds" => {
                    record.rounds = value
                        .parse()
                        .map_err(|_| format!("invalid rounds `{value}`"))?
                }
                "assertion" => record.assertions.push(ExportedTerm::parse(value)?),
                other => return Err(format!("unknown record key `{other}`")),
            }
        }
        if !seen_verdict {
            return Err(format!("record {fingerprint:016x} has no verdict"));
        }
        Ok(record)
    }
}

/// The in-memory store plus its optional backing file.
#[derive(Debug, Default)]
pub struct ProofStore {
    path: Option<PathBuf>,
    /// Insertion order, for stable rendering; at most one per fingerprint.
    records: Vec<StoreRecord>,
    by_fingerprint: HashMap<u64, usize>,
    qcache_entries: Vec<(ExportedTerm, CachedVerdict)>,
}

impl ProofStore {
    /// A store with no backing file (tests, `serve` without `--store`).
    pub fn in_memory() -> ProofStore {
        ProofStore::default()
    }

    /// Opens (or initializes) the store at `path`, leniently: the result
    /// is always usable, and every piece of the file that had to be
    /// dropped is described by a warning. Never panics, never errors.
    pub fn open(path: &Path) -> (ProofStore, Vec<String>) {
        let (mut store, warnings) = match std::fs::read_to_string(path) {
            Ok(text) => ProofStore::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                (ProofStore::default(), Vec::new())
            }
            Err(e) => (
                ProofStore::default(),
                vec![format!(
                    "cannot read store `{}`: {e}; starting cold",
                    path.display()
                )],
            ),
        };
        store.path = Some(path.to_path_buf());
        (store, warnings)
    }

    /// Parses a store file, dropping whatever does not verify. A bad
    /// header/version or a missing `end` marker (truncation — impossible
    /// under our own atomic writer, so the file is foreign or damaged)
    /// degrades to a fully cold store.
    pub fn parse(text: &str) -> (ProofStore, Vec<String>) {
        let mut store = ProofStore::default();
        let mut warnings = Vec::new();
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h == STORE_HEADER => {}
            Some(h) => {
                warnings.push(format!(
                    "unsupported store header `{h}` (this build reads `{STORE_HEADER}`); \
                     starting cold"
                ));
                return (store, warnings);
            }
            None => {
                warnings.push("empty store file; starting cold".to_owned());
                return (store, warnings);
            }
        }
        if !text.lines().any(|l| l == FOOTER) {
            warnings.push("store is truncated (no `end` marker); starting cold".to_owned());
            return (ProofStore::default(), warnings);
        }
        let mut complete = false;
        while let Some(line) = lines.next() {
            if complete {
                warnings.push("content after the `end` marker ignored".to_owned());
                break;
            }
            if line == FOOTER {
                complete = true;
                continue;
            }
            if let Some(header) = line.strip_prefix("record: ") {
                // Collect the body through `end-record`, then verify.
                let mut body = String::new();
                let mut closed = false;
                for body_line in lines.by_ref() {
                    body.push_str(body_line);
                    body.push('\n');
                    if body_line == "end-record" {
                        closed = true;
                        break;
                    }
                    if body_line == FOOTER || body_line.starts_with("record: ") {
                        break;
                    }
                }
                if !closed {
                    warnings.push(format!("unterminated record `{header}` dropped"));
                    // The inner scan may have consumed the footer; it was
                    // already sighted by the whole-file check above, so
                    // parsing simply ends here.
                    if body.contains(&format!("\n{FOOTER}\n"))
                        || body.ends_with(&format!("{FOOTER}\n"))
                    {
                        break;
                    }
                    continue;
                }
                match parse_record_header(header)
                    .and_then(|(fp, sum)| StoreRecord::parse(fp, sum, &body))
                {
                    Ok(record) => store.insert(record),
                    Err(e) => warnings.push(format!("store record dropped: {e}")),
                }
            } else if let Some(rest) = line.strip_prefix("qcache: ") {
                match parse_qcache_line(rest) {
                    Ok(entry) => store.qcache_entries.push(entry),
                    Err(e) => warnings.push(format!("store qcache entry dropped: {e}")),
                }
            } else {
                warnings.push(format!("unrecognized store line `{line}` ignored"));
            }
        }
        (store, warnings)
    }

    /// Renders the whole store.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(STORE_HEADER);
        out.push('\n');
        for record in &self.records {
            out.push_str(&record.to_text());
        }
        for (key, verdict) in &self.qcache_entries {
            let body = format!("{}\t{}", verdict.to_text(), key.to_text());
            out.push_str(&format!("qcache: {:016x} {body}\n", fnv1a(body.as_bytes())));
        }
        out.push_str(FOOTER);
        out.push('\n');
        out
    }

    /// Writes the store to its backing file atomically and durably; a
    /// no-op for in-memory stores.
    pub fn flush(&self) -> Result<(), String> {
        match &self.path {
            Some(path) => write_atomic_durable(path, &self.to_text()),
            None => Ok(()),
        }
    }

    /// Inserts (or replaces, by fingerprint) one record.
    pub fn insert(&mut self, record: StoreRecord) {
        match self.by_fingerprint.get(&record.fingerprint) {
            Some(&i) => self.records[i] = record,
            None => {
                self.by_fingerprint
                    .insert(record.fingerprint, self.records.len());
                self.records.push(record);
            }
        }
    }

    /// The record for an exact program fingerprint, if present.
    pub fn lookup(&self, fingerprint: u64) -> Option<&StoreRecord> {
        self.by_fingerprint
            .get(&fingerprint)
            .map(|&i| &self.records[i])
    }

    /// Warm-start seeds for a program that misses by fingerprint:
    /// assertions harvested from same-name records (near-duplicate
    /// programs — edited sources keep their name), deduped in discovery
    /// order. Sound to seed because every assertion is re-validated by
    /// Hoare queries on use.
    pub fn warm_assertions(&self, name: &str, fingerprint: u64) -> Vec<ExportedTerm> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for record in &self.records {
            if record.name == name && record.fingerprint != fingerprint {
                for a in &record.assertions {
                    if seen.insert(a.clone()) {
                        out.push(a.clone());
                    }
                }
            }
        }
        out
    }

    /// Replaces the persisted query-cache working set.
    pub fn set_qcache_entries(&mut self, entries: Vec<(ExportedTerm, CachedVerdict)>) {
        self.qcache_entries = entries;
    }

    /// The persisted query-cache entries (imported on startup).
    pub fn qcache_entries(&self) -> &[(ExportedTerm, CachedVerdict)] {
        &self.qcache_entries
    }

    /// All records, insertion order.
    pub fn records(&self) -> &[StoreRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

fn parse_record_header(header: &str) -> Result<(u64, u64), String> {
    let (fp, sum) = header
        .split_once(' ')
        .ok_or_else(|| format!("malformed record header `{header}`"))?;
    let fp = u64::from_str_radix(fp, 16).map_err(|_| format!("invalid fingerprint `{fp}`"))?;
    let sum = u64::from_str_radix(sum, 16).map_err(|_| format!("invalid checksum `{sum}`"))?;
    Ok((fp, sum))
}

fn parse_qcache_line(rest: &str) -> Result<(ExportedTerm, CachedVerdict), String> {
    let (sum, body) = rest
        .split_once(' ')
        .ok_or_else(|| format!("malformed qcache line `{rest}`"))?;
    let declared =
        u64::from_str_radix(sum, 16).map_err(|_| format!("invalid qcache checksum `{sum}`"))?;
    let actual = fnv1a(body.as_bytes());
    if declared != actual {
        return Err(format!(
            "qcache entry checksum mismatch (declared {declared:016x}, computed {actual:016x})"
        ));
    }
    let (verdict, key) = body
        .split_once('\t')
        .ok_or_else(|| format!("malformed qcache body `{body}`"))?;
    Ok((ExportedTerm::parse(key)?, CachedVerdict::parse(verdict)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt::linear::Rel;

    fn atom(name: &str, k: i128) -> ExportedTerm {
        ExportedTerm::Atom {
            coeffs: vec![(name.to_owned(), 1)],
            constant: k,
            rel: Rel::Le0,
        }
    }

    fn sample() -> ProofStore {
        let mut store = ProofStore::in_memory();
        store.insert(StoreRecord {
            fingerprint: 0x1111,
            name: "counter".into(),
            verdict: StoredVerdict::Correct,
            rounds: 7,
            assertions: vec![atom("x", -1), ExportedTerm::And(vec![atom("y", 2)])],
        });
        store.insert(StoreRecord {
            fingerprint: 0x2222,
            name: "counter-racy".into(),
            verdict: StoredVerdict::Incorrect(vec![0, 3, 1]),
            rounds: 2,
            assertions: vec![],
        });
        store.set_qcache_entries(vec![
            (atom("z", 5), CachedVerdict::Unsat),
            (atom("w", -3), CachedVerdict::Sat(vec![("w".into(), 3)])),
        ]);
        store
    }

    #[test]
    fn round_trip_is_identity() {
        let store = sample();
        let (reparsed, warnings) = ProofStore::parse(&store.to_text());
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(reparsed.records(), store.records());
        assert_eq!(reparsed.qcache_entries(), store.qcache_entries());
    }

    #[test]
    fn lookup_and_warm_assertions() {
        let mut store = sample();
        assert_eq!(store.lookup(0x1111).unwrap().rounds, 7);
        assert!(store.lookup(0x9999).is_none());
        // Same-name record with a different fingerprint contributes seeds.
        assert_eq!(store.warm_assertions("counter", 0xdead).len(), 2);
        // ... but an exact-fingerprint match does not (it is a store hit).
        assert!(store.warm_assertions("counter", 0x1111).is_empty());
        // Replacement by fingerprint, not duplication.
        store.insert(StoreRecord {
            fingerprint: 0x1111,
            name: "counter".into(),
            verdict: StoredVerdict::Correct,
            rounds: 9,
            assertions: vec![],
        });
        assert_eq!(store.len(), 2);
        assert_eq!(store.lookup(0x1111).unwrap().rounds, 9);
    }

    #[test]
    fn corrupt_records_are_dropped_not_fatal() {
        let store = sample();
        let text = store.to_text();
        // Flip a byte inside the first record's body.
        let idx = text.find("rounds: 7").unwrap() + "rounds: ".len();
        let mut bytes = text.clone().into_bytes();
        bytes[idx] = b'8';
        let (reparsed, warnings) = ProofStore::parse(std::str::from_utf8(&bytes).unwrap());
        assert_eq!(reparsed.len(), 1, "only the damaged record is dropped");
        assert!(reparsed.lookup(0x1111).is_none());
        assert!(reparsed.lookup(0x2222).is_some());
        assert!(!warnings.is_empty());
    }

    #[test]
    fn truncation_and_bad_versions_cold_start() {
        let text = sample().to_text();
        for corrupt in [
            &text[..text.len() - 5],   // missing `end`
            &text[..text.len() / 2],   // cut mid-record
            "",                        // empty
            "seqver-store v99\nend\n", // future version
            "not a store at all\n",    // garbage
        ] {
            let (store, warnings) = ProofStore::parse(corrupt);
            assert!(store.is_empty(), "cold start expected for {corrupt:?}");
            assert!(store.qcache_entries().is_empty());
            assert!(!warnings.is_empty(), "warning expected for {corrupt:?}");
        }
    }

    #[test]
    fn flipped_fingerprint_is_caught() {
        // A bit flip in the record header would re-home the record under a
        // different program; the checksum covers the fingerprint.
        let text = sample().to_text();
        let flipped = text.replacen("record: 0000000000001111", "record: 0000000000001119", 1);
        let (store, warnings) = ProofStore::parse(&flipped);
        assert!(
            store.lookup(0x1119).is_none(),
            "re-homed record must not load"
        );
        assert!(store.lookup(0x1111).is_none());
        assert!(warnings.iter().any(|w| w.contains("checksum")));
    }

    #[test]
    fn corrupt_qcache_entries_are_dropped() {
        let text = sample().to_text();
        let broken = text.replacen("qcache: ", "qcache: 0000000000000000 x ", 1);
        let (store, warnings) = ProofStore::parse(&broken);
        assert!(store.qcache_entries().len() < 2);
        assert!(!warnings.is_empty());
    }

    #[test]
    fn open_missing_file_is_fresh_and_flush_round_trips() {
        let dir = std::env::temp_dir().join(format!("seqver-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("proofs.store");
        let (mut store, warnings) = ProofStore::open(&path);
        assert!(store.is_empty() && warnings.is_empty());
        store.insert(StoreRecord {
            fingerprint: 42,
            name: "p".into(),
            verdict: StoredVerdict::Correct,
            rounds: 1,
            assertions: vec![atom("x", 0)],
        });
        store.flush().unwrap();
        let (reopened, warnings) = ProofStore::open(&path);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(reopened.records(), store.records());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
