//! CDCL(T) search over monotone formulas: two-watched-literal propagation,
//! 1UIP clause learning, non-chronological backjumping, VSIDS-style
//! activity, geometric restarts, and theory propagation against a
//! persistent [`IncrementalSimplex`].
//!
//! The pool's formulas are negation-free (see [`crate::term`]), so the
//! encoding is a *one-directional* Tseitin transform: every gate `g`
//! only gets the clauses saying `g → children` (`(¬g ∨ cᵢ)` for `∧`,
//! `(¬g ∨ c₁ ∨ … ∨ cₖ)` for `∨`). Setting a variable false merely
//! declines to use that subformula, which is always sound for a monotone
//! root asserted as a positive unit. The theory only ever sees atoms
//! assigned *true*.
//!
//! Assertion provenance is threaded through the run: every input clause
//! carries the indices of the assertions it came from, learned clauses
//! union the origins of everything resolved, and literals fixed at
//! decision level 0 memoize their own origin closure eagerly
//! ([`CdclSolver::enqueue`]) so the final `Unsat` answer names a sound
//! (often small) subset of the input — the raw material for
//! [`crate::unsat_core`] minimization under the CDCL engine.
//!
//! Governor charges: one [`Category::DpllDecisions`] at solve entry and
//! per decision (mirroring the legacy recursion's per-node charge so
//! existing budgets and `FaultPlan`s stay meaningful), one
//! [`Category::CdclConflicts`] per conflict analysis, and
//! [`Category::SimplexPivots`] inside the incremental theory checks.

use crate::lia::{check_integer_governed, LiaResult};
use crate::linear::{LinearConstraint, VarId};
use crate::resource::{Category, ResourceGovernor};
use crate::simplex::{IncrementalSimplex, SimplexMark, TheoryResult};
use crate::term::{Term, TermId, TermPool};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A boolean variable of the CDCL encoding (atom or gate).
pub type BVar = u32;

/// A literal: variable plus sign, packed as `var << 1 | negated`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: BVar) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: BVar) -> Lit {
        Lit(v << 1 | 1)
    }

    /// `v` with explicit sign (`true` = positive).
    pub fn new(v: BVar, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> BVar {
        self.0 >> 1
    }

    /// `true` for a positive literal.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index (for watch lists).
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_pos() { "+" } else { "-" }, self.var())
    }
}

/// A clause in the database.
#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    /// Sorted assertion indices this clause's validity depends on
    /// (empty for gate definitions and theory lemmas).
    origins: Vec<u32>,
    /// Assertion-scope depth at which the clause was added; popped with
    /// the scope. Theory lemmas use scope 0: they are valid outright.
    scope: u32,
    learned: bool,
    theory: bool,
}

/// Introspection view of one clause (for the internals test battery).
#[derive(Clone, Debug)]
pub struct ClauseInfo {
    /// The literals, watch order first.
    pub lits: Vec<Lit>,
    /// Assertion indices the clause depends on.
    pub origins: Vec<u32>,
    /// Learned by conflict analysis.
    pub learned: bool,
    /// Produced by the theory (simplex conflict, bound clash, blocking).
    pub theory: bool,
}

/// Outcome of a [`CdclSolver::solve`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CdclOutcome {
    /// Satisfiable, with an integer model of the true atoms.
    Sat(HashMap<VarId, i128>),
    /// Unsatisfiable; `origins` is a sound subset of the assertion
    /// indices whose conjunction is already unsatisfiable.
    Unsat {
        /// Sorted assertion indices supporting the refutation.
        origins: Vec<u32>,
    },
    /// Budget exhausted, governor tripped, or arithmetic overflow.
    Unknown,
}

/// Counters and invariant-violation tallies collected when auditing is
/// enabled ([`CdclSolver::enable_audit`]). The internals test battery
/// asserts the violation counts stay zero.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Backjumps performed (audited points).
    pub backjumps: u64,
    /// Conflict-free fixpoints at which the strong watch invariant was
    /// checked.
    pub fixpoint_checks: u64,
    /// Strong-invariant violations: a false watch whose partner watch
    /// was not true at a conflict-free fixpoint.
    pub watch_violations: u64,
    /// Structural violations: a clause not registered on exactly its
    /// first two literals' watch lists.
    pub structure_violations: u64,
    /// Trail-shape violations: decision levels not monotone or not
    /// matching the `trail_lim` blocks.
    pub trail_violations: u64,
    /// Learned clauses recorded.
    pub learned: u64,
    /// Learned clauses that were not asserting right after the backjump
    /// (must stay 0 for 1UIP).
    pub non_asserting_learned: u64,
    /// Theory lemmas (conflict explanations, bound clashes, blockings).
    pub theory_lemmas: u64,
    /// Restarts performed.
    pub restarts: u64,
}

/// Geometric restart schedule: first restart after this many conflicts.
const RESTART_FIRST: u64 = 100;
/// Activity decay per conflict (`var_inc /= VAR_DECAY`).
const VAR_DECAY: f64 = 0.95;

/// A CDCL(T) solver instance over one [`TermPool`]'s terms.
///
/// The solver is persistent: the clause database, variable activities,
/// theory lemmas, and the incremental-simplex tableau all survive across
/// [`CdclSolver::solve`] calls, and [`CdclSolver::push_scope`] /
/// [`CdclSolver::pop_scope`] retract assertions without losing what was
/// learned below the popped scope. This is what `solver::AssertionScope`
/// builds its warm batteries on.
#[derive(Clone, Debug, Default)]
pub struct CdclSolver {
    // ---- encoding ----
    var_of: HashMap<TermId, BVar>,
    /// Definition-emission scope per term: popped entries are re-encoded
    /// (their gate clauses were retracted with the scope).
    encoded: HashMap<TermId, u32>,
    /// `Some(constraint)` for atom variables, `None` for gates.
    atom: Vec<Option<LinearConstraint>>,
    // ---- clause database ----
    clauses: Vec<Clause>,
    /// Assertions that normalized to `false`: `(scope, origins)`.
    empty_clauses: Vec<(u32, Vec<u32>)>,
    /// Watch lists indexed by [`Lit::code`].
    watches: Vec<Vec<u32>>,
    // ---- assignment ----
    assign: Vec<Option<bool>>,
    /// Saved phases (default `true`: monotone formulas like atoms on).
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    /// Eager origin closure for level-0 assignments.
    l0_origins: Vec<Vec<u32>>,
    /// Max clause scope used to derive each level-0 assignment.
    l0_scope: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    head: usize,
    theory_head: usize,
    /// Vars relevant to the current assertions (recomputed per solve).
    active: Vec<bool>,
    // ---- theory ----
    simplex: IncrementalSimplex,
    /// Simplex checkpoints taken at each decision level, parallel to
    /// `trail_lim`.
    level_marks: Vec<SimplexMark>,
    // ---- heuristics ----
    activity: Vec<f64>,
    var_inc: f64,
    conflicts: u64,
    restarts: u64,
    scope: u32,
    audit: Option<AuditReport>,
}

enum Candidate {
    Sat(HashMap<VarId, i128>),
    Block(u32),
    Unknown,
}

impl CdclSolver {
    /// An empty solver.
    pub fn new() -> CdclSolver {
        CdclSolver {
            var_inc: 1.0,
            ..CdclSolver::default()
        }
    }

    /// Number of boolean variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// The LIA atom carried by `v`, if `v` encodes an atom.
    pub fn atom_constraint(&self, v: BVar) -> Option<&LinearConstraint> {
        self.atom[v as usize].as_ref()
    }

    /// Total conflicts analyzed over the solver's lifetime.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Total restarts over the solver's lifetime.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Rows in the warm simplex tableau (introspection).
    pub fn tableau_rows(&self) -> usize {
        self.simplex.num_rows()
    }

    /// Starts collecting an [`AuditReport`].
    pub fn enable_audit(&mut self) {
        self.audit = Some(AuditReport::default());
    }

    /// The audit collected so far, if enabled.
    pub fn audit_report(&self) -> Option<&AuditReport> {
        self.audit.as_ref()
    }

    /// Snapshot of the clause database (for the internals tests).
    pub fn clause_infos(&self) -> Vec<ClauseInfo> {
        self.clauses
            .iter()
            .map(|c| ClauseInfo {
                lits: c.lits.clone(),
                origins: c.origins.clone(),
                learned: c.learned,
                theory: c.theory,
            })
            .collect()
    }

    // ---- scopes ----------------------------------------------------------

    /// Opens a retractable assertion level.
    pub fn push_scope(&mut self) {
        self.scope += 1;
    }

    /// Retracts every assertion (and every clause *derived under* an
    /// assertion) added since the matching [`CdclSolver::push_scope`].
    /// Theory lemmas are valid outright and survive: that is the
    /// cross-query learning the scope engine exists for.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open or a search is mid-flight.
    pub fn pop_scope(&mut self) {
        assert!(self.scope > 0, "pop_scope without a matching push_scope");
        assert!(self.trail.is_empty(), "pop_scope during an active search");
        self.scope -= 1;
        let s = self.scope;
        self.clauses.retain(|c| c.scope <= s);
        self.empty_clauses.retain(|(cs, _)| *cs <= s);
        self.encoded.retain(|_, es| *es <= s);
        self.rebuild_watches();
    }

    fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        let pairs: Vec<(u32, usize, usize)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.lits.len() >= 2)
            .map(|(i, c)| (i as u32, c.lits[0].code(), c.lits[1].code()))
            .collect();
        for (i, a, b) in pairs {
            self.watches[a].push(i);
            self.watches[b].push(i);
        }
    }

    // ---- encoding --------------------------------------------------------

    fn new_bvar(&mut self, atom: Option<LinearConstraint>) -> BVar {
        let v = self.assign.len() as BVar;
        self.assign.push(None);
        self.phase.push(true);
        self.level.push(0);
        self.reason.push(None);
        self.l0_origins.push(Vec::new());
        self.l0_scope.push(0);
        self.activity.push(0.0);
        self.atom.push(atom);
        self.active.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    fn var_for(&mut self, t: TermId, atom: Option<LinearConstraint>) -> BVar {
        if let Some(&v) = self.var_of.get(&t) {
            return v;
        }
        let v = self.new_bvar(atom);
        self.var_of.insert(t, v);
        v
    }

    /// One-directional Tseitin encoding of `t`; returns its variable.
    /// Gate definitions are (re-)emitted at the current scope if a pop
    /// retracted them.
    fn encode(&mut self, pool: &TermPool, t: TermId) -> BVar {
        if self.encoded.contains_key(&t) {
            return self.var_of[&t];
        }
        match pool.term(t).clone() {
            Term::Atom(c) => {
                let v = self.var_for(t, Some(c));
                self.encoded.insert(t, 0);
                v
            }
            Term::And(children) => {
                let kids: Vec<BVar> = children.iter().map(|&c| self.encode(pool, c)).collect();
                let g = self.var_for(t, None);
                let scope = self.scope;
                for k in kids {
                    self.add_clause(
                        vec![Lit::neg(g), Lit::pos(k)],
                        Vec::new(),
                        scope,
                        false,
                        false,
                    );
                }
                self.encoded.insert(t, scope);
                g
            }
            Term::Or(children) => {
                let kids: Vec<BVar> = children.iter().map(|&c| self.encode(pool, c)).collect();
                let g = self.var_for(t, None);
                let scope = self.scope;
                let mut lits = Vec::with_capacity(kids.len() + 1);
                lits.push(Lit::neg(g));
                lits.extend(kids.into_iter().map(Lit::pos));
                self.add_clause(lits, Vec::new(), scope, false, false);
                self.encoded.insert(t, scope);
                g
            }
            // The pool's smart constructors never leave `⊤`/`⊥` inside a
            // gate; top-level constants are handled by `add_assertion`.
            Term::True | Term::False => unreachable!("constant below a gate"),
        }
    }

    /// Asserts `t` (at the current scope) tagged with assertion index
    /// `origin`; origins flow into learned clauses and the final
    /// [`CdclOutcome::Unsat`] answer.
    pub fn add_assertion(&mut self, pool: &TermPool, t: TermId, origin: u32) {
        match pool.term(t) {
            Term::True => {}
            Term::False => self.empty_clauses.push((self.scope, vec![origin])),
            _ => {
                let root = self.encode(pool, t);
                let scope = self.scope;
                self.add_clause(vec![Lit::pos(root)], vec![origin], scope, false, false);
            }
        }
    }

    fn add_clause(
        &mut self,
        lits: Vec<Lit>,
        mut origins: Vec<u32>,
        scope: u32,
        learned: bool,
        theory: bool,
    ) -> u32 {
        debug_assert!(!lits.is_empty());
        origins.sort_unstable();
        origins.dedup();
        let idx = self.clauses.len() as u32;
        if lits.len() >= 2 {
            self.watches[lits[0].code()].push(idx);
            self.watches[lits[1].code()].push(idx);
        }
        self.clauses.push(Clause {
            lits,
            origins,
            scope,
            learned,
            theory,
        });
        idx
    }

    // ---- assignment primitives ------------------------------------------

    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var() as usize].map(|b| if l.is_pos() { b } else { !b })
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        let v = l.var() as usize;
        debug_assert!(self.assign[v].is_none(), "enqueue of an assigned var");
        self.assign[v] = Some(l.is_pos());
        self.phase[v] = l.is_pos();
        let lvl = self.current_level();
        self.level[v] = lvl;
        self.reason[v] = reason;
        if lvl == 0 {
            // Eager origin closure: a level-0 literal's support is its
            // reason clause's origins plus the (already closed) supports
            // of the clause's other literals. Decisions never happen at
            // level 0, so a reason always exists.
            let ci = reason.expect("level-0 assignments are implied");
            let (c_lits, mut org, mut sc) = {
                let c = &self.clauses[ci as usize];
                (c.lits.clone(), c.origins.clone(), c.scope)
            };
            for q in c_lits {
                if q.var() != l.var() {
                    merge_origins(&mut org, &self.l0_origins[q.var() as usize]);
                    sc = sc.max(self.l0_scope[q.var() as usize]);
                }
            }
            self.l0_origins[v] = org;
            self.l0_scope[v] = sc;
        }
        self.trail.push(l);
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
        self.level_marks.push(self.simplex.mark());
    }

    /// Backjumps to `target`, unassigning everything above it, resetting
    /// the propagation head to 0 (full-trail rescan: this is what keeps
    /// the watch invariant self-healing after lemma attachment), and
    /// retracting the theory bounds asserted above `target`.
    fn backtrack(&mut self, target: u32) {
        if self.current_level() <= target {
            return;
        }
        let keep = self.trail_lim[target as usize];
        for &l in &self.trail[keep..] {
            let v = l.var() as usize;
            self.assign[v] = None;
            self.reason[v] = None;
        }
        self.trail.truncate(keep);
        self.simplex.undo_to(self.level_marks[target as usize]);
        self.trail_lim.truncate(target as usize);
        self.level_marks.truncate(target as usize);
        self.head = 0;
        self.theory_head = self.theory_head.min(keep);
    }

    /// Clears the whole search state (including level 0) so the solver
    /// can be reused; bounds asserted during this solve are retracted
    /// back to `solve_mark`.
    fn reset_search(&mut self, solve_mark: SimplexMark) {
        self.backtrack(0);
        for &l in &self.trail.clone() {
            let v = l.var() as usize;
            self.assign[v] = None;
            self.reason[v] = None;
            self.l0_origins[v].clear();
            self.l0_scope[v] = 0;
        }
        self.trail.clear();
        self.head = 0;
        self.theory_head = 0;
        self.simplex.undo_to(solve_mark);
    }

    // ---- propagation -----------------------------------------------------

    /// Boolean unit propagation from `head`; returns a conflicting
    /// clause index, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.head < self.trail.len() {
            let p = self.trail[self.head];
            self.head += 1;
            let false_lit = p.negate();
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                let cu = ci as usize;
                if self.clauses[cu].lits[0] == false_lit {
                    self.clauses[cu].lits.swap(0, 1);
                }
                let w0 = self.clauses[cu].lits[0];
                if self.lit_value(w0) == Some(true) {
                    i += 1;
                    continue;
                }
                let mut moved = false;
                for k in 2..self.clauses[cu].lits.len() {
                    let lk = self.clauses[cu].lits[k];
                    if self.lit_value(lk) != Some(false) {
                        self.clauses[cu].lits.swap(1, k);
                        self.watches[lk.code()].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    ws.swap_remove(i);
                    continue;
                }
                match self.lit_value(w0) {
                    Some(false) => {
                        self.watches[false_lit.code()] = ws;
                        return Some(ci);
                    }
                    _ => {
                        self.enqueue(w0, Some(ci));
                        i += 1;
                    }
                }
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    /// Runs boolean and theory propagation to a joint fixpoint.
    ///
    /// `Ok(Some(ci))` is a conflicting clause (possibly a freshly added
    /// theory lemma whose literals are all currently false);
    /// `Err(())` means the theory gave up (overflow / tripped governor).
    fn propagate_full(&mut self, governor: &ResourceGovernor) -> Result<Option<u32>, ()> {
        loop {
            if let Some(ci) = self.propagate() {
                return Ok(Some(ci));
            }
            // Assert newly-true atoms into the warm tableau.
            let mut new_atoms = false;
            while self.theory_head < self.trail.len() {
                let l = self.trail[self.theory_head];
                self.theory_head += 1;
                if !l.is_pos() {
                    continue;
                }
                let c = match self.atom[l.var() as usize].clone() {
                    Some(c) => c,
                    None => continue,
                };
                new_atoms = true;
                match self.simplex.assert_constraint(&c, l.var()) {
                    TheoryResult::Ok => {}
                    TheoryResult::Conflict(tags) => return Ok(Some(self.theory_lemma(tags))),
                    TheoryResult::Unknown => return Err(()),
                }
            }
            if new_atoms {
                match self.simplex.check(governor) {
                    TheoryResult::Ok => {}
                    TheoryResult::Conflict(tags) => return Ok(Some(self.theory_lemma(tags))),
                    TheoryResult::Unknown => return Err(()),
                }
            }
            // Cheap theory propagation: an unassigned atom whose bound
            // already clashes with an asserted one is forced false via a
            // binary lemma — this is what prunes the boolean search on
            // LIA-level contradictions before any decision tries them.
            let mut propagated = false;
            for v in 0..self.num_vars() {
                if !self.active[v] || self.assign[v].is_some() {
                    continue;
                }
                let c = match self.atom[v].clone() {
                    Some(c) => c,
                    None => continue,
                };
                if let Some(owner) = self.simplex.bound_clash(&c) {
                    let lits = vec![Lit::neg(v as BVar), Lit::neg(owner)];
                    let idx = self.add_clause(lits, Vec::new(), 0, false, true);
                    if let Some(a) = self.audit.as_mut() {
                        a.theory_lemmas += 1;
                    }
                    self.enqueue(Lit::neg(v as BVar), Some(idx));
                    propagated = true;
                }
            }
            if !propagated && self.head >= self.trail.len() && self.theory_head >= self.trail.len()
            {
                return Ok(None);
            }
        }
    }

    /// Turns a simplex conflict (tags = atom vars) into a theory lemma
    /// clause `¬a₁ ∨ … ∨ ¬aₖ` at scope 0 and returns its index. All its
    /// literals are currently false, so it is a conflict clause.
    fn theory_lemma(&mut self, tags: Vec<u32>) -> u32 {
        let lits: Vec<Lit> = tags.into_iter().map(Lit::neg).collect();
        if let Some(a) = self.audit.as_mut() {
            a.theory_lemmas += 1;
        }
        self.add_clause(lits, Vec::new(), 0, false, true)
    }

    // ---- conflict analysis ----------------------------------------------

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// 1UIP analysis of the conflicting clause `ci`. Requires the
    /// current level to be > 0 and to contain at least one literal of
    /// `ci`. Returns `(learnt, origins, scope, backjump_level)` with the
    /// asserting literal at `learnt[0]` and the backjump-level literal
    /// (if any) at `learnt[1]`.
    fn analyze(&mut self, ci: u32) -> (Vec<Lit>, Vec<u32>, u32, u32) {
        let cur = self.current_level();
        debug_assert!(cur > 0);
        let mut seen = vec![false; self.num_vars()];
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // slot for the UIP
        let mut origins: Vec<u32> = Vec::new();
        let mut scope = 0u32;
        let mut counter = 0usize;
        let mut idx = self.trail.len();
        let mut clause = ci;
        loop {
            let (c_lits, c_org, c_sc) = {
                let c = &self.clauses[clause as usize];
                (c.lits.clone(), c.origins.clone(), c.scope)
            };
            merge_origins(&mut origins, &c_org);
            scope = scope.max(c_sc);
            for q in c_lits {
                let v = q.var() as usize;
                if seen[v] {
                    continue;
                }
                seen[v] = true;
                let lvl = self.level[v];
                if lvl == 0 {
                    // Fold the literal's memoized origin closure instead
                    // of resolving further: this is how learned clauses
                    // keep sound antecedent tracking through facts fixed
                    // before any decision.
                    let l0 = self.l0_origins[v].clone();
                    merge_origins(&mut origins, &l0);
                    scope = scope.max(self.l0_scope[v]);
                } else {
                    self.bump(v);
                    if lvl >= cur {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next literal to resolve on.
            // Only current-level entries can be marked ahead of us, so
            // the scan never escapes the current decision block.
            loop {
                idx -= 1;
                if seen[self.trail[idx].var() as usize] {
                    break;
                }
            }
            counter -= 1;
            let p = self.trail[idx];
            if counter == 0 {
                learnt[0] = p.negate();
                break;
            }
            clause = self.reason[p.var() as usize].expect("implied literal at conflict level");
        }
        let beta = if learnt.len() == 1 {
            0
        } else {
            let mut mi = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var() as usize] > self.level[learnt[mi].var() as usize] {
                    mi = k;
                }
            }
            learnt.swap(1, mi);
            self.level[learnt[1].var() as usize]
        };
        (learnt, origins, scope, beta)
    }

    /// Origins supporting a level-0 conflict on clause `ci`: the
    /// clause's own origins plus the closure of each falsified literal.
    fn final_origins(&self, ci: u32) -> Vec<u32> {
        let c = &self.clauses[ci as usize];
        let mut o = c.origins.clone();
        for &l in &c.lits {
            merge_origins(&mut o, &self.l0_origins[l.var() as usize]);
        }
        o
    }

    // ---- search ----------------------------------------------------------

    /// Marks the variables reachable from the current assertions through
    /// gate definitions; only these are branched on.
    fn recompute_active(&mut self) {
        let n = self.num_vars();
        let mut active = vec![false; n];
        let mut queue: Vec<BVar> = Vec::new();
        let mut edges: HashMap<BVar, Vec<BVar>> = HashMap::new();
        for c in &self.clauses {
            if c.learned || c.theory {
                continue;
            }
            if c.lits.len() == 1 {
                if c.lits[0].is_pos() {
                    queue.push(c.lits[0].var());
                }
                continue;
            }
            // Gate definition: exactly one negative literal (the gate).
            let mut gate = None;
            let mut negs = 0;
            for &l in &c.lits {
                if !l.is_pos() {
                    negs += 1;
                    gate = Some(l.var());
                }
            }
            if negs == 1 {
                let g = gate.expect("counted");
                edges
                    .entry(g)
                    .or_default()
                    .extend(c.lits.iter().filter(|l| l.is_pos()).map(|l| l.var()));
            }
        }
        while let Some(v) = queue.pop() {
            if active[v as usize] {
                continue;
            }
            active[v as usize] = true;
            if let Some(kids) = edges.get(&v) {
                queue.extend(kids.iter().copied());
            }
        }
        self.active = active;
    }

    fn pick_branch(&self) -> Option<BVar> {
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars() {
            if !self.active[v] || self.assign[v].is_some() {
                continue;
            }
            best = match best {
                None => Some(v),
                Some(b) if self.activity[v] > self.activity[b] => Some(v),
                keep => keep,
            };
        }
        best.map(|v| v as BVar)
    }

    /// All active variables are assigned and propagation is at a
    /// conflict-free fixpoint: decide Sat via the warm rational model or
    /// branch-and-bound, or block this boolean solution.
    fn candidate(&mut self, governor: &ResourceGovernor, bb_budget: usize) -> Candidate {
        let mut cs: Vec<LinearConstraint> = Vec::new();
        let mut true_atoms: Vec<BVar> = Vec::new();
        for &l in &self.trail {
            if !l.is_pos() {
                continue;
            }
            if let Some(c) = &self.atom[l.var() as usize] {
                cs.push(c.clone());
                true_atoms.push(l.var());
            }
        }
        // Re-establish tableau feasibility first: a conflict-triggered
        // backjump can leave `beta` violating a basic bound that is
        // still asserted (the bounds themselves are feasible — they were
        // checked before the popped decision — but the assignment is
        // stale until the next pivot pass).
        match self.simplex.check(governor) {
            TheoryResult::Ok => {}
            TheoryResult::Conflict(tags) => return Candidate::Block(self.theory_lemma(tags)),
            TheoryResult::Unknown => return Candidate::Unknown,
        }
        // Warm shortcut: the tableau now holds a rational model of
        // exactly these constraints. If it is integral on their
        // variables, branch-and-bound is unnecessary.
        let relevant: HashSet<VarId> = cs.iter().flat_map(|c| c.expr().vars()).collect();
        let mut model = HashMap::new();
        let mut integral = true;
        for (v, r) in self.simplex.values() {
            if !relevant.contains(&v) {
                continue;
            }
            match r.to_integer() {
                Some(k) => {
                    model.insert(v, k);
                }
                None => {
                    integral = false;
                    break;
                }
            }
        }
        if integral && relevant.iter().all(|v| model.contains_key(v)) {
            debug_assert!(
                cs.iter()
                    .all(|c| c.eval(|v| model.get(&v).copied().unwrap_or(0))),
                "warm simplex model violates an asserted true atom"
            );
            return Candidate::Sat(model);
        }
        match check_integer_governed(&cs, bb_budget, governor) {
            LiaResult::Sat(m) => {
                debug_assert!(
                    cs.iter()
                        .all(|c| c.eval(|v| m.get(&v).copied().unwrap_or(0))),
                    "branch-and-bound model violates an asserted true atom"
                );
                Candidate::Sat(m)
            }
            LiaResult::Unknown => Candidate::Unknown,
            LiaResult::Unsat => {
                // ℤ-infeasible (though ℚ-feasible): block this set of
                // true atoms. Valid over ℤ outright, hence scope 0.
                let lits: Vec<Lit> = true_atoms.into_iter().map(Lit::neg).collect();
                debug_assert!(!lits.is_empty(), "empty constraint set cannot be ℤ-unsat");
                if let Some(a) = self.audit.as_mut() {
                    a.theory_lemmas += 1;
                }
                Candidate::Block(self.add_clause(lits, Vec::new(), 0, false, true))
            }
        }
    }

    /// Runs the CDCL(T) search. `decision_budget` mirrors the legacy
    /// DPLL's local node budget; `bb_budget` bounds each candidate's
    /// branch-and-bound. The search state (but not the learned clauses,
    /// activities, or tableau rows) is fully reset before returning, so
    /// the solver stays reusable even after `Unknown`.
    pub fn solve(
        &mut self,
        governor: &ResourceGovernor,
        bb_budget: usize,
        decision_budget: usize,
    ) -> CdclOutcome {
        let solve_mark = self.simplex.mark();
        let out = self.solve_inner(governor, bb_budget, decision_budget);
        self.reset_search(solve_mark);
        out
    }

    fn solve_inner(
        &mut self,
        governor: &ResourceGovernor,
        bb_budget: usize,
        mut decision_budget: usize,
    ) -> CdclOutcome {
        // Root charge: the legacy recursion charges its root node, so a
        // zero decision budget must yield Unknown here too.
        if decision_budget == 0 || governor.charge(Category::DpllDecisions).is_err() {
            return CdclOutcome::Unknown;
        }
        decision_budget -= 1;
        self.recompute_active();
        if let Some((_, origins)) = self.empty_clauses.first() {
            let mut o = origins.clone();
            o.sort_unstable();
            o.dedup();
            return CdclOutcome::Unsat { origins: o };
        }
        // Level-0 units (assertion roots, learned units from earlier
        // solves in this scope stack).
        for ci in 0..self.clauses.len() as u32 {
            let (lit, len) = {
                let c = &self.clauses[ci as usize];
                (c.lits[0], c.lits.len())
            };
            if len != 1 {
                continue;
            }
            match self.lit_value(lit) {
                None => self.enqueue(lit, Some(ci)),
                Some(true) => {}
                Some(false) => {
                    return CdclOutcome::Unsat {
                        origins: self.final_origins(ci),
                    };
                }
            }
        }
        let mut restart_threshold = RESTART_FIRST;
        let mut conflicts_since_restart = 0u64;
        let mut pending: Option<u32> = None;
        loop {
            let conflict = match pending.take() {
                Some(ci) => Some(ci),
                None => match self.propagate_full(governor) {
                    Err(()) => return CdclOutcome::Unknown,
                    Ok(c) => c,
                },
            };
            match conflict {
                Some(ci) => {
                    if governor.charge(Category::CdclConflicts).is_err() {
                        return CdclOutcome::Unknown;
                    }
                    self.conflicts += 1;
                    conflicts_since_restart += 1;
                    // A lemma attached late can be falsified entirely
                    // below the current level; normalize first.
                    let maxlvl = self.clauses[ci as usize]
                        .lits
                        .iter()
                        .map(|l| self.level[l.var() as usize])
                        .max()
                        .unwrap_or(0);
                    if maxlvl < self.current_level() {
                        self.backtrack(maxlvl);
                    }
                    if self.current_level() == 0 {
                        return CdclOutcome::Unsat {
                            origins: self.final_origins(ci),
                        };
                    }
                    let (learnt, origins, scope, beta) = self.analyze(ci);
                    self.backtrack(beta);
                    let lc = self.add_clause(learnt.clone(), origins, scope, true, false);
                    self.audit_backjump(&learnt);
                    self.enqueue(learnt[0], Some(lc));
                    self.var_inc /= VAR_DECAY;
                    if conflicts_since_restart >= restart_threshold {
                        conflicts_since_restart = 0;
                        restart_threshold = restart_threshold * 3 / 2;
                        self.restarts += 1;
                        if let Some(a) = self.audit.as_mut() {
                            a.restarts += 1;
                        }
                        self.backtrack(0);
                    }
                }
                None => {
                    self.audit_fixpoint();
                    match self.pick_branch() {
                        Some(v) => {
                            if decision_budget == 0
                                || governor.charge(Category::DpllDecisions).is_err()
                            {
                                return CdclOutcome::Unknown;
                            }
                            decision_budget -= 1;
                            self.new_decision_level();
                            let phase = self.phase[v as usize];
                            self.enqueue(Lit::new(v, phase), None);
                        }
                        None => match self.candidate(governor, bb_budget) {
                            Candidate::Sat(m) => return CdclOutcome::Sat(m),
                            Candidate::Unknown => return CdclOutcome::Unknown,
                            Candidate::Block(ci) => pending = Some(ci),
                        },
                    }
                }
            }
        }
    }

    // ---- auditing --------------------------------------------------------

    /// Strong watched-literal invariant, checkable at any conflict-free
    /// fixpoint: in every clause of length ≥ 2, a false watch implies
    /// the partner watch is true. Returns a description of the first
    /// violation.
    pub fn check_watch_invariants(&self) -> Result<(), String> {
        for (i, c) in self.clauses.iter().enumerate() {
            if c.lits.len() < 2 {
                continue;
            }
            let w0 = c.lits[0];
            let w1 = c.lits[1];
            let v0 = self.lit_value(w0);
            let v1 = self.lit_value(w1);
            if (v0 == Some(false) && v1 != Some(true)) || (v1 == Some(false) && v0 != Some(true)) {
                return Err(format!(
                    "clause {i}: watches {w0:?}={v0:?} {w1:?}={v1:?} violate the invariant"
                ));
            }
            for (w, code) in [(w0, w0.code()), (w1, w1.code())] {
                if !self.watches[code].contains(&(i as u32)) {
                    return Err(format!("clause {i}: not on watch list of {w:?}"));
                }
            }
        }
        Ok(())
    }

    /// Trail structure: levels weakly increase along the trail and agree
    /// with the `trail_lim` blocks.
    fn trail_shape_ok(&self) -> bool {
        let mut prev = 0u32;
        for (i, &l) in self.trail.iter().enumerate() {
            let lvl = self.level[l.var() as usize];
            if lvl < prev {
                return false;
            }
            // The level of entry i is the number of decision marks ≤ i.
            let expect = self.trail_lim.iter().filter(|&&m| m <= i).count() as u32;
            if lvl != expect {
                return false;
            }
            prev = lvl;
        }
        true
    }

    fn audit_backjump(&mut self, learnt: &[Lit]) {
        let Some(mut a) = self.audit.take() else {
            return;
        };
        a.backjumps += 1;
        a.learned += 1;
        // 1UIP clauses are asserting: after the backjump every literal
        // but the first is false and the first is unassigned.
        let asserting = self.lit_value(learnt[0]).is_none()
            && learnt[1..]
                .iter()
                .all(|&l| self.lit_value(l) == Some(false));
        if !asserting {
            a.non_asserting_learned += 1;
        }
        if !self.trail_shape_ok() {
            a.trail_violations += 1;
        }
        // Structural watch integrity (membership only; the strong
        // invariant is re-established by the post-backjump rescan and
        // checked at the next fixpoint).
        for (i, c) in self.clauses.iter().enumerate() {
            if c.lits.len() < 2 {
                continue;
            }
            if !self.watches[c.lits[0].code()].contains(&(i as u32))
                || !self.watches[c.lits[1].code()].contains(&(i as u32))
            {
                a.structure_violations += 1;
            }
        }
        self.audit = Some(a);
    }

    fn audit_fixpoint(&mut self) {
        let Some(mut a) = self.audit.take() else {
            return;
        };
        a.fixpoint_checks += 1;
        if self.check_watch_invariants().is_err() {
            a.watch_violations += 1;
        }
        if !self.trail_shape_ok() {
            a.trail_violations += 1;
        }
        self.audit = Some(a);
    }
}

/// Inserts every element of `src` into the sorted vector `dst`.
fn merge_origins(dst: &mut Vec<u32>, src: &[u32]) {
    for &o in src {
        if let Err(i) = dst.binary_search(&o) {
            dst.insert(i, o);
        }
    }
}

/// The constraints of `f` if it is a pure conjunction of atoms (or a
/// single atom, or `⊤`) — the common Hoare-check shape that can skip the
/// CDCL machinery entirely.
pub(crate) fn conjunctive_atoms(pool: &TermPool, f: TermId) -> Option<Vec<LinearConstraint>> {
    match pool.term(f) {
        Term::True => Some(Vec::new()),
        Term::Atom(c) => Some(vec![c.clone()]),
        Term::And(children) => {
            let mut out = Vec::with_capacity(children.len());
            for &c in children.iter() {
                match pool.term(c) {
                    Term::Atom(a) => out.push(a.clone()),
                    _ => return None,
                }
            }
            Some(out)
        }
        _ => None,
    }
}

/// One-shot CDCL solve of `formula`, with the same
/// `(model, saw_unknown)` contract as the legacy `Search::dpll` driver:
/// `(Some(model), _)` is Sat, `(None, false)` Unsat, `(None, true)`
/// Unknown. Pure conjunctions bypass the clause engine and go straight
/// to branch-and-bound.
pub(crate) fn solve_formula(
    pool: &TermPool,
    formula: TermId,
    bb_budget: usize,
    decision_budget: usize,
    governor: &ResourceGovernor,
) -> (Option<HashMap<VarId, i128>>, bool) {
    if decision_budget == 0 || governor.charge(Category::DpllDecisions).is_err() {
        return (None, true);
    }
    if formula == TermPool::FALSE {
        return (None, false);
    }
    if let Some(cs) = conjunctive_atoms(pool, formula) {
        return match check_integer_governed(&cs, bb_budget, governor) {
            LiaResult::Sat(m) => (Some(m), false),
            LiaResult::Unsat => (None, false),
            LiaResult::Unknown => (None, true),
        };
    }
    let mut s = CdclSolver::new();
    s.add_assertion(pool, formula, 0);
    // The fresh solver re-charges its own root; hand back the unit we
    // already spent so budgets match the legacy per-query accounting.
    match s.solve(governor, bb_budget, decision_budget) {
        CdclOutcome::Sat(m) => (Some(m), false),
        CdclOutcome::Unsat { .. } => (None, false),
        CdclOutcome::Unknown => (None, true),
    }
}

/// Checks the conjunction of `assertions`, reporting which assertion
/// indices support an `Unsat` verdict (the candidate set that
/// [`crate::unsat_core`] minimizes under the CDCL engine).
pub fn check_with_core(
    pool: &TermPool,
    assertions: &[TermId],
    bb_budget: usize,
    decision_budget: usize,
    governor: &ResourceGovernor,
) -> CdclOutcome {
    let mut s = CdclSolver::new();
    for (i, &t) in assertions.iter().enumerate() {
        s.add_assertion(pool, t, i as u32);
    }
    s.solve(governor, bb_budget, decision_budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lia::DEFAULT_BB_BUDGET;

    const BUDGET: usize = 100_000;

    fn solve(pool: &TermPool, ts: &[TermId]) -> CdclOutcome {
        check_with_core(
            pool,
            ts,
            DEFAULT_BB_BUDGET,
            BUDGET,
            &ResourceGovernor::unlimited(),
        )
    }

    #[test]
    fn conjunction_sat_and_unsat() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a = p.ge_const(x, 2);
        let b = p.le_const(x, 5);
        match solve(&p, &[a, b]) {
            CdclOutcome::Sat(m) => assert!((2..=5).contains(&m[&x])),
            other => panic!("{other:?}"),
        }
        let c = p.le_const(x, 1);
        match solve(&p, &[a, c]) {
            CdclOutcome::Unsat { origins } => assert_eq!(origins, vec![0, 1]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disjunction_picks_a_feasible_branch() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let lo = p.le_const(x, -10);
        let hi = p.ge_const(x, 10);
        let either = p.or([lo, hi]);
        let pos = p.ge_const(x, 0);
        match solve(&p, &[either, pos]) {
            CdclOutcome::Sat(m) => assert!(m[&x] >= 10),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsat_origins_skip_irrelevant_assertions() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let y = p.var("y");
        let noise = p.ge_const(y, 0);
        let a = p.ge_const(x, 3);
        let b = p.le_const(x, 1);
        match solve(&p, &[noise, a, b]) {
            CdclOutcome::Unsat { origins } => {
                assert!(origins.contains(&1) && origins.contains(&2));
                assert!(!origins.contains(&0), "origins {origins:?} include noise");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn false_assertion_reports_its_origin() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a = p.ge_const(x, 0);
        match solve(&p, &[a, TermPool::FALSE]) {
            CdclOutcome::Unsat { origins } => assert_eq!(origins, vec![1]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scope_pop_restores_sat() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a = p.ge_const(x, 2);
        let b = p.le_const(x, 1);
        let g = ResourceGovernor::unlimited();
        let mut s = CdclSolver::new();
        s.add_assertion(&p, a, 0);
        assert!(matches!(
            s.solve(&g, DEFAULT_BB_BUDGET, BUDGET),
            CdclOutcome::Sat(_)
        ));
        s.push_scope();
        s.add_assertion(&p, b, 1);
        assert!(matches!(
            s.solve(&g, DEFAULT_BB_BUDGET, BUDGET),
            CdclOutcome::Unsat { .. }
        ));
        s.pop_scope();
        assert!(matches!(
            s.solve(&g, DEFAULT_BB_BUDGET, BUDGET),
            CdclOutcome::Sat(_)
        ));
    }

    #[test]
    fn integer_gap_is_unsat() {
        // x + y = 1 ∧ x − y = 0 has the unique rational solution
        // (1/2, 1/2): branch-and-bound must refute it over ℤ.
        let mut p = TermPool::new();
        let x = p.var("x");
        let y = p.var("y");
        use crate::linear::{LinExpr, Rel};
        let sum = p.atom(
            LinExpr::var(x)
                .add(&LinExpr::var(y))
                .sub(&LinExpr::constant(1)),
            Rel::Eq0,
        );
        let diff = p.atom(LinExpr::var(x).sub(&LinExpr::var(y)), Rel::Eq0);
        assert!(matches!(solve(&p, &[sum, diff]), CdclOutcome::Unsat { .. }));
    }

    #[test]
    fn governor_budget_trips_to_unknown() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a = p.ge_const(x, 0);
        let g = ResourceGovernor::builder()
            .budget(Category::DpllDecisions, 0)
            .build();
        assert_eq!(
            check_with_core(&p, &[a], DEFAULT_BB_BUDGET, BUDGET, &g),
            CdclOutcome::Unknown
        );
        assert_eq!(g.give_up().unwrap().category, Category::DpllDecisions);
    }

    #[test]
    fn solver_reusable_after_unknown() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let lo = p.le_const(x, -1);
        let hi = p.ge_const(x, 1);
        let either = p.or([lo, hi]);
        let mut s = CdclSolver::new();
        s.add_assertion(&p, either, 0);
        // One unit covers the root charge; the first decision trips.
        let tripped = ResourceGovernor::builder()
            .budget(Category::DpllDecisions, 1)
            .build();
        assert_eq!(
            s.solve(&tripped, DEFAULT_BB_BUDGET, BUDGET),
            CdclOutcome::Unknown
        );
        // …and the same solver instance still answers afterwards.
        assert!(matches!(
            s.solve(&ResourceGovernor::unlimited(), DEFAULT_BB_BUDGET, BUDGET),
            CdclOutcome::Sat(_)
        ));
    }

    #[test]
    fn audit_counts_are_clean() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let y = p.var("y");
        // A formula with real search: (x ≤ 0 ∨ x ≥ 5) ∧ (y ≤ 0 ∨ y ≥ 5)
        // ∧ x + y = 5 forces mixed branches.
        use crate::linear::{LinExpr, Rel};
        let a1 = p.le_const(x, 0);
        let a2 = p.ge_const(x, 5);
        let d1 = p.or([a1, a2]);
        let b1 = p.le_const(y, 0);
        let b2 = p.ge_const(y, 5);
        let d2 = p.or([b1, b2]);
        let sum = p.atom(
            LinExpr::var(x)
                .add(&LinExpr::var(y))
                .sub(&LinExpr::constant(5)),
            Rel::Eq0,
        );
        let mut s = CdclSolver::new();
        s.enable_audit();
        s.add_assertion(&p, d1, 0);
        s.add_assertion(&p, d2, 1);
        s.add_assertion(&p, sum, 2);
        let out = s.solve(&ResourceGovernor::unlimited(), DEFAULT_BB_BUDGET, BUDGET);
        assert!(matches!(out, CdclOutcome::Sat(_)), "{out:?}");
        let a = s.audit_report().unwrap();
        assert_eq!(a.watch_violations, 0);
        assert_eq!(a.structure_violations, 0);
        assert_eq!(a.trail_violations, 0);
        assert_eq!(a.non_asserting_learned, 0);
    }
}
