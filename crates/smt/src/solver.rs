//! Lazy DPLL(T): boolean search over the negation-free formula structure
//! with LIA theory checks.
//!
//! Because formulas are *monotone* in their atoms (negation was compiled
//! away at construction, see [`crate::term`]), the boolean search never
//! needs to assert the negation of an atom: branching an atom to `false`
//! merely declines to use it, and any theory model for the atoms branched
//! to `true` satisfies the whole formula. This makes the solver short and
//! obviously sound.

use crate::cdcl::{self, CdclOutcome, CdclSolver};
use crate::lia::{check_integer_governed, LiaResult};
use crate::linear::{LinearConstraint, VarId};
use crate::qcache::{self, CachedVerdict, QueryCache};
use crate::resource::{Category, ResourceGovernor};
use crate::simplex::{check_rational_governed, SimplexResult};
use crate::term::{Term, TermId, TermPool};
use crate::transfer::ExportedTerm;
use std::collections::HashMap;
use std::fmt;

/// A satisfying integer assignment. Variables not mentioned by any
/// constraint default to `0`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<VarId, i128>,
}

impl Model {
    /// Creates a model from explicit values.
    pub fn from_values(values: HashMap<VarId, i128>) -> Model {
        Model { values }
    }

    /// The value of `v` (0 when unconstrained).
    pub fn value(&self, v: VarId) -> i128 {
        self.values.get(&v).copied().unwrap_or(0)
    }

    /// Iterates over the explicitly assigned variables.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, i128)> + '_ {
        self.values.iter().map(|(&v, &k)| (v, k))
    }
}

/// Outcome of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// Solver budget exhausted or arithmetic overflow.
    Unknown,
}

impl SatResult {
    /// `true` for [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// `true` for [`SatResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }
}

/// Which boolean search engine answers queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// The legacy recursive DPLL with substitution-based branching
    /// (kept for ablation behind `--solver=dpll`).
    Dpll,
    /// The CDCL(T) engine ([`crate::cdcl`]): watched literals, 1UIP
    /// learning, backjumping, and an incremental simplex.
    #[default]
    Cdcl,
}

impl SolverKind {
    /// Stable name (`"dpll"` / `"cdcl"`), the inverse of
    /// [`SolverKind::parse`].
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Dpll => "dpll",
            SolverKind::Cdcl => "cdcl",
        }
    }

    /// Parses a `--solver=` value.
    pub fn parse(s: &str) -> Option<SolverKind> {
        match s {
            "dpll" => Some(SolverKind::Dpll),
            "cdcl" => Some(SolverKind::Cdcl),
            _ => None,
        }
    }
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunable solver limits and counters.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Branch-and-bound node budget per theory check.
    pub bb_budget: usize,
    /// Maximum boolean search steps (DPLL branch nodes / CDCL decisions)
    /// before giving up.
    pub dpll_budget: usize,
    /// The boolean search engine.
    pub solver: SolverKind,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            bb_budget: 2_000,
            dpll_budget: 100_000,
            solver: SolverKind::default(),
        }
    }
}

/// Checks satisfiability of the conjunction of `assertions`.
///
/// # Example
///
/// ```
/// use smt::term::TermPool;
/// use smt::solver::check;
///
/// let mut pool = TermPool::new();
/// let x = pool.var("x");
/// let a = pool.ge_const(x, 1);
/// let b = pool.le_const(x, 0);
/// assert!(check(&mut pool, &[a]).is_sat());
/// assert!(check(&mut pool, &[a, b]).is_unsat());
/// ```
pub fn check(pool: &mut TermPool, assertions: &[TermId]) -> SatResult {
    let config = SolverConfig {
        solver: pool.solver_kind(),
        ..SolverConfig::default()
    };
    check_with_config(pool, assertions, &config)
}

/// As [`check`], with explicit limits.
pub fn check_with_config(
    pool: &mut TermPool,
    assertions: &[TermId],
    config: &SolverConfig,
) -> SatResult {
    let formula = pool.and(assertions.iter().copied());
    // Memoization: trivially-constant formulas skip the cache entirely
    // (both lookup and insert) and flow through the unchanged search, so
    // governor charge sequences for them stay bit-identical to a
    // cache-free build.
    let cached = match pool.query_cache() {
        Some(cache) if formula != TermPool::TRUE && formula != TermPool::FALSE => {
            let cache = cache.clone();
            let key = canonical_key(pool, formula);
            match consult(pool, formula, &cache, &key) {
                Some(result) => return result,
                None => Some((cache, key)),
            }
        }
        _ => None,
    };
    let governor = pool.governor().clone();
    let (outcome, saw_unknown) = match config.solver {
        SolverKind::Cdcl => {
            let (values, saw_unknown) = cdcl::solve_formula(
                pool,
                formula,
                config.bb_budget,
                config.dpll_budget,
                &governor,
            );
            (values.map(Model::from_values), saw_unknown)
        }
        SolverKind::Dpll => {
            let mut search = Search {
                pool: &mut *pool,
                config,
                budget: config.dpll_budget,
                saw_unknown: false,
                governor,
            };
            let mut fixed = Vec::new();
            (search.dpll(formula, &mut fixed), search.saw_unknown)
        }
    };
    match outcome {
        Some(model) => {
            if let Some((cache, key)) = cached {
                // A found model is definitive even if some branch gave up.
                cache.insert(key, CachedVerdict::Sat(export_model(pool, &model)));
            }
            SatResult::Sat(model)
        }
        None if saw_unknown => SatResult::Unknown,
        None => {
            if let Some((cache, key)) = cached {
                cache.insert(key, CachedVerdict::Unsat);
            }
            SatResult::Unsat
        }
    }
}

/// The pool-independent canonical cache key for `formula`.
fn canonical_key(pool: &TermPool, formula: TermId) -> ExportedTerm {
    let mut key = pool.export(formula);
    qcache::canonicalize(&mut key);
    key
}

/// Exports `model` by variable name for pool-independent storage.
fn export_model(pool: &TermPool, model: &Model) -> Vec<(String, i128)> {
    model
        .iter()
        .map(|(v, k)| (pool.var_name(v).to_owned(), k))
        .collect()
}

/// Tries to answer the query from `cache`. A usable entry counts a hit
/// and charges only a governor poll (deadlines and standing trips still
/// fire, but no step budget is spent); anything else counts a miss and
/// returns `None` so the caller solves for real.
fn consult(
    pool: &mut TermPool,
    formula: TermId,
    cache: &QueryCache,
    key: &ExportedTerm,
) -> Option<SatResult> {
    let entry = cache.get(key);
    match entry {
        Some(CachedVerdict::Unsat) => {
            cache.note_hit();
            match pool.governor().poll() {
                Ok(()) => Some(SatResult::Unsat),
                Err(_) => Some(SatResult::Unknown),
            }
        }
        Some(CachedVerdict::Sat(named)) => {
            // Re-validate: the stored witness must satisfy *this* pool's
            // formula under exact evaluation. (All named variables occur
            // in the canonically-equal formula, so no fresh interning
            // happens here.)
            let values: HashMap<VarId, i128> =
                named.iter().map(|(name, k)| (pool.var(name), *k)).collect();
            let model = Model::from_values(values);
            if pool.eval(formula, &|v| model.value(v)) {
                cache.note_hit();
                match pool.governor().poll() {
                    Ok(()) => Some(SatResult::Sat(model)),
                    Err(_) => Some(SatResult::Unknown),
                }
            } else {
                cache.note_miss();
                None
            }
        }
        None => {
            cache.note_miss();
            None
        }
    }
}

/// `true` iff `antecedent → consequent` is valid (reported conservatively:
/// `Unknown` counts as *not* entailed).
pub fn entails(pool: &mut TermPool, antecedent: TermId, consequent: TermId) -> bool {
    let neg = pool.not(consequent);
    check(pool, &[antecedent, neg]).is_unsat()
}

/// `true` iff `t` is valid (conservative under `Unknown`).
pub fn is_valid(pool: &mut TermPool, t: TermId) -> bool {
    let neg = pool.not(t);
    check(pool, &[neg]).is_unsat()
}

/// `true` iff `a` and `b` are logically equivalent (conservative).
pub fn equivalent(pool: &mut TermPool, a: TermId, b: TermId) -> bool {
    entails(pool, a, b) && entails(pool, b, a)
}

/// How many satisfying models an [`AssertionScope`] retains for reuse.
const SCOPE_MODEL_LIMIT: usize = 8;

/// An incremental assertion scope: a fixed prefix conjunction checked
/// against many per-call extra assertions, as in Hoare-triple batteries
/// `{⋀Φ} l {ψ_i}` where every query shares the prefix `⋀Φ ∧ rel(l)`.
///
/// The scope front-loads work that is common to the whole battery:
///
/// * if the prefix alone is unsatisfiable, every scoped query is `Unsat`
///   without solving (only a governor poll is charged);
/// * satisfying models discovered along the way (bounded at
///   [`SCOPE_MODEL_LIMIT`]) are replayed by exact evaluation against each
///   new extra assertion — an evaluation, not a solve;
/// * queries that fall through go to [`check`], whose conjunction
///   flattens to exactly the same hash-consed formula a cold
///   `check(&[prefix…, extra])` would build, so the query cache applies.
///
/// When the pool has no query cache (`--no-qcache`), the scope takes no
/// shortcuts at all and every call is a plain [`check`] — bit-identical
/// to the un-scoped baseline.
#[derive(Debug)]
pub struct AssertionScope {
    prefix: TermId,
    /// Shortcuts enabled (mirrors the pool's cache presence at creation).
    incremental: bool,
    /// The prefix alone is known unsatisfiable.
    prefix_unsat: bool,
    /// Recent models satisfying the prefix, newest last.
    models: Vec<Model>,
    /// Persistent CDCL engine warm across the whole battery (only when
    /// the pool's solver kind is [`SolverKind::Cdcl`] and shortcuts are
    /// on): the prefix is asserted once, each extra rides in a pushed
    /// scope, and theory lemmas plus the simplex basis carry over from
    /// query to query.
    engine: Option<ScopeEngine>,
}

/// The warm CDCL(T) battery behind an incremental [`AssertionScope`].
#[derive(Debug, Default)]
struct ScopeEngine {
    solver: CdclSolver,
    prefix_added: bool,
}

impl ScopeEngine {
    /// Checks `prefix ∧ extra` on the persistent solver, with the same
    /// query-cache protocol as a plain [`check`] (constants bypass the
    /// cache, hits poll the governor, `Unknown` is never inserted).
    fn check(
        &mut self,
        pool: &mut TermPool,
        prefix: TermId,
        extra: TermId,
        config: &SolverConfig,
    ) -> SatResult {
        let formula = pool.and([prefix, extra]);
        if formula == TermPool::TRUE || formula == TermPool::FALSE {
            return check(pool, &[formula]);
        }
        let cached = match pool.query_cache() {
            Some(cache) => {
                let cache = cache.clone();
                let key = canonical_key(pool, formula);
                match consult(pool, formula, &cache, &key) {
                    Some(result) => return result,
                    None => Some((cache, key)),
                }
            }
            None => None,
        };
        let governor = pool.governor().clone();
        if !self.prefix_added {
            self.solver.add_assertion(pool, prefix, 0);
            self.prefix_added = true;
        }
        self.solver.push_scope();
        self.solver.add_assertion(pool, extra, 1);
        let out = self
            .solver
            .solve(&governor, config.bb_budget, config.dpll_budget);
        self.solver.pop_scope();
        match out {
            CdclOutcome::Sat(values) => {
                let model = Model::from_values(values);
                if let Some((cache, key)) = cached {
                    cache.insert(key, CachedVerdict::Sat(export_model(pool, &model)));
                }
                SatResult::Sat(model)
            }
            CdclOutcome::Unsat { .. } => {
                if let Some((cache, key)) = cached {
                    cache.insert(key, CachedVerdict::Unsat);
                }
                SatResult::Unsat
            }
            CdclOutcome::Unknown => SatResult::Unknown,
        }
    }
}

impl AssertionScope {
    /// Opens a scope over the conjunction of `prefix`. With shortcuts
    /// enabled this performs one up-front satisfiability check of the
    /// prefix; its verdict (and model, if any) is shared by every
    /// subsequent [`AssertionScope::check`].
    pub fn new(pool: &mut TermPool, prefix: &[TermId]) -> AssertionScope {
        let prefix = pool.and(prefix.iter().copied());
        let incremental = pool.query_cache().is_some();
        let engine =
            (incremental && pool.solver_kind() == SolverKind::Cdcl).then(ScopeEngine::default);
        let mut scope = AssertionScope {
            prefix,
            incremental,
            prefix_unsat: false,
            models: Vec::new(),
            engine,
        };
        if scope.incremental {
            if prefix == TermPool::FALSE {
                scope.prefix_unsat = true;
            } else {
                match check(pool, &[prefix]) {
                    SatResult::Unsat => scope.prefix_unsat = true,
                    SatResult::Sat(m) => scope.models.push(m),
                    SatResult::Unknown => {}
                }
            }
        }
        scope
    }

    /// Checks `prefix ∧ extra`.
    pub fn check(&mut self, pool: &mut TermPool, extra: TermId) -> SatResult {
        if !self.incremental {
            return check(pool, &[self.prefix, extra]);
        }
        if self.prefix_unsat {
            return match pool.governor().poll() {
                Ok(()) => SatResult::Unsat,
                Err(_) => SatResult::Unknown,
            };
        }
        // Replay retained models (newest first) by exact evaluation.
        let reusable =
            self.models.iter().rev().find(|m| {
                pool.eval(self.prefix, &|v| m.value(v)) && pool.eval(extra, &|v| m.value(v))
            });
        if let Some(model) = reusable {
            let model = model.clone();
            return match pool.governor().poll() {
                Ok(()) => SatResult::Sat(model),
                Err(_) => SatResult::Unknown,
            };
        }
        let result = match &mut self.engine {
            Some(engine) => {
                let config = SolverConfig {
                    solver: SolverKind::Cdcl,
                    ..SolverConfig::default()
                };
                engine.check(pool, self.prefix, extra, &config)
            }
            None => check(pool, &[self.prefix, extra]),
        };
        if let SatResult::Sat(model) = &result {
            if self.models.len() == SCOPE_MODEL_LIMIT {
                self.models.remove(0);
            }
            self.models.push(model.clone());
        }
        result
    }

    /// `true` when the prefix alone was proven unsatisfiable.
    pub fn prefix_unsat(&self) -> bool {
        self.prefix_unsat
    }
}

struct Search<'a> {
    pool: &'a mut TermPool,
    config: &'a SolverConfig,
    budget: usize,
    saw_unknown: bool,
    /// Cloned from the pool once per query; charged per DPLL decision and
    /// forwarded into the theory layers.
    governor: ResourceGovernor,
}

impl Search<'_> {
    /// Recursive DPLL. `fixed` is the conjunction of atoms branched true.
    fn dpll(&mut self, formula: TermId, fixed: &mut Vec<LinearConstraint>) -> Option<Model> {
        if self.budget == 0 || self.governor.charge(Category::DpllDecisions).is_err() {
            self.saw_unknown = true;
            return None;
        }
        self.budget -= 1;
        match self.pool.term(formula) {
            Term::False => None,
            Term::True => {
                match check_integer_governed(fixed, self.config.bb_budget, &self.governor) {
                    LiaResult::Sat(values) => Some(Model::from_values(values)),
                    LiaResult::Unsat => None,
                    LiaResult::Unknown => {
                        self.saw_unknown = true;
                        None
                    }
                }
            }
            _ => {
                // Unit propagation: conjuncts that are atoms must hold.
                if let Term::And(children) = self.pool.term(formula) {
                    let units: Vec<TermId> = children
                        .iter()
                        .copied()
                        .filter(|&c| matches!(self.pool.term(c), Term::Atom(_)))
                        .collect();
                    if !units.is_empty() {
                        let saved = fixed.len();
                        let mut f = formula;
                        for u in units {
                            if let Term::Atom(c) = self.pool.term(u) {
                                fixed.push(c.clone());
                            }
                            f = assign(self.pool, f, u, true);
                        }
                        let result = if self.prune(fixed) {
                            None
                        } else {
                            self.dpll(f, fixed)
                        };
                        fixed.truncate(saved);
                        return result;
                    }
                }
                // Branch on the first atom in the formula.
                let atom =
                    first_atom(self.pool, formula).expect("non-constant formula has an atom");
                let Term::Atom(constraint) = self.pool.term(atom).clone() else {
                    unreachable!("first_atom returns an atom");
                };
                // Try atom = true.
                let f_true = assign(self.pool, formula, atom, true);
                fixed.push(constraint);
                if !self.prune(fixed) {
                    if let Some(m) = self.dpll(f_true, fixed) {
                        fixed.pop();
                        return Some(m);
                    }
                }
                fixed.pop();
                // Try atom = false (monotone: no negation needed).
                let f_false = assign(self.pool, formula, atom, false);
                self.dpll(f_false, fixed)
            }
        }
    }

    /// Cheap rational pruning of the current partial conjunction.
    fn prune(&mut self, fixed: &[LinearConstraint]) -> bool {
        matches!(
            check_rational_governed(fixed, &self.governor),
            SimplexResult::Unsat
        )
    }
}

/// Replaces every occurrence of the atom `atom` in `formula` by the given
/// constant and re-simplifies.
fn assign(pool: &mut TermPool, formula: TermId, atom: TermId, value: bool) -> TermId {
    let replacement = if value {
        TermPool::TRUE
    } else {
        TermPool::FALSE
    };
    let mut memo = HashMap::new();
    assign_rec(pool, formula, atom, replacement, &mut memo)
}

fn assign_rec(
    pool: &mut TermPool,
    formula: TermId,
    atom: TermId,
    replacement: TermId,
    memo: &mut HashMap<TermId, TermId>,
) -> TermId {
    if formula == atom {
        return replacement;
    }
    if let Some(&r) = memo.get(&formula) {
        return r;
    }
    let result = match pool.term(formula).clone() {
        Term::True | Term::False | Term::Atom(_) => formula,
        Term::And(children) => {
            let mapped: Vec<TermId> = children
                .iter()
                .map(|&c| assign_rec(pool, c, atom, replacement, memo))
                .collect();
            pool.and(mapped)
        }
        Term::Or(children) => {
            let mapped: Vec<TermId> = children
                .iter()
                .map(|&c| assign_rec(pool, c, atom, replacement, memo))
                .collect();
            pool.or(mapped)
        }
    };
    memo.insert(formula, result);
    result
}

/// The first atom (in DFS order) of `formula`, if any.
fn first_atom(pool: &TermPool, formula: TermId) -> Option<TermId> {
    match pool.term(formula) {
        Term::True | Term::False => None,
        Term::Atom(_) => Some(formula),
        Term::And(children) | Term::Or(children) => {
            children.iter().find_map(|&c| first_atom(pool, c))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;

    #[test]
    fn conjunction_sat_and_model() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let y = p.var("y");
        let a = p.ge_const(x, 3);
        let sum = LinExpr::var(x).add(&LinExpr::var(y));
        let b = p.eq(&sum, &LinExpr::constant(5));
        match check(&mut p, &[a, b]) {
            SatResult::Sat(m) => {
                assert!(m.value(x) >= 3);
                assert_eq!(m.value(x) + m.value(y), 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disjunction_explores_branches() {
        let mut p = TermPool::new();
        let x = p.var("x");
        // (x ≤ 0 ∨ x ≥ 10) ∧ x ≥ 5  → x ≥ 10 branch.
        let low = p.le_const(x, 0);
        let high = p.ge_const(x, 10);
        let disj = p.or([low, high]);
        let five = p.ge_const(x, 5);
        match check(&mut p, &[disj, five]) {
            SatResult::Sat(m) => assert!(m.value(x) >= 10),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsat_through_disjunction() {
        let mut p = TermPool::new();
        let x = p.var("x");
        // (x ≤ 0 ∨ x ≥ 10) ∧ 3 ≤ x ≤ 7 → unsat.
        let low = p.le_const(x, 0);
        let high = p.ge_const(x, 10);
        let disj = p.or([low, high]);
        let a = p.ge_const(x, 3);
        let b = p.le_const(x, 7);
        assert!(check(&mut p, &[disj, a, b]).is_unsat());
    }

    #[test]
    fn model_satisfies_formula_eval() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let y = p.var("y");
        let a = p.ne(&LinExpr::var(x), &LinExpr::var(y));
        let b = p.le_const(x, 2);
        let c = p.ge_const(y, 2);
        let f = p.and([a, b, c]);
        match check(&mut p, &[f]) {
            SatResult::Sat(m) => assert!(p.eval(f, &|v| m.value(v))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn entailment_and_validity() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let ge5 = p.ge_const(x, 5);
        let ge3 = p.ge_const(x, 3);
        assert!(entails(&mut p, ge5, ge3));
        assert!(!entails(&mut p, ge3, ge5));
        let taut = p.or([ge3, TermPool::TRUE]);
        assert!(is_valid(&mut p, taut));
        let lt3 = p.not(ge3);
        let excluded_middle = p.or([ge3, lt3]);
        assert!(is_valid(&mut p, excluded_middle));
    }

    #[test]
    fn equivalence() {
        let mut p = TermPool::new();
        let x = p.var("x");
        // x ≥ 1 ⇔ x > 0 over ℤ (the pool normalizes both to the same atom,
        // so also test a structurally different pair).
        let a = p.ge_const(x, 1);
        let b = p.gt(&LinExpr::var(x), &LinExpr::constant(0));
        assert!(equivalent(&mut p, a, b));
        let c = p.ge_const(x, 2);
        assert!(!equivalent(&mut p, a, c));
    }

    #[test]
    fn empty_assertions_are_sat() {
        let mut p = TermPool::new();
        assert!(check(&mut p, &[]).is_sat());
    }

    #[test]
    fn false_assertion_unsat() {
        let mut p = TermPool::new();
        assert!(check(&mut p, &[TermPool::FALSE]).is_unsat());
    }

    #[test]
    fn nested_disjunction_of_equalities() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let y = p.var("y");
        // (x = 1 ∨ x = 2) ∧ (y = x + 10) ∧ y ≥ 12 → x = 2, y = 12.
        let x1 = p.eq_const(x, 1);
        let x2 = p.eq_const(x, 2);
        let xd = p.or([x1, x2]);
        let lhs = LinExpr::var(y);
        let rhs = LinExpr::var(x).add(&LinExpr::constant(10));
        let link = p.eq(&lhs, &rhs);
        let y12 = p.ge_const(y, 12);
        match check(&mut p, &[xd, link, y12]) {
            SatResult::Sat(m) => {
                assert_eq!(m.value(x), 2);
                assert_eq!(m.value(y), 12);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pool_governor_interrupts_query() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a = p.ge_const(x, 0);
        let b = p.le_const(x, 10);
        p.set_governor(
            ResourceGovernor::builder()
                .budget(Category::DpllDecisions, 0)
                .build(),
        );
        assert_eq!(check(&mut p, &[a, b]), SatResult::Unknown);
        assert_eq!(
            p.governor().give_up().unwrap().category,
            Category::DpllDecisions
        );
        // Entailment degrades conservatively: a tripped governor can only
        // make `entails` answer "not entailed", never "entailed".
        assert!(!entails(&mut p, a, a));
        p.set_governor(ResourceGovernor::unlimited());
        assert!(check(&mut p, &[a, b]).is_sat());
    }

    #[test]
    fn tiny_budget_reports_unknown() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a = p.ge_const(x, 0);
        let b = p.le_const(x, 10);
        for solver in [SolverKind::Dpll, SolverKind::Cdcl] {
            let cfg = SolverConfig {
                bb_budget: 2000,
                dpll_budget: 0,
                solver,
            };
            assert_eq!(
                check_with_config(&mut p, &[a, b], &cfg),
                SatResult::Unknown,
                "{solver}"
            );
        }
    }

    #[test]
    fn engines_agree_on_structured_formulas() {
        let mut p = TermPool::new();
        p.take_query_cache();
        let x = p.var("x");
        let y = p.var("y");
        let low = p.le_const(x, 0);
        let high = p.ge_const(x, 10);
        let disj = p.or([low, high]);
        let link = {
            let lhs = LinExpr::var(y);
            let rhs = LinExpr::var(x).add(&LinExpr::constant(1));
            p.eq(&lhs, &rhs)
        };
        let cap = p.le_const(y, 5);
        for battery in [vec![disj], vec![disj, link], vec![disj, link, cap]] {
            let mut results = Vec::new();
            for solver in [SolverKind::Dpll, SolverKind::Cdcl] {
                let cfg = SolverConfig {
                    solver,
                    ..SolverConfig::default()
                };
                results.push(check_with_config(&mut p, &battery, &cfg));
            }
            assert_eq!(results[0].is_sat(), results[1].is_sat(), "{battery:?}");
            assert_eq!(results[0].is_unsat(), results[1].is_unsat(), "{battery:?}");
        }
    }
}
