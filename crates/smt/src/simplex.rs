//! Feasibility of conjunctions of linear constraints over ℚ, via the
//! general simplex procedure of Dutertre & de Moura (the algorithm used by
//! most SMT solvers' arithmetic cores).
//!
//! Each input constraint `Σ cᵢxᵢ + k ⋈ 0` becomes a *slack variable*
//! `s = Σ cᵢxᵢ` bounded by `−k` (upper bound for `≤`, both bounds for `=`).
//! Program variables are unbounded. The procedure pivots with Bland's rule,
//! which guarantees termination.

use crate::linear::{LinearConstraint, Rel, VarId};
use crate::rational::{ArithmeticOverflow, Rat};
use crate::resource::{Category, ResourceGovernor};
use std::collections::HashMap;

/// Why the tableau abandoned a check: `i128` overflow, or a tripped
/// resource governor (pivot budget, deadline, cancellation, injected
/// fault). Both degrade to `Unknown`; the governor's `GiveUp` record
/// carries the precise cause for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Halt {
    Overflow,
    Interrupted,
}

impl From<ArithmeticOverflow> for Halt {
    fn from(_: ArithmeticOverflow) -> Halt {
        Halt::Overflow
    }
}

/// Outcome of a rational feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimplexResult {
    /// Feasible; a satisfying rational assignment for the program variables.
    Sat(HashMap<VarId, Rat>),
    /// Infeasible over ℚ (hence over ℤ).
    Unsat,
    /// Arithmetic overflow — no verdict.
    Unknown,
}

/// Checks feasibility over ℚ of the conjunction of `constraints`.
///
/// # Example
///
/// ```
/// use smt::linear::{LinExpr, LinearConstraint, NormalizedConstraint, Rel, VarId};
/// use smt::simplex::{check_rational, SimplexResult};
///
/// let x = VarId(0);
/// let mk = |e, r| match LinearConstraint::new(e, r) {
///     NormalizedConstraint::Constraint(c) => c,
///     _ => unreachable!(),
/// };
/// // x ≥ 1 ∧ x ≤ 0 is infeasible.
/// let c1 = mk(LinExpr::constant(1).sub(&LinExpr::var(x)), Rel::Le0);
/// let c2 = mk(LinExpr::var(x), Rel::Le0);
/// assert_eq!(check_rational(&[c1, c2]), SimplexResult::Unsat);
/// ```
pub fn check_rational(constraints: &[LinearConstraint]) -> SimplexResult {
    check_rational_governed(constraints, &ResourceGovernor::unlimited())
}

/// As [`check_rational`], charging `governor` one
/// [`Category::SimplexPivots`] unit per pivot iteration. A tripped
/// governor aborts mid-check with [`SimplexResult::Unknown`]; the
/// governor's give-up record carries the cause.
pub fn check_rational_governed(
    constraints: &[LinearConstraint],
    governor: &ResourceGovernor,
) -> SimplexResult {
    let outcome = Tableau::new(constraints)
        .map_err(Halt::from)
        .and_then(|mut t| {
            t.check(governor)?;
            Ok(t.feasible.then(|| t.model()))
        });
    match outcome {
        Ok(Some(model)) => SimplexResult::Sat(model),
        Ok(None) => SimplexResult::Unsat,
        Err(_) => SimplexResult::Unknown,
    }
}

/// A Farkas certificate of rational infeasibility: coefficients `λᵢ` such
/// that `Σ λᵢ·exprᵢ` is a *positive constant* while every `exprᵢ ⋈ 0`
/// requires it to be ≤ 0. Coefficients of `≤`-constraints are nonnegative;
/// equality constraints may take either sign.
///
/// Certificates drive Farkas-style sequence interpolation
/// ([`crate::interpolate`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FarkasCertificate {
    /// `(constraint index, coefficient)` pairs, coefficient ≠ 0.
    pub coefficients: Vec<(usize, Rat)>,
}

impl FarkasCertificate {
    /// Checks the certificate against the constraints it was produced for:
    /// the weighted sum must have no variables and a positive constant, and
    /// `≤`-constraints must carry nonnegative weights.
    pub fn validate(&self, constraints: &[LinearConstraint]) -> bool {
        use crate::linear::LinExpr;
        let mut sum = LinExpr::zero();
        let mut scale = Rat::ONE;
        // Common denominator so we can work in integers.
        for &(_, c) in &self.coefficients {
            scale = match scale.mul(Rat::from_int(c.denominator())) {
                Ok(s) => s,
                Err(_) => return false,
            };
        }
        let Some(scale) = scale.to_integer() else {
            return false;
        };
        for &(i, c) in &self.coefficients {
            let Some(weight) = c.mul(Rat::from_int(scale)).ok().and_then(Rat::to_integer) else {
                return false;
            };
            if constraints[i].rel() == Rel::Le0 && weight < 0 {
                return false;
            }
            sum = sum.add(&constraints[i].expr().scale(weight));
        }
        sum.is_constant() && sum.constant_term() > 0
    }
}

/// Result of [`check_rational_with_certificate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertResult {
    /// Feasible over ℚ with a model.
    Sat(HashMap<VarId, Rat>),
    /// Infeasible, with a Farkas certificate.
    Unsat(FarkasCertificate),
    /// Arithmetic overflow.
    Unknown,
}

/// As [`check_rational`], additionally returning a Farkas certificate on
/// infeasibility.
pub fn check_rational_with_certificate(constraints: &[LinearConstraint]) -> CertResult {
    check_rational_with_certificate_governed(constraints, &ResourceGovernor::unlimited())
}

/// As [`check_rational_with_certificate`], charging `governor` per pivot.
pub fn check_rational_with_certificate_governed(
    constraints: &[LinearConstraint],
    governor: &ResourceGovernor,
) -> CertResult {
    let outcome = Tableau::new(constraints)
        .map_err(Halt::from)
        .and_then(|mut t| {
            t.check(governor)?;
            if t.feasible {
                Ok(CertResult::Sat(t.model()))
            } else {
                Ok(CertResult::Unsat(
                    t.extract_certificate().ok_or(Halt::Overflow)?,
                ))
            }
        });
    match outcome {
        Ok(r) => r,
        Err(_) => CertResult::Unknown,
    }
}

/// Internal solver variable: program variables first, then slacks.
type SVar = usize;

struct Tableau {
    /// Total number of solver variables.
    n: usize,
    /// Number of program variables (prefix of the solver variables).
    n_program: usize,
    /// Map program `VarId` → solver index, and its inverse prefix.
    var_ids: Vec<VarId>,
    /// Lower/upper bounds per solver variable.
    lower: Vec<Option<Rat>>,
    upper: Vec<Option<Rat>>,
    /// Current assignment β.
    beta: Vec<Rat>,
    /// `basic[i]` = solver var owned by row i; `row_of[v]` = its row.
    basic: Vec<SVar>,
    row_of: Vec<Option<usize>>,
    /// Dense tableau rows over all solver variables: for basic `b` with row
    /// `r`, `x_b = Σ_j rows[r][j]·x_j` where the sum ranges over nonbasic
    /// variables (entries of basic variables are kept at zero).
    rows: Vec<Vec<Rat>>,
    feasible: bool,
    /// Set when `check` fails: the violating basic variable, whether its
    /// upper bound was violated, and a snapshot of its row.
    conflict: Option<(SVar, bool, Vec<Rat>)>,
}

impl Tableau {
    fn new(constraints: &[LinearConstraint]) -> Result<Tableau, ArithmeticOverflow> {
        // Collect program variables.
        let mut var_index: HashMap<VarId, usize> = HashMap::new();
        let mut var_ids: Vec<VarId> = Vec::new();
        for c in constraints {
            for v in c.expr().vars() {
                var_index.entry(v).or_insert_with(|| {
                    var_ids.push(v);
                    var_ids.len() - 1
                });
            }
        }
        let n_program = var_ids.len();
        let n = n_program + constraints.len();

        let mut lower: Vec<Option<Rat>> = vec![None; n];
        let mut upper: Vec<Option<Rat>> = vec![None; n];
        let mut rows: Vec<Vec<Rat>> = Vec::with_capacity(constraints.len());
        let mut basic: Vec<SVar> = Vec::with_capacity(constraints.len());
        let mut row_of: Vec<Option<usize>> = vec![None; n];

        for (i, c) in constraints.iter().enumerate() {
            let slack = n_program + i;
            let mut row = vec![Rat::ZERO; n];
            for &(v, coeff) in c.expr().terms() {
                row[var_index[&v]] = Rat::from_int(coeff);
            }
            let bound = Rat::from_int(-c.expr().constant_term());
            match c.rel() {
                Rel::Le0 => upper[slack] = Some(bound),
                Rel::Eq0 => {
                    lower[slack] = Some(bound);
                    upper[slack] = Some(bound);
                }
            }
            row_of[slack] = Some(rows.len());
            rows.push(row);
            basic.push(slack);
        }

        Ok(Tableau {
            n,
            n_program,
            var_ids,
            lower,
            upper,
            beta: vec![Rat::ZERO; n],
            basic,
            row_of,
            rows,
            feasible: true,
            conflict: None,
        })
    }

    fn recompute_basic_values(&mut self) -> Result<(), ArithmeticOverflow> {
        for r in 0..self.rows.len() {
            let b = self.basic[r];
            let mut v = Rat::ZERO;
            for j in 0..self.n {
                let c = self.rows[r][j];
                if !c.is_zero() {
                    v = v.add(c.mul(self.beta[j])?)?;
                }
            }
            self.beta[b] = v;
        }
        Ok(())
    }

    fn is_nonbasic(&self, v: SVar) -> bool {
        self.row_of[v].is_none()
    }

    fn violates_lower(&self, v: SVar) -> bool {
        self.lower[v].is_some_and(|l| self.beta[v] < l)
    }

    fn violates_upper(&self, v: SVar) -> bool {
        self.upper[v].is_some_and(|u| self.beta[v] > u)
    }

    fn can_increase(&self, v: SVar) -> bool {
        self.upper[v].is_none_or(|u| self.beta[v] < u)
    }

    fn can_decrease(&self, v: SVar) -> bool {
        self.lower[v].is_none_or(|l| self.beta[v] > l)
    }

    /// Main check loop (Bland's rule: smallest-index selection).
    fn check(&mut self, governor: &ResourceGovernor) -> Result<(), Halt> {
        self.recompute_basic_values()?;
        loop {
            if governor.charge(Category::SimplexPivots).is_err() {
                return Err(Halt::Interrupted);
            }
            // Smallest violating basic variable.
            let Some(b) = (0..self.n)
                .filter(|&v| !self.is_nonbasic(v))
                .find(|&v| self.violates_lower(v) || self.violates_upper(v))
            else {
                self.feasible = true;
                return Ok(());
            };
            let r = self.row_of[b].expect("basic var has a row");
            let increase = self.violates_lower(b);
            let target = if increase {
                self.lower[b].expect("violated lower bound exists")
            } else {
                self.upper[b].expect("violated upper bound exists")
            };

            // Smallest suitable nonbasic variable.
            let mut pivot_col: Option<SVar> = None;
            for j in 0..self.n {
                if !self.is_nonbasic(j) {
                    continue;
                }
                let a = self.rows[r][j];
                if a.is_zero() {
                    continue;
                }
                let suitable = if increase {
                    (a.signum() > 0 && self.can_increase(j))
                        || (a.signum() < 0 && self.can_decrease(j))
                } else {
                    (a.signum() > 0 && self.can_decrease(j))
                        || (a.signum() < 0 && self.can_increase(j))
                };
                if suitable {
                    pivot_col = Some(j);
                    break;
                }
            }
            let Some(j) = pivot_col else {
                self.feasible = false;
                self.conflict = Some((b, !increase, self.rows[r].clone()));
                return Ok(());
            };
            self.pivot_and_update(r, b, j, target)?;
        }
    }

    /// Sets `x_b := target` by moving `x_j`, then pivots `b` out and `j` in.
    #[allow(clippy::needless_range_loop)] // dense-row pivoting reads clearest with indices
    fn pivot_and_update(
        &mut self,
        r: usize,
        b: SVar,
        j: SVar,
        target: Rat,
    ) -> Result<(), ArithmeticOverflow> {
        let a = self.rows[r][j];
        let theta = target.sub(self.beta[b])?.div(a)?;
        self.beta[b] = target;
        self.beta[j] = self.beta[j].add(theta)?;
        // Update other basic variables' values.
        for rr in 0..self.rows.len() {
            if rr == r {
                continue;
            }
            let coeff = self.rows[rr][j];
            if !coeff.is_zero() {
                let bb = self.basic[rr];
                self.beta[bb] = self.beta[bb].add(coeff.mul(theta)?)?;
            }
        }
        // Pivot: solve row r for x_j:
        // x_b = Σ a_k x_k  ⇒  x_j = (x_b − Σ_{k≠j} a_k x_k) / a_j
        let inv = Rat::ONE.div(a)?;
        let mut new_row = vec![Rat::ZERO; self.n];
        new_row[b] = inv;
        for k in 0..self.n {
            if k == j || k == b {
                continue;
            }
            let c = self.rows[r][k];
            if !c.is_zero() {
                new_row[k] = c.mul(inv)?.neg()?;
            }
        }
        self.rows[r] = new_row;
        self.basic[r] = j;
        self.row_of[j] = Some(r);
        self.row_of[b] = None;
        // Substitute x_j into the other rows.
        for rr in 0..self.rows.len() {
            if rr == r {
                continue;
            }
            let c = self.rows[rr][j];
            if c.is_zero() {
                continue;
            }
            self.rows[rr][j] = Rat::ZERO;
            for k in 0..self.n {
                let add = c.mul(self.rows[r][k])?;
                if !add.is_zero() {
                    self.rows[rr][k] = self.rows[rr][k].add(add)?;
                }
            }
        }
        Ok(())
    }

    /// Builds the Farkas certificate from the recorded conflict row.
    ///
    /// In a conflict row every nonzero nonbasic column is a slack variable
    /// stuck at a bound (program variables are unbounded, hence always
    /// pivotable), and each slack corresponds 1:1 to an input constraint.
    fn extract_certificate(&self) -> Option<FarkasCertificate> {
        let (basic, upper_violated, row) = self.conflict.as_ref()?;
        let cons_idx = |v: SVar| v - self.n_program;
        let mut coefficients: Vec<(usize, Rat)> = Vec::new();
        let b_coeff = if *upper_violated {
            Rat::ONE
        } else {
            Rat::ONE.neg().ok()?
        };
        coefficients.push((cons_idx(*basic), b_coeff));
        for (j, &a) in row.iter().enumerate() {
            if a.is_zero() || !self.is_nonbasic(j) || j == *basic {
                continue;
            }
            debug_assert!(
                j >= self.n_program,
                "conflict row has a pivotable program-variable column"
            );
            let coeff = if *upper_violated { a.neg().ok()? } else { a };
            coefficients.push((cons_idx(j), coeff));
        }
        Some(FarkasCertificate { coefficients })
    }

    fn model(&self) -> HashMap<VarId, Rat> {
        (0..self.n_program)
            .map(|i| (self.var_ids[i], self.beta[i]))
            .collect()
    }
}

/// Outcome of an incremental assert or check: feasible so far, a conflict
/// explained by the *tags* of the participating asserted constraints, or
/// no verdict (overflow / tripped governor).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TheoryResult {
    /// No contradiction detected.
    Ok,
    /// Rational conflict; the tags of a (small) inconsistent subset of the
    /// currently asserted constraints.
    Conflict(Vec<u32>),
    /// Arithmetic overflow or governor trip — no verdict.
    Unknown,
}

/// An undo record for one retractable bound.
#[derive(Clone, Debug)]
struct UndoBound {
    col: SVar,
    is_upper: bool,
    prev: Option<(Rat, u32)>,
}

/// A checkpoint into the bound trail of an [`IncrementalSimplex`]
/// (see [`IncrementalSimplex::mark`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimplexMark(usize);

/// A persistent, incremental variant of the general simplex: constraints
/// are asserted as *retractable bounds* over a tableau whose rows and basis
/// survive retraction, so re-checks after push/pop warm-start from the last
/// feasible basis instead of rebuilding from scratch.
///
/// Each distinct linear-combination shape `Σ cᵢxᵢ` gets one slack row,
/// created on first use and kept forever; asserting a constraint only
/// tightens a bound (recording an undo entry). [`IncrementalSimplex::mark`]
/// / [`IncrementalSimplex::undo_to`] retract bounds in LIFO order without
/// touching the basis. Single-variable constraints bound their program
/// column directly (no row), which is also what makes
/// [`IncrementalSimplex::bound_clash`]-style theory propagation cheap.
///
/// Conflicts are reported as the set of caller-chosen `tag`s of the
/// asserted constraints forming an infeasible subset (a Farkas row read
/// back through the bound ownership), which the CDCL engine turns into
/// learned theory clauses.
#[derive(Clone, Debug, Default)]
pub struct IncrementalSimplex {
    /// Total solver columns (program variables and slacks interleaved in
    /// creation order).
    n: usize,
    var_index: HashMap<VarId, SVar>,
    /// `Some(v)` for program columns, `None` for slacks.
    program_of: Vec<Option<VarId>>,
    /// One slack column per distinct term vector.
    slack_of_terms: HashMap<Vec<(VarId, i128)>, SVar>,
    /// Retractable bounds: `(value, tag of the owning assertion)`.
    lower: Vec<Option<(Rat, u32)>>,
    upper: Vec<Option<(Rat, u32)>>,
    beta: Vec<Rat>,
    basic: Vec<SVar>,
    row_of: Vec<Option<usize>>,
    /// Dense rows, lazily padded as columns are added.
    rows: Vec<Vec<Rat>>,
    trail: Vec<UndoBound>,
    /// Total pivots performed over the lifetime (introspection).
    pivots: u64,
}

impl IncrementalSimplex {
    /// An empty incremental tableau.
    pub fn new() -> IncrementalSimplex {
        IncrementalSimplex::default()
    }

    /// A checkpoint; [`IncrementalSimplex::undo_to`] retracts every bound
    /// asserted after it. Rows and basis are never retracted.
    pub fn mark(&self) -> SimplexMark {
        SimplexMark(self.trail.len())
    }

    /// Retracts bounds back to `m` (LIFO). The current assignment stays
    /// valid: loosening bounds cannot invalidate a nonbasic variable.
    pub fn undo_to(&mut self, m: SimplexMark) {
        while self.trail.len() > m.0 {
            let u = self.trail.pop().expect("trail length checked");
            if u.is_upper {
                self.upper[u.col] = u.prev;
            } else {
                self.lower[u.col] = u.prev;
            }
        }
    }

    /// Number of tableau rows (introspection: the warm basis size).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total pivots performed so far (introspection).
    pub fn pivots(&self) -> u64 {
        self.pivots
    }

    /// Current rational assignment of the program variables, in column
    /// (creation) order.
    pub fn values(&self) -> Vec<(VarId, Rat)> {
        (0..self.n)
            .filter_map(|j| self.program_of[j].map(|v| (v, self.beta[j])))
            .collect()
    }

    fn new_col(&mut self, program: Option<VarId>) -> SVar {
        let j = self.n;
        self.n += 1;
        self.program_of.push(program);
        self.lower.push(None);
        self.upper.push(None);
        self.beta.push(Rat::ZERO);
        self.row_of.push(None);
        j
    }

    fn ensure_var(&mut self, v: VarId) -> SVar {
        if let Some(&j) = self.var_index.get(&v) {
            return j;
        }
        let j = self.new_col(Some(v));
        self.var_index.insert(v, j);
        j
    }

    fn coef(&self, r: usize, j: SVar) -> Rat {
        self.rows[r].get(j).copied().unwrap_or(Rat::ZERO)
    }

    fn set_coef(row: &mut Vec<Rat>, j: SVar, v: Rat) {
        if row.len() <= j {
            row.resize(j + 1, Rat::ZERO);
        }
        row[j] = v;
    }

    /// Creates the slack row `x_s = Σ cᵢxᵢ` for a new term vector,
    /// substituting currently-basic variables through their rows so the
    /// tableau invariant (rows range over nonbasic variables) holds.
    fn new_row(&mut self, terms: &[(VarId, i128)]) -> Result<SVar, ArithmeticOverflow> {
        let cols: Vec<(SVar, Rat)> = terms
            .iter()
            .map(|&(v, c)| (self.ensure_var(v), Rat::from_int(c)))
            .collect();
        let s = self.new_col(None);
        let mut row: Vec<Rat> = vec![Rat::ZERO; self.n];
        let mut val = Rat::ZERO;
        for &(j, c) in &cols {
            val = val.add(c.mul(self.beta[j])?)?;
            match self.row_of[j] {
                None => row[j] = row[j].add(c)?,
                Some(r) => {
                    for (k, &a) in self.rows[r].iter().enumerate() {
                        if !a.is_zero() {
                            row[k] = row[k].add(c.mul(a)?)?;
                        }
                    }
                }
            }
        }
        self.beta[s] = val;
        self.row_of[s] = Some(self.rows.len());
        self.basic.push(s);
        self.rows.push(row);
        self.slack_of_terms.insert(terms.to_vec(), s);
        Ok(s)
    }

    /// Asserts `c` as a retractable bound owned by `tag`. Detects
    /// immediate bound clashes (`lower > upper`) without pivoting; call
    /// [`IncrementalSimplex::check`] afterwards for full feasibility.
    pub fn assert_constraint(&mut self, c: &LinearConstraint, tag: u32) -> TheoryResult {
        match self.assert_inner(c, tag) {
            Ok(r) => r,
            Err(_) => TheoryResult::Unknown,
        }
    }

    fn assert_inner(
        &mut self,
        c: &LinearConstraint,
        tag: u32,
    ) -> Result<TheoryResult, ArithmeticOverflow> {
        let terms = c.expr().terms();
        let k = c.expr().constant_term();
        // Single-variable constraints (±1 coefficient after normalization)
        // bound the program column directly.
        let (col, bound, upper_dir) = if let [(x, a)] = *terms {
            debug_assert!(a == 1 || a == -1, "normalized single-var coefficient");
            let col = self.ensure_var(x);
            (col, Rat::new(-k, a)?, a > 0)
        } else {
            let col = match self.slack_of_terms.get(terms) {
                Some(&s) => s,
                None => self.new_row(terms)?,
            };
            (col, Rat::from_int(-k), true)
        };
        match c.rel() {
            Rel::Le0 => {
                if upper_dir {
                    self.tighten(col, true, bound, tag)
                } else {
                    self.tighten(col, false, bound, tag)
                }
            }
            Rel::Eq0 => {
                match self.tighten(col, true, bound, tag)? {
                    TheoryResult::Ok => {}
                    other => return Ok(other),
                }
                self.tighten(col, false, bound, tag)
            }
        }
    }

    /// Tightens one bound, recording an undo entry when it actually moves.
    fn tighten(
        &mut self,
        col: SVar,
        is_upper: bool,
        val: Rat,
        tag: u32,
    ) -> Result<TheoryResult, ArithmeticOverflow> {
        let current = if is_upper {
            &self.upper[col]
        } else {
            &self.lower[col]
        };
        let tighter = match current {
            Some((b, _)) => {
                if is_upper {
                    val < *b
                } else {
                    val > *b
                }
            }
            None => true,
        };
        if !tighter {
            return Ok(TheoryResult::Ok);
        }
        self.trail.push(UndoBound {
            col,
            is_upper,
            prev: *current,
        });
        if is_upper {
            self.upper[col] = Some((val, tag));
            if let Some((l, lt)) = self.lower[col] {
                if l > val {
                    return Ok(TheoryResult::Conflict(vec![lt, tag]));
                }
            }
            if self.row_of[col].is_none() && self.beta[col] > val {
                self.update_nonbasic(col, val)?;
            }
        } else {
            self.lower[col] = Some((val, tag));
            if let Some((u, ut)) = self.upper[col] {
                if u < val {
                    return Ok(TheoryResult::Conflict(vec![ut, tag]));
                }
            }
            if self.row_of[col].is_none() && self.beta[col] < val {
                self.update_nonbasic(col, val)?;
            }
        }
        Ok(TheoryResult::Ok)
    }

    /// Moves nonbasic `j` to `v`, propagating the delta into every basic
    /// variable depending on it (Dutertre–de Moura `update`).
    fn update_nonbasic(&mut self, j: SVar, v: Rat) -> Result<(), ArithmeticOverflow> {
        let delta = v.sub(self.beta[j])?;
        self.beta[j] = v;
        for r in 0..self.rows.len() {
            let c = self.coef(r, j);
            if !c.is_zero() {
                let b = self.basic[r];
                self.beta[b] = self.beta[b].add(c.mul(delta)?)?;
            }
        }
        Ok(())
    }

    /// If the single-variable constraint `c` is directly contradicted by a
    /// currently asserted bound on its variable, returns the owning tag.
    /// This is the cheap bound-clash theory propagation the CDCL engine
    /// turns into binary learned clauses.
    pub fn bound_clash(&self, c: &LinearConstraint) -> Option<u32> {
        let [(x, a)] = *c.expr().terms() else {
            return None;
        };
        let col = *self.var_index.get(&x)?;
        let bound = Rat::new(-c.expr().constant_term(), a).ok()?;
        let lower_clash = || self.lower[col].and_then(|(l, t)| (l > bound).then_some(t));
        let upper_clash = || self.upper[col].and_then(|(u, t)| (u < bound).then_some(t));
        match c.rel() {
            // a > 0: demands x ≤ bound; a < 0: demands x ≥ bound.
            Rel::Le0 if a > 0 => lower_clash(),
            Rel::Le0 => upper_clash(),
            Rel::Eq0 => lower_clash().or_else(upper_clash),
        }
    }

    /// Repairs feasibility from the current (warm) basis, charging
    /// `governor` one [`Category::SimplexPivots`] unit per pivot.
    pub fn check(&mut self, governor: &ResourceGovernor) -> TheoryResult {
        match self.check_inner(governor) {
            Ok(r) => r,
            Err(_) => TheoryResult::Unknown,
        }
    }

    fn check_inner(&mut self, governor: &ResourceGovernor) -> Result<TheoryResult, Halt> {
        loop {
            if governor.charge(Category::SimplexPivots).is_err() {
                return Err(Halt::Interrupted);
            }
            // Smallest violating basic variable (Bland's rule).
            let violated = (0..self.n).find(|&v| {
                self.row_of[v].is_some()
                    && (self.lower[v].is_some_and(|(l, _)| self.beta[v] < l)
                        || self.upper[v].is_some_and(|(u, _)| self.beta[v] > u))
            });
            let Some(b) = violated else {
                return Ok(TheoryResult::Ok);
            };
            let r = self.row_of[b].expect("basic var has a row");
            let increase = self.lower[b].is_some_and(|(l, _)| self.beta[b] < l);
            let target = if increase {
                self.lower[b].expect("violated lower bound exists").0
            } else {
                self.upper[b].expect("violated upper bound exists").0
            };
            // Smallest suitable nonbasic column.
            let mut pivot_col: Option<SVar> = None;
            for j in 0..self.n {
                if self.row_of[j].is_some() {
                    continue;
                }
                let a = self.coef(r, j);
                if a.is_zero() {
                    continue;
                }
                let can_inc = self.upper[j].is_none_or(|(u, _)| self.beta[j] < u);
                let can_dec = self.lower[j].is_none_or(|(l, _)| self.beta[j] > l);
                let suitable = if increase {
                    (a.signum() > 0 && can_inc) || (a.signum() < 0 && can_dec)
                } else {
                    (a.signum() > 0 && can_dec) || (a.signum() < 0 && can_inc)
                };
                if suitable {
                    pivot_col = Some(j);
                    break;
                }
            }
            let Some(j) = pivot_col else {
                return Ok(TheoryResult::Conflict(self.explain(b, r, increase)));
            };
            self.pivots += 1;
            self.pivot_and_update(r, b, j, target)?;
        }
    }

    /// Reads the conflict explanation off the stuck row: the violated
    /// bound of `b` plus, per nonzero column, the bound blocking it.
    fn explain(&self, b: SVar, r: usize, increase: bool) -> Vec<u32> {
        let own = if increase {
            self.lower[b].expect("violated lower bound").1
        } else {
            self.upper[b].expect("violated upper bound").1
        };
        let mut tags = vec![own];
        for j in 0..self.n {
            if self.row_of[j].is_some() || j == b {
                continue;
            }
            let a = self.coef(r, j);
            if a.is_zero() {
                continue;
            }
            let blocked_upper = if increase {
                a.signum() > 0
            } else {
                a.signum() < 0
            };
            let t = if blocked_upper {
                self.upper[j].expect("blocking upper bound exists").1
            } else {
                self.lower[j].expect("blocking lower bound exists").1
            };
            tags.push(t);
        }
        tags.sort_unstable();
        tags.dedup();
        tags
    }

    /// Sets `x_b := target` by moving `x_j`, then pivots `b` out, `j` in
    /// (the dense-row pivot of [`Tableau`], adapted to lazily-padded rows).
    fn pivot_and_update(
        &mut self,
        r: usize,
        b: SVar,
        j: SVar,
        target: Rat,
    ) -> Result<(), ArithmeticOverflow> {
        let a = self.coef(r, j);
        let theta = target.sub(self.beta[b])?.div(a)?;
        self.beta[b] = target;
        self.beta[j] = self.beta[j].add(theta)?;
        for rr in 0..self.rows.len() {
            if rr == r {
                continue;
            }
            let coeff = self.coef(rr, j);
            if !coeff.is_zero() {
                let bb = self.basic[rr];
                self.beta[bb] = self.beta[bb].add(coeff.mul(theta)?)?;
            }
        }
        let inv = Rat::ONE.div(a)?;
        let mut new_row = vec![Rat::ZERO; self.n];
        Self::set_coef(&mut new_row, b, inv);
        for k in 0..self.rows[r].len() {
            if k == j || k == b {
                continue;
            }
            let c = self.rows[r][k];
            if !c.is_zero() {
                Self::set_coef(&mut new_row, k, c.mul(inv)?.neg()?);
            }
        }
        self.rows[r] = new_row;
        self.basic[r] = j;
        self.row_of[j] = Some(r);
        self.row_of[b] = None;
        for rr in 0..self.rows.len() {
            if rr == r {
                continue;
            }
            let c = self.coef(rr, j);
            if c.is_zero() {
                continue;
            }
            Self::set_coef(&mut self.rows[rr], j, Rat::ZERO);
            for k in 0..self.rows[r].len() {
                let add = c.mul(self.rows[r][k])?;
                if !add.is_zero() {
                    let cur = self.coef(rr, k);
                    Self::set_coef(&mut self.rows[rr], k, cur.add(add)?);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{LinExpr, NormalizedConstraint};

    fn cons(e: LinExpr, r: Rel) -> LinearConstraint {
        match LinearConstraint::new(e, r) {
            NormalizedConstraint::Constraint(c) => c,
            other => panic!("trivial constraint {other:?}"),
        }
    }

    fn x() -> VarId {
        VarId(0)
    }
    fn y() -> VarId {
        VarId(1)
    }

    /// e ≤ k as constraint.
    fn le(e: LinExpr, k: i128) -> LinearConstraint {
        cons(e.sub(&LinExpr::constant(k)), Rel::Le0)
    }
    /// e ≥ k.
    fn ge(e: LinExpr, k: i128) -> LinearConstraint {
        cons(LinExpr::constant(k).sub(&e), Rel::Le0)
    }
    /// e = k.
    fn eq(e: LinExpr, k: i128) -> LinearConstraint {
        cons(e.sub(&LinExpr::constant(k)), Rel::Eq0)
    }

    fn assert_sat_model(cs: &[LinearConstraint]) {
        match check_rational(cs) {
            SimplexResult::Sat(m) => {
                for c in cs {
                    // Verify the model satisfies every constraint over ℚ.
                    let mut v = Rat::from_int(c.expr().constant_term());
                    for &(var, coeff) in c.expr().terms() {
                        v = v.add(Rat::from_int(coeff).mul(m[&var]).unwrap()).unwrap();
                    }
                    let ok = match c.rel() {
                        Rel::Le0 => v <= Rat::ZERO,
                        Rel::Eq0 => v == Rat::ZERO,
                    };
                    assert!(ok, "model violates {c:?} (value {v:?})");
                }
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn satisfiable_box() {
        assert_sat_model(&[ge(LinExpr::var(x()), 1), le(LinExpr::var(x()), 5)]);
    }

    #[test]
    fn unsat_interval() {
        let cs = [ge(LinExpr::var(x()), 3), le(LinExpr::var(x()), 2)];
        assert_eq!(check_rational(&cs), SimplexResult::Unsat);
    }

    #[test]
    fn equality_chain_unsat() {
        // x = y, y = x + 1
        let cs = [
            eq(LinExpr::var(x()).sub(&LinExpr::var(y())), 0),
            eq(LinExpr::var(y()).sub(&LinExpr::var(x())), 1),
        ];
        assert_eq!(check_rational(&cs), SimplexResult::Unsat);
    }

    #[test]
    fn equality_chain_sat() {
        // x = 2, y = x + 3, y ≤ 5
        assert_sat_model(&[
            eq(LinExpr::var(x()), 2),
            eq(LinExpr::var(y()).sub(&LinExpr::var(x())), 3),
            le(LinExpr::var(y()), 5),
        ]);
    }

    #[test]
    fn two_var_polytope() {
        // x + y ≤ 4, x − y ≤ 0, x ≥ 1 → e.g. (1, 3).
        assert_sat_model(&[
            le(LinExpr::var(x()).add(&LinExpr::var(y())), 4),
            le(LinExpr::var(x()).sub(&LinExpr::var(y())), 0),
            ge(LinExpr::var(x()), 1),
        ]);
    }

    #[test]
    fn farkas_style_unsat() {
        // x + y ≥ 5, x ≤ 1, y ≤ 2  → 5 ≤ x + y ≤ 3, unsat.
        let cs = [
            ge(LinExpr::var(x()).add(&LinExpr::var(y())), 5),
            le(LinExpr::var(x()), 1),
            le(LinExpr::var(y()), 2),
        ];
        assert_eq!(check_rational(&cs), SimplexResult::Unsat);
    }

    #[test]
    fn unbounded_is_sat() {
        assert_sat_model(&[ge(LinExpr::var(x()), 1_000_000)]);
    }

    #[test]
    fn empty_input_is_sat() {
        assert_eq!(check_rational(&[]), SimplexResult::Sat(HashMap::new()));
    }

    #[test]
    fn degenerate_pivoting_terminates() {
        // A system that forces several pivots: x ≥ 0, y ≥ 0,
        // x + y ≤ 0, x − y = 0  →  only (0,0).
        assert_sat_model(&[
            ge(LinExpr::var(x()), 0),
            ge(LinExpr::var(y()), 0),
            le(LinExpr::var(x()).add(&LinExpr::var(y())), 0),
            eq(LinExpr::var(x()).sub(&LinExpr::var(y())), 0),
        ]);
    }

    #[test]
    fn pivot_budget_degrades_to_unknown() {
        // x + y ≥ 5, x ≤ 1, y ≤ 2 needs several pivots to refute.
        let cs = [
            ge(LinExpr::var(x()).add(&LinExpr::var(y())), 5),
            le(LinExpr::var(x()), 1),
            le(LinExpr::var(y()), 2),
        ];
        let g = ResourceGovernor::builder()
            .budget(Category::SimplexPivots, 1)
            .build();
        assert_eq!(check_rational_governed(&cs, &g), SimplexResult::Unknown);
        assert_eq!(g.give_up().unwrap().category, Category::SimplexPivots);
        // Ungoverned, the same system is decided exactly.
        assert_eq!(check_rational(&cs), SimplexResult::Unsat);
        // A tripped governor also downgrades certificate queries.
        assert_eq!(
            check_rational_with_certificate_governed(&cs, &g),
            CertResult::Unknown
        );
    }

    #[test]
    fn redundant_constraints() {
        assert_sat_model(&[
            ge(LinExpr::var(x()), 1),
            ge(LinExpr::var(x()), 1),
            ge(LinExpr::var(x()).scale(1), 0),
        ]);
    }
}
