//! A self-contained SMT solver for quantifier-free linear integer
//! arithmetic (QF-LIA), built for the sound-sequentialization verifier.
//!
//! The paper's tool discharges three kinds of queries through an SMT
//! solver, all over linear integer arithmetic:
//!
//! 1. **trace feasibility** — is the SSA encoding of a counterexample trace
//!    satisfiable? ([`solver::check`], exact via simplex + branch-and-bound)
//! 2. **Hoare triple validity / entailment** — does a candidate assertion
//!    survive a statement? ([`solver::entails`], [`solver::is_valid`])
//! 3. **(conditional) commutativity** — do `a;b` and `b;a` have the same
//!    transition semantics under a context assertion φ?
//!    ([`solver::equivalent`])
//!
//! The crate is layered bottom-up:
//!
//! * [`rational`] — checked `i128` rationals for the simplex core;
//! * [`linear`] — linear expressions and normalized constraints (the atom
//!   language; negation is integer-exact and eliminated at construction);
//! * [`term`] — hash-consed, negation-free formulas over those atoms;
//! * [`simplex`] — rational feasibility (Dutertre–de Moura general simplex);
//! * [`lia`] — integer feasibility via branch-and-bound;
//! * [`solver`] — boolean search over the monotone formula structure
//!   (CDCL(T) by default, the legacy DPLL for ablation);
//! * [`cdcl`] — the CDCL(T) engine: watched literals, 1UIP learning,
//!   backjumping, theory propagation over an incremental simplex;
//! * [`qcache`] — canonicalizing, cross-pool query-result memoization
//!   consulted by [`solver::check`] (definitive verdicts only);
//! * [`unsat_core`] — deletion-based cores (drives trace slicing);
//! * [`cube`] — cubes/DNF with variable elimination (drives strongest-
//!   postcondition interpolation).
//!
//! All verdicts are conservative: `Unknown` results (budget exhaustion or
//! `i128` overflow) are never reported as `Sat`/`Unsat`.
//!
//! # Example
//!
//! ```
//! use smt::term::TermPool;
//! use smt::solver::{check, entails};
//!
//! let mut pool = TermPool::new();
//! let pending = pool.var("pendingIo");
//! let ge2 = pool.ge_const(pending, 2);
//! let ge1 = pool.ge_const(pending, 1);
//! assert!(entails(&mut pool, ge2, ge1));
//! assert!(check(&mut pool, &[ge2]).is_sat());
//! ```

pub mod cdcl;
pub mod cube;
pub mod interpolate;
pub mod lia;
pub mod linear;
pub mod qcache;
pub mod rational;
pub mod resource;
pub mod simplex;
pub mod solver;
pub mod term;
pub mod transfer;
pub mod unsat_core;

pub use cdcl::{CdclOutcome, CdclSolver};
pub use linear::{LinExpr, LinearConstraint, Rel, VarId};
pub use qcache::{CacheStats, QueryCache};
pub use resource::{Category, FaultKind, FaultPlan, GiveUp, GovernorBuilder, ResourceGovernor};
pub use simplex::{IncrementalSimplex, SimplexMark, TheoryResult};
pub use solver::{
    check, entails, equivalent, is_valid, AssertionScope, Model, SatResult, SolverKind,
};
pub use term::{Term, TermId, TermPool};
pub use transfer::ExportedTerm;
