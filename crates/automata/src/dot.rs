//! Graphviz DOT export for debugging automata constructions.

use crate::dfa::Dfa;
use std::fmt::Display;
use std::fmt::Write as _;
use std::hash::Hash;

/// Renders `dfa` in Graphviz DOT syntax, labelling edges with the letters'
/// `Display` form.
///
/// # Example
///
/// ```
/// use automata::dfa::DfaBuilder;
/// use automata::dot::to_dot;
///
/// let mut b = DfaBuilder::new();
/// let q0 = b.add_state(true);
/// b.add_transition(q0, 'a', q0);
/// let dot = to_dot(&b.build(q0), "loop");
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("label=\"a\""));
/// ```
pub fn to_dot<L: Copy + Eq + Ord + Hash + Display>(dfa: &Dfa<L>, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  __init [shape=point];");
    for q in dfa.states() {
        let shape = if dfa.is_accepting(q) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  {} [shape={shape}];", q.index());
    }
    let _ = writeln!(out, "  __init -> {};", dfa.initial().index());
    for q in dfa.states() {
        for (l, t) in dfa.edges(q) {
            let _ = writeln!(out, "  {} -> {} [label=\"{l}\"];", q.index(), t.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::DfaBuilder;

    #[test]
    fn dot_output_structure() {
        let mut b = DfaBuilder::new();
        let q0 = b.add_state(false);
        let q1 = b.add_state(true);
        b.add_transition(q0, 'x', q1);
        let dot = to_dot(&b.build(q0), "t");
        assert!(dot.starts_with("digraph \"t\" {"));
        assert!(dot.contains("0 -> 1 [label=\"x\"]"));
        assert!(dot.contains("1 [shape=doublecircle]"));
        assert!(dot.contains("0 [shape=circle]"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
