//! The refinement loop: configuration, verdicts and statistics.
//!
//! Each round checks the current proof candidate against the on-the-fly
//! reduction (Algorithm 2); an uncovered trace is analyzed exactly and
//! either reported as a bug or turned into new assertions. The *baseline*
//! configuration ([`VerifierConfig::automizer`]) disables every reduction
//! mechanism and thus explores the full interleaving product — the paper's
//! comparison against Ultimate Automizer.

use crate::certify::{CertSpec, Certificate, SpecCert};
use crate::check::{record_reduction, CheckConfig, CheckResult, CheckStats, UselessCache};
use crate::engine::TraceHistory;
use crate::govern::{panic_reason, Category, GiveUp, GovernorConfig, ResourceGovernor};
use crate::interpolate::{
    analyze_trace_with_mode, InterpolationMode, InterpolationStats, TraceResult,
};
use crate::pardfs::{routed_check_proof, ParDfs};
use crate::proof::ProofAutomaton;
use crate::snapshot::program_fingerprint;
use program::commutativity::{CommutativityLevel, CommutativityOracle};
use program::concurrent::{LetterId, Program, Spec};
use reduction::order::{LockstepOrder, PreferenceOrder, PriorityOrder, RandomOrder, SeqOrder};
use reduction::persistent::PersistentSets;
use smt::term::TermPool;
use smt::SolverKind;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Which preference order to instantiate (§8 evaluates these three
/// families).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrderSpec {
    /// Thread-uniform order approximating sequential composition.
    Seq,
    /// Positional order approximating lockstep scheduling.
    Lockstep,
    /// Seeded pseudo-random permutation of the alphabet.
    Random(u64),
    /// Thread-uniform order with an explicit thread priority permutation.
    Priority(Vec<u32>),
}

impl OrderSpec {
    /// Instantiates the order.
    pub fn build(&self) -> Box<dyn PreferenceOrder> {
        match self {
            OrderSpec::Seq => Box::new(SeqOrder::new()),
            OrderSpec::Lockstep => Box::new(LockstepOrder::new()),
            OrderSpec::Random(seed) => Box::new(RandomOrder::new(*seed)),
            OrderSpec::Priority(p) => Box::new(PriorityOrder::new(p.clone())),
        }
    }

    /// The order's display name.
    pub fn name(&self) -> String {
        match self {
            OrderSpec::Seq => "seq".to_owned(),
            OrderSpec::Lockstep => "lockstep".to_owned(),
            OrderSpec::Random(s) => format!("rand({s})"),
            OrderSpec::Priority(p) => format!(
                "priority({})",
                p.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
            ),
        }
    }
}

/// Full verifier configuration.
#[derive(Clone, Debug)]
pub struct VerifierConfig {
    /// Display name (e.g. `"gemcutter-seq"`, `"automizer"`).
    pub name: String,
    /// The preference order.
    pub order: OrderSpec,
    /// Sleep sets (language-minimal reduction).
    pub use_sleep: bool,
    /// Weakly persistent membranes (state pruning).
    pub use_persistent: bool,
    /// Proof-sensitive commutativity in sleep sets (§7.2).
    pub proof_sensitive: bool,
    /// Commutativity oracle level.
    pub commutativity: CommutativityLevel,
    /// Which interpolation engine generates assertion chains.
    pub interpolation: InterpolationMode,
    /// Maximum refinement rounds before giving up.
    pub max_rounds: usize,
    /// Maximum visited states per proof-check round. One documented
    /// budget: the DFS and the certificate recording re-walk both stop
    /// at this bound (each also charges `Category::DfsStates` per state,
    /// so [`GovernorConfig`] owns the run-wide limit).
    pub max_visited_per_round: usize,
    /// Worker threads for the proof-check DFS inside each engine
    /// (`--dfs-threads`). `1` (the default) is the sequential Algorithm 2
    /// path, byte-for-byte.
    pub dfs_threads: usize,
    /// Resource governance: deadline, run-wide step budgets and fault
    /// injection. Unlimited by default.
    pub govern: GovernorConfig,
    /// Solver-level query memoization ([`smt::qcache`]). When disabled,
    /// the pool's cache is removed for the duration of the run and every
    /// query (and Hoare scope) solves cold — the measurement baseline.
    pub use_qcache: bool,
    /// Which boolean search engine answers SMT queries
    /// ([`SolverKind::Cdcl`] by default; [`SolverKind::Dpll`] is the
    /// legacy ablation baseline). Installed on the pool for the
    /// duration of the run, like the governor and the query cache.
    pub solver: SolverKind,
    /// Emit a checkable [`Certificate`] with every conclusive verdict
    /// (one recording pass over the final reduction per proven spec).
    /// When recording cannot complete — e.g. the governor trips mid-pass —
    /// the verdict is reported without a certificate rather than delayed.
    pub certify: bool,
}

impl VerifierConfig {
    /// GemCutter with the `seq` preference order (full machinery).
    pub fn gemcutter_seq() -> VerifierConfig {
        VerifierConfig {
            name: "gemcutter-seq".to_owned(),
            order: OrderSpec::Seq,
            use_sleep: true,
            use_persistent: true,
            proof_sensitive: true,
            commutativity: CommutativityLevel::Semantic,
            interpolation: InterpolationMode::SpChain,
            max_rounds: 60,
            max_visited_per_round: 400_000,
            dfs_threads: 1,
            govern: GovernorConfig::default(),
            use_qcache: true,
            solver: SolverKind::default(),
            certify: true,
        }
    }

    /// GemCutter with the lockstep preference order.
    pub fn gemcutter_lockstep() -> VerifierConfig {
        VerifierConfig {
            name: "gemcutter-lockstep".to_owned(),
            order: OrderSpec::Lockstep,
            ..VerifierConfig::gemcutter_seq()
        }
    }

    /// GemCutter with a seeded random preference order.
    pub fn gemcutter_random(seed: u64) -> VerifierConfig {
        VerifierConfig {
            name: format!("gemcutter-rand({seed})"),
            order: OrderSpec::Random(seed),
            ..VerifierConfig::gemcutter_seq()
        }
    }

    /// The Automizer baseline: trace abstraction over the *full*
    /// interleaving product (no reduction machinery at all).
    pub fn automizer() -> VerifierConfig {
        VerifierConfig {
            name: "automizer".to_owned(),
            order: OrderSpec::Seq,
            use_sleep: false,
            use_persistent: false,
            proof_sensitive: false,
            commutativity: CommutativityLevel::Syntactic,
            ..VerifierConfig::gemcutter_seq()
        }
    }

    /// Sleep sets only (Table 2's "sleep" column).
    pub fn sleep_only() -> VerifierConfig {
        VerifierConfig {
            name: "sleep".to_owned(),
            use_persistent: false,
            ..VerifierConfig::gemcutter_seq()
        }
    }

    /// Persistent sets only (Table 2's "persistent" column).
    pub fn persistent_only() -> VerifierConfig {
        VerifierConfig {
            name: "persistent".to_owned(),
            use_sleep: false,
            proof_sensitive: false,
            ..VerifierConfig::gemcutter_seq()
        }
    }

    /// Disables proof-sensitive commutativity (the §8 ablation).
    pub fn without_proof_sensitivity(mut self) -> VerifierConfig {
        self.proof_sensitive = false;
        self.name = format!("{}-nops", self.name);
        self
    }

    /// Switches to Farkas-certificate interpolation (single-inequality
    /// assertions; falls back to sp-chains on non-conjunctive traces).
    pub fn with_farkas_interpolation(mut self) -> VerifierConfig {
        self.interpolation = InterpolationMode::Farkas;
        self.name = format!("{}-farkas", self.name);
        self
    }

    /// Disables solver-level query memoization (the `--no-qcache`
    /// escape hatch and the perf baseline).
    pub fn without_qcache(mut self) -> VerifierConfig {
        self.use_qcache = false;
        self
    }

    /// Selects the SMT boolean search engine (`--solver=dpll|cdcl`).
    pub fn with_solver(mut self, solver: SolverKind) -> VerifierConfig {
        self.solver = solver;
        self
    }

    /// Disables certificate recording (ablations and perf baselines).
    pub fn without_certificates(mut self) -> VerifierConfig {
        self.certify = false;
        self
    }

    /// Sets the number of proof-check DFS worker threads
    /// (`--dfs-threads`); `1` restores the sequential path.
    pub fn with_dfs_threads(mut self, threads: usize) -> VerifierConfig {
        self.dfs_threads = threads.max(1);
        self
    }
}

/// Verification verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The program satisfies its specification.
    Correct,
    /// A feasible violating trace was found.
    Incorrect {
        /// The violating trace (letters of the program alphabet).
        trace: Vec<LetterId>,
    },
    /// The verifier gave up: resource exhaustion, solver incompleteness,
    /// cancellation or an injected fault — categorized in the record.
    GaveUp(GiveUp),
}

impl Verdict {
    /// A give-up verdict from a category and reason.
    pub fn gave_up(category: Category, reason: impl Into<String>) -> Verdict {
        Verdict::GaveUp(GiveUp::new(category, reason))
    }

    /// `true` for [`Verdict::Correct`].
    pub fn is_correct(&self) -> bool {
        matches!(self, Verdict::Correct)
    }

    /// `true` for [`Verdict::Incorrect`].
    pub fn is_incorrect(&self) -> bool {
        matches!(self, Verdict::Incorrect { .. })
    }

    /// The give-up record, for [`Verdict::GaveUp`].
    pub fn give_up(&self) -> Option<&GiveUp> {
        match self {
            Verdict::GaveUp(g) => Some(g),
            _ => None,
        }
    }
}

/// Aggregated run statistics (the quantities reported in Tables 1–2).
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Refinement rounds across all analyses.
    pub rounds: usize,
    /// Final proof size (number of assertions).
    pub proof_size: usize,
    /// Total visited proof-check states (memory proxy).
    pub visited_states: usize,
    /// Largest single-round visited count.
    pub max_round_visited: usize,
    /// Hoare-triple solver queries.
    pub hoare_checks: usize,
    /// Useless-cache skips (§7.2 optimization effectiveness).
    pub cache_skips: usize,
    /// Useless-cache probes (skips are the hits; misses are the rest).
    pub useless_probes: usize,
    /// Useless-cache entries at the end of the run (a gauge; for multi-
    /// engine runs, summed over engines).
    pub useless_len: usize,
    /// Work-stealing events between parallel DFS workers
    /// (`--dfs-threads > 1`; 0 on the sequential path).
    pub dfs_steals: usize,
    /// Tasks processed by parallel DFS workers.
    pub dfs_tasks: usize,
    /// Tasks processed by the busiest parallel DFS worker in any round —
    /// `dfs_tasks / (rounds × threads)` vs this gauges load balance.
    pub dfs_max_worker_tasks: usize,
    /// Wall-clock time of the whole run.
    pub time: Duration,
    /// Interpolation statistics.
    pub interpolation: InterpolationStats,
    /// Solver queries answered from the query cache during this run.
    pub qcache_hits: u64,
    /// Solver queries that fell through to a real solve.
    pub qcache_misses: u64,
    /// Proven results whose certificate was dropped because the recording
    /// re-walk tripped its state budget or the resource governor.
    pub certs_dropped: usize,
    /// Certificates re-checked before being served or accepted.
    pub certs_checked: usize,
    /// Certificates that passed the independent check.
    pub certs_passed: usize,
    /// Certificates rejected and quarantined.
    pub certs_quarantined: usize,
}

impl RunStats {
    /// Average time per refinement round (Table 2's metric).
    pub fn time_per_round(&self) -> Duration {
        if self.rounds == 0 {
            self.time
        } else {
            self.time / self.rounds as u32
        }
    }

    /// Query-cache hit rate of this run (0 when the cache was off or
    /// never consulted).
    pub fn qcache_hit_rate(&self) -> f64 {
        let total = self.qcache_hits + self.qcache_misses;
        if total == 0 {
            0.0
        } else {
            self.qcache_hits as f64 / total as f64
        }
    }

    /// Useless-cache hit rate (`cache_skips / useless_probes`; 0 when
    /// the cache was never probed).
    pub fn useless_hit_rate(&self) -> f64 {
        if self.useless_probes == 0 {
            0.0
        } else {
            self.cache_skips as f64 / self.useless_probes as f64
        }
    }
}

/// A verdict together with its statistics.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The verdict.
    pub verdict: Verdict,
    /// Statistics of the run.
    pub stats: RunStats,
    /// The verdict's checkable certificate, when one was recorded.
    /// `None` for give-ups, for runs with certification disabled, and
    /// for the rare conclusive run whose recording pass was interrupted.
    pub certificate: Option<Certificate>,
}

/// The specification list for `program`: one [`Spec::ErrorOf`] per
/// asserting thread (footnote 4 of the paper), or the single
/// pre/postcondition pair when no thread asserts.
pub fn specs_of(program: &Program) -> Vec<Spec> {
    let asserting = program.asserting_threads();
    if asserting.is_empty() {
        vec![Spec::PrePost]
    } else {
        asserting.into_iter().map(Spec::ErrorOf).collect()
    }
}

/// Verifies `program` under `config`.
///
/// Programs with asserts are analyzed once per asserting thread
/// (footnote 4 of the paper); programs without asserts are verified
/// against their pre/postcondition pair.
pub fn verify(pool: &mut TermPool, program: &Program, config: &VerifierConfig) -> Outcome {
    verify_governed(pool, program, config, config.govern.build())
}

/// As [`verify`], with an explicitly built governor — the parallel
/// portfolio builds per-worker governors sharing one cancellation token.
///
/// The governor is installed on `pool` for the duration of the run (so
/// every solver query charges it) and the previous governor is restored
/// before returning. Injected panics are contained here and reported as
/// [`Verdict::GaveUp`] with [`Category::InjectedFault`].
pub fn verify_governed(
    pool: &mut TermPool,
    program: &Program,
    config: &VerifierConfig,
    governor: ResourceGovernor,
) -> Outcome {
    let start = Instant::now();
    let previous = pool.governor().clone();
    pool.set_governor(governor.clone());
    let saved_solver = pool.solver_kind();
    pool.set_solver_kind(config.solver);
    // Honor `use_qcache`: a disabled run removes the pool's cache handle
    // for its duration (restored below; the cache is Arc-shared, so other
    // holders are unaffected). Counters are attributed to this run by
    // snapshot deltas, since the cache may be shared across workers.
    let saved_cache = if config.use_qcache {
        None
    } else {
        pool.take_query_cache()
    };
    let cache_before = pool.query_cache().map(|c| c.stats());
    let mut stats = RunStats::default();
    let specs = specs_of(program);
    let mut verdict = Verdict::Correct;
    let mut spec_certs: Vec<Option<SpecCert>> = Vec::new();
    let mut failed_spec: Option<Spec> = None;
    for spec in specs {
        let (v, cert) = catch_unwind(AssertUnwindSafe(|| {
            verify_spec(pool, program, spec, config, &mut stats)
        }))
        .unwrap_or_else(|payload| {
            (
                Verdict::GaveUp(
                    governor
                        .give_up()
                        .filter(|g| g.category == Category::InjectedFault)
                        .unwrap_or_else(|| {
                            GiveUp::new(
                                Category::InjectedFault,
                                format!("panic contained: {}", panic_reason(payload.as_ref())),
                            )
                        }),
                ),
                None,
            )
        });
        match v {
            Verdict::Correct => spec_certs.push(cert),
            other => {
                verdict = other;
                failed_spec = Some(spec);
                break;
            }
        }
    }
    pool.set_governor(previous);
    pool.set_solver_kind(saved_solver);
    if let (Some(cache), Some(before)) = (pool.query_cache(), cache_before) {
        let delta = cache.stats().since(&before);
        stats.qcache_hits = delta.hits;
        stats.qcache_misses = delta.misses;
    }
    if let Some(cache) = saved_cache {
        pool.set_query_cache(cache);
    }
    stats.time = start.elapsed();
    let certificate = if config.certify {
        assemble_certificate(pool, program, &verdict, spec_certs, failed_spec)
    } else {
        None
    };
    Outcome {
        verdict,
        stats,
        certificate,
    }
}

/// Assembles the end-to-end certificate from per-spec pieces: a CORRECT
/// verdict needs a recorded proof for *every* specification; an INCORRECT
/// verdict carries its violating trace bound to the failed spec.
pub(crate) fn assemble_certificate(
    pool: &TermPool,
    program: &Program,
    verdict: &Verdict,
    spec_certs: Vec<Option<SpecCert>>,
    failed_spec: Option<Spec>,
) -> Option<Certificate> {
    match verdict {
        Verdict::Correct => {
            let specs: Vec<SpecCert> = spec_certs.into_iter().collect::<Option<Vec<_>>>()?;
            if specs.len() != specs_of(program).len() {
                return None;
            }
            Some(Certificate::Correct {
                fingerprint: program_fingerprint(pool, program),
                specs,
            })
        }
        Verdict::Incorrect { trace } => Some(Certificate::Bug {
            fingerprint: program_fingerprint(pool, program),
            spec: CertSpec::of(failed_spec?),
            trace: trace.iter().map(|l| l.0).collect(),
        }),
        Verdict::GaveUp(_) => None,
    }
}

fn verify_spec(
    pool: &mut TermPool,
    program: &Program,
    spec: Spec,
    config: &VerifierConfig,
    stats: &mut RunStats,
) -> (Verdict, Option<SpecCert>) {
    let order = config.order.build();
    let mut oracle = CommutativityOracle::new(config.commutativity);
    let persistent = config
        .use_persistent
        .then(|| PersistentSets::new(pool, program, &mut oracle));
    let mut proof = ProofAutomaton::new();
    let mut useless = UselessCache::new();
    let mut par: Option<ParDfs> = None;
    let check_config = CheckConfig {
        use_sleep: config.use_sleep,
        use_persistent: config.use_persistent,
        proof_sensitive: config.proof_sensitive,
        max_visited: config.max_visited_per_round,
        dfs_threads: config.dfs_threads,
        freeze_useless: false,
    };
    let mut history = TraceHistory::new();
    let governor = pool.governor().clone();

    for _round in 0..config.max_rounds {
        if let Err(g) = governor.charge(Category::Rounds) {
            return (Verdict::GaveUp(g), None);
        }
        stats.rounds += 1;
        let mut round_stats = CheckStats::default();
        let result = routed_check_proof(
            pool,
            program,
            spec,
            order.as_ref(),
            &mut oracle,
            persistent.as_ref(),
            &mut proof,
            &mut useless,
            &mut par,
            &check_config,
            &mut round_stats,
        );
        stats.visited_states += round_stats.visited;
        stats.max_round_visited = stats.max_round_visited.max(round_stats.visited);
        stats.cache_skips += round_stats.cache_skips;
        stats.useless_probes += round_stats.useless_probes;
        stats.useless_len = round_stats.useless_len;
        stats.dfs_steals += round_stats.steals;
        stats.dfs_tasks += round_stats.par_tasks;
        stats.dfs_max_worker_tasks = stats.dfs_max_worker_tasks.max(round_stats.max_worker_tasks);
        stats.hoare_checks = proof.stats().hoare_checks;
        stats.proof_size = stats.proof_size.max(proof.proof_size());
        match result {
            CheckResult::Proven => {
                let cert = if config.certify {
                    let cert = record_reduction(
                        pool,
                        program,
                        spec,
                        order.as_ref(),
                        &mut oracle,
                        persistent.as_ref(),
                        &mut proof,
                        &check_config,
                    )
                    .map(|rec| {
                        SpecCert::from_recorded(
                            pool,
                            &proof,
                            &rec,
                            spec,
                            &config.order,
                            &check_config,
                        )
                    });
                    if cert.is_none() {
                        stats.certs_dropped += 1;
                    }
                    cert
                } else {
                    None
                };
                return (Verdict::Correct, cert);
            }
            CheckResult::LimitReached => {
                return (
                    Verdict::gave_up(
                        Category::DfsStates,
                        format!(
                            "state budget exhausted ({} states)",
                            config.max_visited_per_round
                        ),
                    ),
                    None,
                )
            }
            CheckResult::Interrupted(g) => return (Verdict::GaveUp(g), None),
            CheckResult::Counterexample(trace) => {
                // Any recently seen trace (not just the previous round's)
                // means the refinement is cycling.
                if history.record(&trace) {
                    return (
                        Verdict::gave_up(Category::NonProgress, "refinement made no progress"),
                        None,
                    );
                }
                match analyze_trace_with_mode(
                    pool,
                    program,
                    &trace,
                    spec,
                    config.interpolation,
                    &mut stats.interpolation,
                ) {
                    TraceResult::Feasible => return (Verdict::Incorrect { trace }, None),
                    // Attribute to the governor when it is the real cause
                    // of the undecided feasibility check.
                    TraceResult::Unknown => {
                        return (
                            Verdict::GaveUp(governor.give_up().unwrap_or_else(|| {
                                GiveUp::new(Category::UnknownTheory, "trace feasibility undecided")
                            })),
                            None,
                        )
                    }
                    TraceResult::Infeasible { chain } => {
                        for a in chain {
                            proof.add_assertion(a);
                        }
                        stats.proof_size = stats.proof_size.max(proof.proof_size());
                    }
                }
            }
        }
    }
    (
        Verdict::gave_up(
            Category::Rounds,
            format!("no proof within {} refinement rounds", config.max_rounds),
        ),
        None,
    )
}
