//! Nondeterministic finite automata and the subset construction.
//!
//! Floyd/Hoare automata are naturally nondeterministic (a Hoare triple
//! `{φ} a {ψ}` may hold for several `ψ`); the verifier determinizes them
//! implicitly, but the explicit construction here is used by tests and by
//! the language-theoretic experiments.

use crate::bitset::BitSet;
use crate::dfa::{Dfa, DfaBuilder, StateId};
use std::collections::HashMap;
use std::hash::Hash;

/// A nondeterministic finite automaton (no ε-transitions) over letters `L`.
///
/// # Example
///
/// ```
/// use automata::nfa::NfaBuilder;
///
/// // Words over {a,b} whose last letter is 'a'.
/// let mut b = NfaBuilder::new();
/// let q0 = b.add_state(false);
/// let q1 = b.add_state(true);
/// b.add_transition(q0, 'a', q0);
/// b.add_transition(q0, 'b', q0);
/// b.add_transition(q0, 'a', q1);
/// b.add_initial(q0);
/// let nfa = b.build();
/// assert!(nfa.accepts("bba".chars()));
/// assert!(!nfa.accepts("ab".chars()));
/// let dfa = nfa.determinize();
/// assert!(dfa.accepts("bba".chars()));
/// ```
#[derive(Clone, Debug)]
pub struct Nfa<L> {
    transitions: Vec<Vec<(L, StateId)>>,
    accepting: BitSet,
    initial: Vec<StateId>,
}

impl<L: Copy + Eq + Ord + Hash> Nfa<L> {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// The initial states.
    pub fn initial_states(&self) -> &[StateId] {
        &self.initial
    }

    /// Whether `q` is accepting.
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting.contains(q.index())
    }

    /// All successors of `q` on `letter`.
    pub fn successors(&self, q: StateId, letter: L) -> impl Iterator<Item = StateId> + '_ {
        self.transitions[q.index()]
            .iter()
            .filter(move |&&(l, _)| l == letter)
            .map(|&(_, t)| t)
    }

    /// Language membership via on-the-fly subset tracking.
    pub fn accepts(&self, word: impl IntoIterator<Item = L>) -> bool {
        let mut current: Vec<StateId> = self.initial.clone();
        for a in word {
            let mut next: Vec<StateId> = current
                .iter()
                .flat_map(|&q| self.successors(q, a))
                .collect();
            next.sort_unstable();
            next.dedup();
            current = next;
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|&q| self.is_accepting(q))
    }

    /// Subset construction. Only reachable subsets are materialized.
    pub fn determinize(&self) -> Dfa<L> {
        let mut builder = DfaBuilder::new();
        let mut subset_ids: HashMap<Vec<StateId>, StateId> = HashMap::new();

        let mut initial_subset = self.initial.clone();
        initial_subset.sort_unstable();
        initial_subset.dedup();

        let accepting = |subset: &[StateId]| subset.iter().any(|&q| self.is_accepting(q));

        let init_id = builder.add_state(accepting(&initial_subset));
        subset_ids.insert(initial_subset.clone(), init_id);
        let mut work = vec![initial_subset];

        while let Some(subset) = work.pop() {
            let from = subset_ids[&subset];
            // Group outgoing edges of the subset by letter.
            let mut by_letter: HashMap<L, Vec<StateId>> = HashMap::new();
            for &q in &subset {
                for &(l, t) in &self.transitions[q.index()] {
                    by_letter.entry(l).or_default().push(t);
                }
            }
            let mut letters: Vec<L> = by_letter.keys().copied().collect();
            letters.sort_unstable();
            for l in letters {
                let mut next = by_letter.remove(&l).expect("letter key present");
                next.sort_unstable();
                next.dedup();
                let to = match subset_ids.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = builder.add_state(accepting(&next));
                        subset_ids.insert(next.clone(), id);
                        work.push(next);
                        id
                    }
                };
                builder.add_transition(from, l, to);
            }
        }
        builder.build(init_id)
    }
}

/// Incremental constructor for [`Nfa`].
#[derive(Clone, Debug, Default)]
pub struct NfaBuilder<L> {
    transitions: Vec<Vec<(L, StateId)>>,
    accepting: Vec<bool>,
    initial: Vec<StateId>,
}

impl<L: Copy + Eq + Ord + Hash> NfaBuilder<L> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NfaBuilder {
            transitions: Vec::new(),
            accepting: Vec::new(),
            initial: Vec::new(),
        }
    }

    /// Adds a state and returns its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        self.transitions.push(Vec::new());
        self.accepting.push(accepting);
        StateId(self.transitions.len() as u32 - 1)
    }

    /// Marks `q` as an initial state.
    pub fn add_initial(&mut self, q: StateId) {
        if !self.initial.contains(&q) {
            self.initial.push(q);
        }
    }

    /// Adds the transition `from --letter--> to` (duplicates are ignored).
    pub fn add_transition(&mut self, from: StateId, letter: L, to: StateId) {
        let row = &mut self.transitions[from.index()];
        if !row.contains(&(letter, to)) {
            row.push((letter, to));
        }
    }

    /// Finalizes the automaton.
    ///
    /// # Panics
    ///
    /// Panics if no initial state was added.
    pub fn build(self) -> Nfa<L> {
        assert!(
            !self.initial.is_empty(),
            "NFA needs at least one initial state"
        );
        let mut accepting = BitSet::new(self.accepting.len().max(1));
        for (i, &acc) in self.accepting.iter().enumerate() {
            if acc {
                accepting.insert(i);
            }
        }
        Nfa {
            transitions: self.transitions,
            accepting,
            initial: self.initial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::enumerate_words;

    /// NFA for words over {0,1} with a 1 in the third-to-last position.
    fn third_last_one() -> Nfa<u8> {
        let mut b = NfaBuilder::new();
        let q0 = b.add_state(false);
        let q1 = b.add_state(false);
        let q2 = b.add_state(false);
        let q3 = b.add_state(true);
        for l in [0u8, 1] {
            b.add_transition(q0, l, q0);
            b.add_transition(q1, l, q2);
            b.add_transition(q2, l, q3);
        }
        b.add_transition(q0, 1, q1);
        b.add_initial(q0);
        b.build()
    }

    #[test]
    fn nfa_accepts() {
        let n = third_last_one();
        assert!(n.accepts([1u8, 0, 0].iter().copied()));
        assert!(n.accepts([0u8, 1, 1, 1].iter().copied()));
        assert!(!n.accepts([0u8, 0, 0].iter().copied()));
        assert!(!n.accepts([1u8].iter().copied()));
    }

    #[test]
    fn determinization_preserves_language() {
        let n = third_last_one();
        let d = n.determinize();
        for word in enumerate_words(&[0u8, 1], 7) {
            assert_eq!(
                n.accepts(word.iter().copied()),
                d.accepts(word.iter().copied()),
                "mismatch on {word:?}"
            );
        }
    }

    #[test]
    fn determinized_size_is_subset_bound() {
        let n = third_last_one();
        let d = n.determinize();
        // Classic example: needs 2^3 = 8 states.
        assert_eq!(d.num_states(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one initial state")]
    fn build_without_initial_panics() {
        let mut b = NfaBuilder::<char>::new();
        b.add_state(true);
        let _ = b.build();
    }
}
