//! Trace feasibility and sequence interpolation.
//!
//! A counterexample trace from the proof check is first checked for
//! feasibility by an exact SSA encoding (DPLL(T) over LIA). Infeasible
//! traces yield a chain of assertions — a Floyd/Hoare annotation of the
//! trace with `init ∧ pre` at the start and `false` at the end — via
//! strongest postconditions computed over an **unsat-core-sliced** trace:
//! statements whose constraints do not participate in the infeasibility
//! are weakened to havoc of their written variables, which keeps the
//! generated assertions small and general (this is where the paper's
//! `pendingIo ≥ C ∧ ¬stoppingEvent` counting assertions come from).

use program::concurrent::{LetterId, Program, Spec};
use program::stmt::SimpleStmt;
use program::var::Versions;
use smt::cube::Dnf;
use smt::solver::{check, SatResult};
use smt::term::{TermId, TermPool};
use smt::unsat_core::unsat_core;

/// Outcome of analyzing a counterexample trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceResult {
    /// The trace is executable — a real counterexample.
    Feasible,
    /// The trace is infeasible; the chain annotates it: `chain[i]` holds
    /// after the first `i` statements, `chain[0]` is implied by
    /// `init ∧ pre`, and the last element is `false` (for error traces) or
    /// implies the postcondition (for pre/post traces).
    Infeasible {
        /// The interpolant chain, one assertion per trace position.
        chain: Vec<TermId>,
    },
    /// The solver could not decide feasibility.
    Unknown,
}

/// Statistics from trace analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InterpolationStats {
    /// Trace feasibility checks.
    pub feasibility_checks: usize,
    /// Statements sliced away by the unsat core.
    pub sliced_statements: usize,
    /// Counterexamples interpolated via Farkas certificates.
    pub farkas_chains: usize,
}

/// Which interpolation engine generates the assertion chain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InterpolationMode {
    /// Unsat-core-sliced strongest postconditions (general; default).
    #[default]
    SpChain,
    /// Farkas sequence interpolants from the simplex certificate —
    /// single-inequality assertions, applicable to conjunctive traces;
    /// falls back to [`InterpolationMode::SpChain`] otherwise.
    Farkas,
}

/// Analyzes the counterexample `trace` of `program` under `spec` with the
/// default (sp-chain) interpolation engine.
///
/// For [`Spec::ErrorOf`] the trace itself reaching the error location is
/// the violation, so feasibility of the path condition decides. For
/// [`Spec::PrePost`] the negated postcondition joins the encoding.
pub fn analyze_trace(
    pool: &mut TermPool,
    program: &Program,
    trace: &[LetterId],
    spec: Spec,
    stats: &mut InterpolationStats,
) -> TraceResult {
    analyze_trace_with_mode(
        pool,
        program,
        trace,
        spec,
        InterpolationMode::SpChain,
        stats,
    )
}

/// As [`analyze_trace`], with an explicit interpolation engine.
pub fn analyze_trace_with_mode(
    pool: &mut TermPool,
    program: &Program,
    trace: &[LetterId],
    spec: Spec,
    mode: InterpolationMode,
    stats: &mut InterpolationStats,
) -> TraceResult {
    // 1. SSA encoding. The initial condition is split into its top-level
    //    conjuncts so the unsat core can drop initial facts about
    //    irrelevant variables; statements follow, one block each.
    let mut versions = Versions::new();
    let full_init = pool.and([program.init_formula(), program.pre()]);
    let init_conjuncts: Vec<TermId> = match pool.term(full_init) {
        smt::term::Term::And(children) => children.to_vec(),
        _ => vec![full_init],
    };
    let n_init = init_conjuncts.len();
    let mut blocks: Vec<TermId> = init_conjuncts.clone();
    // Per-position inverse version maps (current SSA version → program
    // var), used to rename Farkas interpolants back to program variables.
    let snapshot = |versions: &Versions| -> std::collections::HashMap<_, _> {
        program
            .globals()
            .iter()
            .map(|&g| (versions.current(g), g))
            .collect()
    };
    let mut snapshots = vec![snapshot(&versions)];
    let mut stmt_blocks: Vec<TermId> = Vec::with_capacity(trace.len());
    for &l in trace {
        let stmt = program.statement(l).clone();
        let block = stmt.encode_ssa(pool, &mut versions);
        stmt_blocks.push(block);
        blocks.push(block);
        snapshots.push(snapshot(&versions));
    }
    if spec == Spec::PrePost {
        let neg_post = pool.not(program.post());
        let renamed = pool.rename(neg_post, &|v| versions.current(v));
        blocks.push(renamed);
    }

    // 2. Exact feasibility.
    stats.feasibility_checks += 1;
    match check(pool, &blocks) {
        SatResult::Sat(_) => return TraceResult::Feasible,
        SatResult::Unknown => return TraceResult::Unknown,
        SatResult::Unsat => {}
    }

    // 2b. Farkas interpolation (single-inequality assertions), when the
    //     trace is conjunctive and rationally infeasible.
    if mode == InterpolationMode::Farkas {
        if let Some(chain) = farkas_chain(
            pool,
            trace,
            spec,
            &init_conjuncts,
            &stmt_blocks,
            &blocks,
            &snapshots,
        ) {
            stats.farkas_chains += 1;
            return TraceResult::Infeasible { chain };
        }
    }

    // 3. Unsat core over the blocks → relevant init conjuncts + statements.
    let core = unsat_core(pool, &blocks).unwrap_or_else(|| (0..blocks.len()).collect());
    let sliced_init = pool.and(
        init_conjuncts
            .iter()
            .enumerate()
            .filter(|&(i, _)| core.contains(&i))
            .map(|(_, &c)| c),
    );
    let relevant = |i: usize| core.contains(&(i + n_init));

    // 4. Strongest-postcondition chain over the sliced trace.
    if let Some(chain) = sp_chain(pool, program, trace, spec, sliced_init, &relevant, stats) {
        return TraceResult::Infeasible { chain };
    }
    // 5. Fallback: no slicing (the sliced chain can fail to reach ⊥ when a
    //    projection over-approximated).
    stats.sliced_statements = 0;
    if let Some(chain) = sp_chain(pool, program, trace, spec, full_init, &|_| true, stats) {
        return TraceResult::Infeasible { chain };
    }
    TraceResult::Unknown
}

/// Attempts a Farkas interpolant chain: requires every block to be a
/// conjunction of linear atoms, rational infeasibility, and interpolants
/// mentioning only live program variables.
fn farkas_chain(
    pool: &mut TermPool,
    trace: &[LetterId],
    spec: Spec,
    init_conjuncts: &[TermId],
    stmt_blocks: &[TermId],
    all_blocks: &[TermId],
    snapshots: &[std::collections::HashMap<smt::VarId, smt::VarId>],
) -> Option<Vec<TermId>> {
    use smt::interpolate::{farkas_sequence_interpolants_governed, Interpolant};

    // Block 0: all init conjuncts; blocks 1..=n: statements; PrePost adds
    // the ¬post block at the end.
    let mut farkas_blocks: Vec<Vec<smt::LinearConstraint>> = Vec::new();
    let mut init_block = Vec::new();
    for &c in init_conjuncts {
        init_block.extend(conjunctive_constraints(pool, c)?);
    }
    farkas_blocks.push(init_block);
    for &b in stmt_blocks {
        farkas_blocks.push(conjunctive_constraints(pool, b)?);
    }
    if spec == Spec::PrePost {
        let neg_post_block = all_blocks.last().expect("PrePost appends ¬post");
        farkas_blocks.push(conjunctive_constraints(pool, *neg_post_block)?);
    }
    let governor = pool.governor().clone();
    let raw = farkas_sequence_interpolants_governed(&farkas_blocks, &governor)?;

    // Positions 0..=trace.len() map to raw[1..=trace.len()+1].
    let mut chain = Vec::with_capacity(trace.len() + 1);
    for (k, snapshot) in snapshots.iter().enumerate().take(trace.len() + 1) {
        let term = match &raw[k + 1] {
            Interpolant::True => TermPool::TRUE,
            Interpolant::False => TermPool::FALSE,
            Interpolant::Constraint(c) => {
                // Rename SSA versions back to program variables; bail if a
                // non-live variable appears (should not happen — shared
                // variables are exactly the live versions).
                if !c.expr().vars().all(|v| snapshot.contains_key(&v)) {
                    return None;
                }
                let renamed = c.rename(|v| snapshot[&v]);
                pool.atom(renamed.expr().clone(), renamed.rel())
            }
        };
        chain.push(term);
    }
    Some(chain)
}

/// The constraints of a purely conjunctive formula (`None` if it contains
/// a disjunction or is `false`).
fn conjunctive_constraints(pool: &TermPool, t: TermId) -> Option<Vec<smt::LinearConstraint>> {
    use smt::term::Term;
    match pool.term(t) {
        Term::True => Some(Vec::new()),
        Term::Atom(c) => Some(vec![c.clone()]),
        Term::And(children) => {
            let mut out = Vec::new();
            for &c in children.iter() {
                out.extend(conjunctive_constraints(pool, c)?);
            }
            Some(out)
        }
        Term::False | Term::Or(_) => None,
    }
}

/// Computes the sp-chain; `None` if the final assertion fails to certify
/// the infeasibility (possible when a projection was inexact over ℤ).
fn sp_chain(
    pool: &mut TermPool,
    program: &Program,
    trace: &[LetterId],
    spec: Spec,
    init: TermId,
    relevant: &dyn Fn(usize) -> bool,
    stats: &mut InterpolationStats,
) -> Option<Vec<TermId>> {
    let mut state = Dnf::from_term(pool, init);
    let mut chain: Vec<TermId> = Vec::with_capacity(trace.len() + 1);
    chain.push(state.to_term(pool));
    for (i, &l) in trace.iter().enumerate() {
        let stmt = program.statement(l).clone();
        let next = if relevant(i) {
            let (next, _exact) = stmt.post_image(pool, &state);
            next
        } else {
            // Sliced: havoc the written variables (a sound weakening).
            stats.sliced_statements += 1;
            let mut cur = state;
            for &w in stmt.writes().iter() {
                let havoc = program::stmt::Statement::simple(
                    stmt.thread(),
                    "sliced",
                    SimpleStmt::Havoc(w),
                    pool,
                );
                let (next, _) = havoc.post_image(pool, &cur);
                cur = next;
            }
            cur
        };
        state = next;
        chain.push(state.to_term(pool));
    }
    // Certify the chain.
    let last = *chain.last().expect("chain is nonempty");
    let certified = match spec {
        Spec::ErrorOf(_) => check(pool, &[last]).is_unsat(),
        Spec::PrePost => {
            let neg_post = pool.not(program.post());
            check(pool, &[last, neg_post]).is_unsat()
        }
    };
    certified.then_some(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::bitset::BitSet;
    use automata::dfa::DfaBuilder;
    use program::stmt::Statement;
    use program::thread::{Thread, ThreadId};
    use smt::linear::LinExpr;

    /// One thread: (x := x + 1)^k ; [assume x > bound → error].
    fn bounded_counter(pool: &mut TermPool, k: usize, bound: i128) -> (Program, Vec<LetterId>) {
        let mut b = Program::builder("counter");
        let x = pool.var("x");
        b.add_global(x, 0);
        let incr = b.add_statement(Statement::simple(
            ThreadId(0),
            "x := x + 1",
            SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
            pool,
        ));
        let bad_guard = {
            let le = pool.le_const(x, bound);
            pool.not(le)
        };
        let bad = b.add_statement(Statement::simple(
            ThreadId(0),
            "assume x > bound",
            SimpleStmt::Assume(bad_guard),
            pool,
        ));
        let mut cfg = DfaBuilder::new();
        let mut prev = cfg.add_state(false);
        let entry = prev;
        for _ in 0..k {
            let next = cfg.add_state(false);
            cfg.add_transition(prev, incr, next);
            prev = next;
        }
        let err = cfg.add_state(false);
        cfg.add_transition(prev, bad, err);
        let mut errors = BitSet::new(cfg.num_states());
        errors.insert(err.index());
        b.add_thread(Thread::new("t", cfg.build(entry), errors));
        let p = b.build(pool);
        let mut trace = vec![incr; k];
        trace.push(bad);
        (p, trace)
    }

    #[test]
    fn infeasible_trace_yields_certified_chain() {
        let mut pool = TermPool::new();
        let (p, trace) = bounded_counter(&mut pool, 2, 5); // x = 2, not > 5
        let mut stats = InterpolationStats::default();
        match analyze_trace(
            &mut pool,
            &p,
            &trace,
            Spec::ErrorOf(ThreadId(0)),
            &mut stats,
        ) {
            TraceResult::Infeasible { chain } => {
                assert_eq!(chain.len(), trace.len() + 1);
                assert_eq!(*chain.last().unwrap(), TermPool::FALSE);
                // chain[0] implied by init.
                assert!(smt::entails(&mut pool, p.init_formula(), chain[0]));
                // Each consecutive Hoare triple is valid (spot-check via
                // post_image inclusion).
                for (i, &l) in trace.iter().enumerate() {
                    let stmt = p.statement(l).clone();
                    let pre_dnf = Dnf::from_term(&pool, chain[i]);
                    let (post, _) = stmt.post_image(&mut pool, &pre_dnf);
                    let post_term = post.to_term(&mut pool);
                    assert!(
                        smt::entails(&mut pool, post_term, chain[i + 1]),
                        "triple {i} invalid"
                    );
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn feasible_trace_detected() {
        let mut pool = TermPool::new();
        let (p, trace) = bounded_counter(&mut pool, 3, 2); // x = 3 > 2: bug
        let mut stats = InterpolationStats::default();
        assert_eq!(
            analyze_trace(
                &mut pool,
                &p,
                &trace,
                Spec::ErrorOf(ThreadId(0)),
                &mut stats
            ),
            TraceResult::Feasible
        );
    }

    #[test]
    fn slicing_removes_irrelevant_statements() {
        // Add a second thread touching an unrelated variable mid-trace.
        let mut pool = TermPool::new();
        let mut b = Program::builder("sliced");
        let x = pool.var("x");
        let noise = pool.var("noise");
        b.add_global(x, 0);
        b.add_global(noise, 0);
        let incr = b.add_statement(Statement::simple(
            ThreadId(0),
            "x := x + 1",
            SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
            &pool,
        ));
        let bad_guard = {
            let le = pool.le_const(x, 5);
            pool.not(le)
        };
        let bad = b.add_statement(Statement::simple(
            ThreadId(0),
            "assume x > 5",
            SimpleStmt::Assume(bad_guard),
            &pool,
        ));
        let irrelevant = b.add_statement(Statement::simple(
            ThreadId(1),
            "noise := 7",
            SimpleStmt::Assign(noise, LinExpr::constant(7)),
            &pool,
        ));
        {
            let mut cfg = DfaBuilder::new();
            let q0 = cfg.add_state(false);
            let q1 = cfg.add_state(false);
            let err = cfg.add_state(false);
            cfg.add_transition(q0, incr, q1);
            cfg.add_transition(q1, bad, err);
            let mut errors = BitSet::new(3);
            errors.insert(err.index());
            b.add_thread(Thread::new("t0", cfg.build(q0), errors));
        }
        {
            let mut cfg = DfaBuilder::new();
            let q0 = cfg.add_state(false);
            let q1 = cfg.add_state(true);
            cfg.add_transition(q0, irrelevant, q1);
            b.add_thread(Thread::new("t1", cfg.build(q0), BitSet::new(2)));
        }
        let p = b.build(&mut pool);
        let trace = vec![incr, irrelevant, bad];
        let mut stats = InterpolationStats::default();
        match analyze_trace(
            &mut pool,
            &p,
            &trace,
            Spec::ErrorOf(ThreadId(0)),
            &mut stats,
        ) {
            TraceResult::Infeasible { chain } => {
                assert_eq!(stats.sliced_statements, 1, "noise := 7 sliced away");
                // The interpolants never mention `noise`.
                for &c in &chain {
                    assert!(
                        !pool.free_vars(c).contains(&noise),
                        "interpolant mentions sliced variable: {}",
                        pool.display(c)
                    );
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pre_post_spec_traces() {
        // x := x + 1 with pre x = 0, post x = 1: the exit trace satisfies
        // the post, so the "counterexample" (exit trace not covered by an
        // empty proof) is infeasible *as a violation*.
        let mut pool = TermPool::new();
        let mut b = Program::builder("pp");
        let x = pool.var("x");
        b.add_global(x, 0);
        let incr = b.add_statement(Statement::simple(
            ThreadId(0),
            "x := x + 1",
            SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
            &pool,
        ));
        let mut cfg = DfaBuilder::new();
        let q0 = cfg.add_state(false);
        let q1 = cfg.add_state(true);
        cfg.add_transition(q0, incr, q1);
        b.add_thread(Thread::new("t", cfg.build(q0), BitSet::new(2)));
        let post = pool.eq_const(x, 1);
        b.set_pre_post(TermPool::TRUE, post);
        let p = b.build(&mut pool);
        let mut stats = InterpolationStats::default();
        match analyze_trace(&mut pool, &p, &[incr], Spec::PrePost, &mut stats) {
            TraceResult::Infeasible { chain } => {
                // last element implies post.
                let last = *chain.last().unwrap();
                assert!(smt::entails(&mut pool, last, post));
            }
            other => panic!("{other:?}"),
        }
        // With post x = 2 the same trace is a genuine violation.
        let post2 = pool.eq_const(x, 2);
        let mut b2 = Program::builder("pp2");
        // rebuild quickly
        let _ = post2;
        let _ = b2.add_statement(Statement::simple(
            ThreadId(0),
            "x := x + 1",
            SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
            &pool,
        ));
    }
}
