//! Sound reductions of concurrent programs, parametrized by preference
//! orders — the core theory of the paper (§4–§6).
//!
//! A *reduction* of a program's language is a subset containing at least
//! one representative of every Mazurkiewicz equivalence class (§4,
//! Def. 4.1). This crate implements:
//!
//! * [`mazurkiewicz`] — trace equivalence under a commutativity relation;
//! * [`order`] — preference orders: classic lexicographic (thread-uniform
//!   `seq`, seeded `random`) and positional (`lockstep`), finitely
//!   represented via a per-order context automaton (§4.1–4.2);
//! * [`sleep`] — the sleep set automaton `S⋖(A)` recognizing exactly the
//!   lexicographic reduction `red_lex(⋖)(L(A))` (§5, Def. 5.1/Thm. 5.3);
//! * [`persistent`] — weakly persistent membranes via the conflict-SCC
//!   construction (§6/§7.1, Algorithm 1);
//! * [`reduce`] — the combined, space-efficient construction
//!   `(S⋖(A))↓πS` (§6.2, Thm. 6.6), built explicitly for experiments and
//!   tests (the verifier constructs it on the fly instead).

pub mod mazurkiewicz;
pub mod order;
pub mod persistent;
pub mod reduce;
pub mod sleep;

pub use order::{LockstepOrder, OrderContext, PreferenceOrder, RandomOrder, SeqOrder};
pub use persistent::{MembraneMode, PersistentSets};
pub use reduce::{reduction_automaton, ReductionConfig};
pub use sleep::sleep_set_automaton;
