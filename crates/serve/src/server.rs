//! The `seqver serve` daemon.
//!
//! Architecture (all `std`, following `gemcutter::portfolio`'s
//! worker-thread idiom):
//!
//! ```text
//!  acceptor (nonblocking, polls the shutdown flag)
//!    └─ connection threads: framing, parsing, admission control
//!         └─ bounded job queue ──► N worker threads (one TermPool clone
//!            each, sharing one QueryCache), each request supervised by
//!            its own ResourceGovernor budget + escalation ladder
//!                └─ proof store (SharedStore): lookup before; journal
//!                   append + group-commit fsync *before* the response
//!                   (acknowledged means durable)
//!    └─ compactor thread: folds the journal into the snapshot once it
//!       outgrows `--journal-max-ratio` × snapshot size
//! ```
//!
//! Robustness axes, in the order the issue names them:
//!
//! * **Crash-safe persistence** — every served verdict is appended to the
//!   [`ProofStore`]'s write-ahead journal and fsynced (one group commit
//!   per admission drain, not per request) before the client sees `OK`,
//!   so a `kill -9` anywhere loses only unacknowledged requests; a
//!   restart replays the journal's valid prefix and re-serves the
//!   acknowledged prefix from the store ([`handle_verify`] serves exact
//!   fingerprint matches directly, seeds near-duplicates' assertions, and
//!   pre-warms the shared query cache from persisted entries).
//! * **Request-level fault isolation** — every request runs under
//!   `catch_unwind` with a *fresh* `TermPool` (sharing only the panic-safe
//!   query cache), inside [`gemcutter::supervise`]'s escalation ladder and
//!   a per-request governor deadline capped by the server's
//!   `request_timeout`. A panicking request returns a structured error,
//!   the poisoned worker thread is quarantined (it exits, discarding all
//!   of its state) and a replacement thread is spawned; siblings never
//!   notice.
//! * **Graceful degradation** — admission control sheds load with an
//!   explicit `busy` + retry-after hint once `max_inflight + queue_depth`
//!   requests are in the system (bounded queue, no silent pileup);
//!   per-connection read timeouts drive the frame reader's idle and
//!   slow-loris clocks; SIGINT/SIGTERM (via the shutdown flag) stops
//!   accepting, lets in-flight requests finish, flushes the store and
//!   returns cleanly.

use crate::certfault::{CertFaultPlan, CertFaultSite};
use crate::crash::{CrashPlan, CrashSite};
use crate::proto::{
    write_frame, Command, FrameError, FrameEvent, FrameReader, Request, Response, Status,
    WireVerdict, MAX_FRAME,
};
use crate::store::{PersistMode, ProofStore, SharedStore, StoreRecord, StoredVerdict};
use gemcutter::certify::{check_certificate, CertifyMode};
use gemcutter::govern::{Category, FaultPlan};
use gemcutter::snapshot::{program_fingerprint, Snapshot};
use gemcutter::supervise::{supervised_verify, RetryPolicy, SuperviseConfig};
use gemcutter::verify::{Verdict, VerifierConfig};
use smt::qcache::QueryCache;
use smt::term::TermPool;
use std::collections::HashSet;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables of one daemon instance (the CLI's `serve` flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (printed on startup).
    pub addr: String,
    /// Proof-store file (`None`: in-memory only, still fully functional).
    pub store_path: Option<PathBuf>,
    /// Concurrent verification workers — the hard concurrency cap.
    pub max_inflight: usize,
    /// Requests allowed to queue beyond the running ones before admission
    /// control sheds with `busy`.
    pub queue_depth: usize,
    /// Per-request wall-clock ceiling: every request's governor deadline
    /// is capped by this, so a hanging request cannot pin a worker.
    pub request_timeout: Duration,
    /// Mid-frame stall timeout (the slow-loris clock) and socket write
    /// timeout.
    pub io_timeout: Duration,
    /// Idle timeout between frames before a connection is closed politely.
    pub idle_timeout: Duration,
    /// Default escalation-ladder retries per request (a request's own
    /// `retries:` option wins).
    pub retries: u32,
    /// Proof-check DFS worker threads per verification request
    /// (`--dfs-threads`; default 1 = the sequential path). Verdicts and
    /// certificates are identical either way.
    pub dfs_threads: usize,
    /// Crash-point injection plan (`--crash-at SITE:N`): deterministic
    /// `abort()`s at named durability sites, for the crash sweep. The old
    /// `--crash-after N` maps to `post-fsync:N`.
    pub crash_plan: Arc<CrashPlan>,
    /// `false` (`--no-journal`) reverts to the pre-journal behavior of
    /// durably rewriting the whole snapshot per request — the ablation
    /// baseline for the store-scaling bench.
    pub journal: bool,
    /// Compact once the journal outgrows this multiple of the snapshot
    /// size.
    pub journal_max_ratio: f64,
    /// How many query-cache entries to persist alongside the records.
    pub qcache_persist: usize,
    /// Certificate audit tier for warm hits (`--certify MODE`): a stored
    /// verdict is only served after its certificate clears the
    /// independent checker at this tier; a failing certificate
    /// quarantines the record and the request falls through to a fresh
    /// verification.
    pub certify: CertifyMode,
    /// Certificate-mutation injection plan (`--cert-fault SITE:KIND:N`):
    /// deterministic corruption at the engine→store and store→serve
    /// boundaries, for the mutation sweep. Every injected mutation must
    /// be caught by the audit — never served.
    pub cert_faults: Arc<CertFaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            store_path: None,
            max_inflight: 4,
            queue_depth: 4,
            request_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            retries: 0,
            dfs_threads: 1,
            crash_plan: Arc::default(),
            journal: true,
            journal_max_ratio: 4.0,
            qcache_persist: 2048,
            certify: CertifyMode::default(),
            cert_faults: Arc::default(),
        }
    }
}

/// Backoff hint attached to `busy` responses.
const RETRY_AFTER: Duration = Duration::from_millis(50);
/// Socket read timeout — the tick driving the frame reader's clocks and
/// the acceptor/worker shutdown polls.
const POLL_TICK: Duration = Duration::from_millis(25);
/// How often the compactor thread re-checks the journal/snapshot ratio.
const COMPACT_TICK: Duration = Duration::from_millis(100);
/// How long `run` waits for connections to drain after shutdown.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// One queued verification.
struct Job {
    id: String,
    source: String,
    opts: crate::proto::VerifyOpts,
    reply: Sender<Response>,
}

/// State shared by the acceptor, connections and workers.
struct Shared {
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
    store: SharedStore,
    cache: QueryCache,
    /// Verifications queued or running (admission control).
    inflight: AtomicUsize,
    /// Open connections (drain accounting).
    connections: AtomicUsize,
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    busy_shed: AtomicU64,
    protocol_errors: AtomicU64,
    panics_contained: AtomicU64,
    workers_replaced: AtomicU64,
    store_hits: AtomicU64,
    warm_starts: AtomicU64,
    certs_checked: AtomicU64,
    certs_passed: AtomicU64,
    certs_quarantined: AtomicU64,
    certs_dropped: AtomicU64,
    /// Parallel-DFS and useless-cache counters, aggregated from each
    /// request's run stats (daemon-wide, like the `certs-*` family).
    dfs_tasks: AtomicU64,
    dfs_steals: AtomicU64,
    useless_probes: AtomicU64,
    useless_hits: AtomicU64,
    /// Fingerprints whose stored certificate already cleared the sample
    /// audit in this process. In-memory records are immutable between
    /// replacement and quarantine, so re-auditing identical bytes on
    /// every warm hit is pure waste on the hot path; the entry is dropped
    /// whenever the record changes (write-back or quarantine), forcing a
    /// fresh audit on the next hit. The `full` and `structural` tiers
    /// never consult this — paranoid deployments re-check every serve.
    certs_audited: Mutex<HashSet<u64>>,
    latencies_ms: Mutex<Vec<u64>>,
}

impl Shared {
    fn stats_info(&self) -> Vec<(String, String)> {
        let mut info = vec![
            (
                "requests".to_owned(),
                self.requests.load(Ordering::Relaxed).to_string(),
            ),
            ("ok".to_owned(), self.ok.load(Ordering::Relaxed).to_string()),
            (
                "errors".to_owned(),
                self.errors.load(Ordering::Relaxed).to_string(),
            ),
            (
                "busy".to_owned(),
                self.busy_shed.load(Ordering::Relaxed).to_string(),
            ),
            (
                "protocol-errors".to_owned(),
                self.protocol_errors.load(Ordering::Relaxed).to_string(),
            ),
            (
                "panics-contained".to_owned(),
                self.panics_contained.load(Ordering::Relaxed).to_string(),
            ),
            (
                "workers-replaced".to_owned(),
                self.workers_replaced.load(Ordering::Relaxed).to_string(),
            ),
            (
                "store-hits".to_owned(),
                self.store_hits.load(Ordering::Relaxed).to_string(),
            ),
            (
                "warm-starts".to_owned(),
                self.warm_starts.load(Ordering::Relaxed).to_string(),
            ),
            (
                "certs-checked".to_owned(),
                self.certs_checked.load(Ordering::Relaxed).to_string(),
            ),
            (
                "certs-passed".to_owned(),
                self.certs_passed.load(Ordering::Relaxed).to_string(),
            ),
            (
                "certs-quarantined".to_owned(),
                self.certs_quarantined.load(Ordering::Relaxed).to_string(),
            ),
            (
                "certs-dropped".to_owned(),
                self.certs_dropped.load(Ordering::Relaxed).to_string(),
            ),
            (
                "dfs-tasks".to_owned(),
                self.dfs_tasks.load(Ordering::Relaxed).to_string(),
            ),
            (
                "dfs-steals".to_owned(),
                self.dfs_steals.load(Ordering::Relaxed).to_string(),
            ),
            (
                "useless-probes".to_owned(),
                self.useless_probes.load(Ordering::Relaxed).to_string(),
            ),
            (
                "useless-hits".to_owned(),
                self.useless_hits.load(Ordering::Relaxed).to_string(),
            ),
            (
                "store-records".to_owned(),
                self.store.lock().len().to_string(),
            ),
        ];
        {
            let store = self.store.lock();
            let js = store.stats();
            info.push(("journal-appends".to_owned(), js.appends.to_string()));
            info.push(("journal-fsyncs".to_owned(), js.fsyncs.to_string()));
            info.push(("compactions".to_owned(), js.compactions.to_string()));
            info.push((
                "journal-bytes".to_owned(),
                store.journal_bytes().to_string(),
            ));
            info.push((
                "snapshot-bytes".to_owned(),
                store.snapshot_bytes().to_string(),
            ));
            info.push(("durable-seq".to_owned(), store.durable_seq().to_string()));
        }
        let qc = self.cache.stats();
        info.push(("qcache-hits".to_owned(), qc.hits.to_string()));
        info.push(("qcache-misses".to_owned(), qc.misses.to_string()));
        info.push(("qcache-evictions".to_owned(), qc.evictions.to_string()));
        let (p50, p95, max) = percentiles(&self.latencies_ms.lock().expect("latencies"));
        info.push(("latency-p50-ms".to_owned(), p50.to_string()));
        info.push(("latency-p95-ms".to_owned(), p95.to_string()));
        info.push(("latency-max-ms".to_owned(), max.to_string()));
        info
    }
}

fn percentiles(samples: &[u64]) -> (u64, u64, u64) {
    if samples.is_empty() {
        return (0, 0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    (at(0.50), at(0.95), sorted[sorted.len() - 1])
}

/// A bound daemon, ready to [`Server::run`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    store_warnings: Vec<String>,
}

impl Server {
    /// Opens (leniently) the proof store, pre-warms the shared query
    /// cache from its persisted entries, and binds the listener.
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        let mode = if config.journal {
            PersistMode::Journal
        } else {
            PersistMode::Rewrite
        };
        let (store, store_warnings) = match &config.store_path {
            Some(path) => ProofStore::open_with(path, mode, Arc::clone(&config.crash_plan)),
            None => (ProofStore::in_memory(), Vec::new()),
        };
        let cache = QueryCache::new();
        for (key, verdict) in store.qcache_entries() {
            cache.insert(key.clone(), verdict.clone());
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind `{}`: {e}", config.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set nonblocking accept: {e}"))?;
        let shared = Arc::new(Shared {
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            store: SharedStore::new(store),
            cache,
            inflight: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            busy_shed: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            panics_contained: AtomicU64::new(0),
            workers_replaced: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            warm_starts: AtomicU64::new(0),
            certs_checked: AtomicU64::new(0),
            certs_passed: AtomicU64::new(0),
            certs_quarantined: AtomicU64::new(0),
            certs_dropped: AtomicU64::new(0),
            dfs_tasks: AtomicU64::new(0),
            dfs_steals: AtomicU64::new(0),
            useless_probes: AtomicU64::new(0),
            useless_hits: AtomicU64::new(0),
            certs_audited: Mutex::new(HashSet::new()),
            latencies_ms: Mutex::new(Vec::new()),
        });
        Ok(Server {
            listener,
            shared,
            store_warnings,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("cannot read local address: {e}"))
    }

    /// Warnings from the lenient store load — cold-start causes the
    /// operator should see.
    pub fn store_warnings(&self) -> &[String] {
        &self.store_warnings
    }

    /// The cooperative shutdown flag: raise it (from a signal handler or
    /// a `shutdown` request) and [`Server::run`] drains and returns.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shared.shutdown)
    }

    /// Serves until the shutdown flag is raised, then drains: stops
    /// accepting, waits for open connections and in-flight requests,
    /// flushes the store one final time and returns.
    pub fn run(self) -> Result<(), String> {
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut workers = Vec::new();
        for i in 0..self.shared.config.max_inflight.max(1) {
            workers.push(spawn_worker(
                i,
                Arc::clone(&self.shared),
                Arc::clone(&job_rx),
            ));
        }

        // Background compactor: folds the journal into the snapshot once
        // it outgrows the configured ratio. Off the request path — a
        // request only ever pays for its own append + group commit.
        let compactor = {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("seqver-compactor".to_owned())
                .spawn(move || {
                    while !shared.shutdown.load(Ordering::Relaxed) {
                        std::thread::sleep(COMPACT_TICK);
                        if shared
                            .store
                            .needs_compaction(shared.config.journal_max_ratio)
                        {
                            let entries = shared.cache.export_entries(shared.config.qcache_persist);
                            if let Err(e) = shared.store.compact_with_qcache(entries) {
                                eprintln!("warning: journal compaction failed: {e}");
                            }
                        }
                    }
                })
                .expect("spawn compactor thread")
        };

        let shared = Arc::clone(&self.shared);
        loop {
            if shared.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&shared);
                    let job_tx = job_tx.clone();
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    std::thread::spawn(move || {
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            serve_connection(&shared, stream, &job_tx)
                        }));
                        if result.is_err() {
                            shared.panics_contained.fetch_add(1, Ordering::Relaxed);
                        }
                        shared.connections.fetch_sub(1, Ordering::Relaxed);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_TICK);
                }
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }

        // Drain: no new connections; let the open ones and the queue
        // finish, then retire the workers by dropping the job sender.
        let drain_start = Instant::now();
        while (shared.connections.load(Ordering::Relaxed) > 0
            || shared.inflight.load(Ordering::Relaxed) > 0)
            && drain_start.elapsed() < DRAIN_DEADLINE
        {
            std::thread::sleep(POLL_TICK);
        }
        drop(job_tx);
        for w in workers {
            let _ = w.join();
        }
        let _ = compactor.join();
        // Final fold: persist the query-cache working set and leave the
        // journal empty, so a clean shutdown hands the next daemon a
        // single complete snapshot.
        let entries = shared.cache.export_entries(shared.config.qcache_persist);
        let mut store = shared.store.lock();
        store.set_qcache_entries(entries);
        store.flush()?;
        Ok(())
    }
}

/// One worker thread. On a contained panic the thread quarantines itself
/// (exits, discarding all of its state) and spawns its replacement — the
/// queue and its siblings never stall.
fn spawn_worker(
    index: usize,
    shared: Arc<Shared>,
    jobs: Arc<Mutex<Receiver<Job>>>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("seqver-worker-{index}"))
        .spawn(move || loop {
            let job = {
                let rx = jobs.lock().expect("job queue");
                rx.recv_timeout(POLL_TICK)
            };
            let job = match job {
                Ok(job) => job,
                Err(RecvTimeoutError::Timeout) => {
                    // Retire once draining is done even if some connection
                    // thread still holds a sender clone open.
                    if shared.shutdown.load(Ordering::Relaxed)
                        && shared.inflight.load(Ordering::Relaxed) == 0
                    {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle_verify(&shared, &job)
            }));
            let response = match outcome {
                Ok(response) => response,
                Err(payload) => {
                    // Quarantine-and-replace: this thread's solver state
                    // may be poisoned, so it exits after spawning a fresh
                    // replacement; the defective request gets a structured
                    // error and its siblings keep flowing.
                    shared.panics_contained.fetch_add(1, Ordering::Relaxed);
                    shared.workers_replaced.fetch_add(1, Ordering::Relaxed);
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    let reason = gemcutter::govern::panic_reason(payload.as_ref());
                    let response =
                        Response::error(&job.id, format!("request panicked (contained): {reason}"));
                    let _ = job.reply.send(response);
                    shared.inflight.fetch_sub(1, Ordering::Relaxed);
                    spawn_worker(index, Arc::clone(&shared), Arc::clone(&jobs));
                    return;
                }
            };
            let _ = job.reply.send(response);
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
        })
        .expect("spawn worker thread")
}

/// Serves one verification request end to end: compile, store lookup,
/// warm-seeded supervised run, store write-back.
fn handle_verify(shared: &Shared, job: &Job) -> Response {
    let start = Instant::now();
    let finish = |mut response: Response, shared: &Shared| {
        response.time_ms = start.elapsed().as_millis() as u64;
        match response.status {
            Some(Status::Error) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                shared.ok.fetch_add(1, Ordering::Relaxed);
            }
        }
        shared
            .latencies_ms
            .lock()
            .expect("latencies")
            .push(response.time_ms);
        response
    };

    // Test hook (the wire-level sibling of `crash_after`): every panic a
    // fault plan can inject is already contained one layer down, inside
    // the supervisor's round-level `catch_unwind`, so this is the only
    // deterministic way to exercise the worker's own outermost
    // quarantine-and-replace layer from a protocol test.
    if job.opts.faults.as_deref() == Some("worker:panic") {
        panic!("injected worker fault");
    }

    // Fresh pool per request: panic quarantine is trivial (drop it), and
    // pools cannot grow without bound across a daemon's lifetime. The
    // shared query cache is the only cross-request solver state.
    let mut pool = TermPool::new();
    pool.set_query_cache(shared.cache.clone());
    let program = match cpl::compile(&job.source, &mut pool) {
        Ok(program) => program,
        Err(e) => {
            return finish(
                Response::error(&job.id, format!("compile error: {e}")),
                shared,
            )
        }
    };
    let fingerprint = program_fingerprint(&pool, &program);

    // Exact fingerprint match: serve the persisted definitive verdict —
    // but only after its certificate clears the independent checker. The
    // physical checksums only prove the record is the bytes we wrote;
    // the certificate audit proves those bytes still constitute a proof
    // (or a replayable counterexample) of *this* program.
    let hit = shared
        .store
        .lock()
        .lookup(fingerprint)
        .map(|r| (r.verdict.clone(), r.rounds, r.certificate.clone()));
    if let Some((stored_verdict, rounds, certificate)) = hit {
        let audited = match (shared.config.certify, certificate) {
            (CertifyMode::Off, _) => true,
            // Sample tier: an unchanged record is audited once per
            // process, not once per hit — see `Shared::certs_audited`.
            (CertifyMode::Sample, Some(_))
                if shared
                    .certs_audited
                    .lock()
                    .expect("certs_audited")
                    .contains(&fingerprint) =>
            {
                true
            }
            (mode, Some(mut cert)) => {
                // Test hook: deterministic corruption on the lookup path,
                // modeling silent store rot below the checksums.
                shared
                    .config
                    .cert_faults
                    .hit(CertFaultSite::StoreServe, &mut cert);
                shared.certs_checked.fetch_add(1, Ordering::Relaxed);
                let report = check_certificate(&mut pool, &program, &cert, mode);
                if report.ok {
                    shared.certs_passed.fetch_add(1, Ordering::Relaxed);
                    if mode == CertifyMode::Sample {
                        shared
                            .certs_audited
                            .lock()
                            .expect("certs_audited")
                            .insert(fingerprint);
                    }
                    true
                } else {
                    eprintln!(
                        "warning: stored certificate for `{}` ({fingerprint:#018x}) failed the \
                         {} audit — {report}; quarantining the record and re-verifying",
                        program.name(),
                        mode.name(),
                    );
                    shared.certs_quarantined.fetch_add(1, Ordering::Relaxed);
                    shared
                        .certs_audited
                        .lock()
                        .expect("certs_audited")
                        .remove(&fingerprint);
                    if let Err(e) = shared.store.quarantine(fingerprint) {
                        eprintln!("warning: quarantine failed: {e}");
                    }
                    false
                }
            }
            // Record predates certification (or its engine ran with
            // certificates off): nothing to audit, so it is not served
            // warm; the fresh run below re-records it with a certificate.
            (_, None) => false,
        };
        if audited {
            shared.store_hits.fetch_add(1, Ordering::Relaxed);
            let verdict = match &stored_verdict {
                StoredVerdict::Correct => WireVerdict::Correct,
                StoredVerdict::Incorrect(trace) => WireVerdict::Incorrect(trace.clone()),
            };
            let response = Response {
                id: job.id.clone(),
                status: Some(Status::Ok),
                verdict: Some(verdict),
                rounds,
                store_hit: true,
                // A warm hit is served *from* the durable store: nothing
                // new needs fsyncing for the verdict to survive a crash.
                durable: shared.store.lock().persistent(),
                ..Response::default()
            };
            return finish(response, shared);
        }
    }

    // Near-duplicate warm start: same program name, different fingerprint.
    // Bounded — seeds are candidates the proof automaton re-validates one
    // by one, so an unbounded pile would cost time, not soundness.
    const MAX_WARM_SEEDS: usize = 256;
    let mut warm = shared
        .store
        .lock()
        .warm_assertions(program.name(), fingerprint);
    warm.truncate(MAX_WARM_SEEDS);
    if !warm.is_empty() {
        shared.warm_starts.fetch_add(1, Ordering::Relaxed);
    }

    let mut config = VerifierConfig::gemcutter_seq();
    config.dfs_threads = shared.config.dfs_threads;
    let deadline = job.opts.timeout.map_or(shared.config.request_timeout, |t| {
        t.min(shared.config.request_timeout)
    });
    config.govern.deadline = Some(deadline);
    for (cat, n) in &job.opts.steps {
        let Some(category) = Category::parse(cat) else {
            return finish(
                Response::error(&job.id, format!("unknown budget category `{cat}`")),
                shared,
            );
        };
        let slot = match category {
            Category::SimplexPivots => &mut config.govern.simplex_pivot_budget,
            Category::DpllDecisions => &mut config.govern.dpll_decision_budget,
            Category::CdclConflicts => &mut config.govern.cdcl_conflict_budget,
            Category::BranchNodes => &mut config.govern.branch_node_budget,
            Category::DfsStates => &mut config.govern.dfs_state_budget,
            other => {
                return finish(
                    Response::error(&job.id, format!("category `{other}` has no step budget")),
                    shared,
                )
            }
        };
        *slot = Some(*n);
    }
    if let Some(spec) = &job.opts.faults {
        match FaultPlan::parse(spec) {
            Ok(plan) => config.govern.fault_plan = plan,
            Err(e) => return finish(Response::error(&job.id, e), shared),
        }
    }

    let scfg = SuperviseConfig {
        policy: RetryPolicy::with_retries(job.opts.retries.unwrap_or(shared.config.retries)),
        checkpoint: None,
        // Warm seeds ride the supervisor's resume path as a synthetic
        // zero-progress snapshot: assertions are seeded as candidates
        // (re-validated by Hoare queries — soundness costs nothing), while
        // all counters start at zero so stats stay honest.
        resume: (!warm.is_empty()).then(|| Snapshot {
            program_hash: fingerprint,
            config_name: config.name.clone(),
            attempt: 0,
            specs_done: 0,
            rounds_completed: 0,
            give_ups: Vec::new(),
            assertions: warm.clone(),
        }),
        interrupt: None,
    };
    let sup = supervised_verify(&mut pool, &program, &config, &scfg);
    shared
        .dfs_tasks
        .fetch_add(sup.outcome.stats.dfs_tasks as u64, Ordering::Relaxed);
    shared
        .dfs_steals
        .fetch_add(sup.outcome.stats.dfs_steals as u64, Ordering::Relaxed);
    shared
        .useless_probes
        .fetch_add(sup.outcome.stats.useless_probes as u64, Ordering::Relaxed);
    shared
        .useless_hits
        .fetch_add(sup.outcome.stats.cache_skips as u64, Ordering::Relaxed);
    shared
        .certs_dropped
        .fetch_add(sup.outcome.stats.certs_dropped as u64, Ordering::Relaxed);

    let mut response = Response {
        id: job.id.clone(),
        status: Some(Status::Ok),
        rounds: sup.outcome.stats.rounds as u64,
        warm_assertions: warm.len() as u64,
        ..Response::default()
    };
    let stored = match &sup.outcome.verdict {
        Verdict::Correct => {
            response.verdict = Some(WireVerdict::Correct);
            Some(StoredVerdict::Correct)
        }
        Verdict::Incorrect { trace } => {
            let letters: Vec<u32> = trace.iter().map(|l| l.0).collect();
            response.verdict = Some(WireVerdict::Incorrect(letters.clone()));
            Some(StoredVerdict::Incorrect(letters))
        }
        Verdict::GaveUp(g) => {
            response.verdict = Some(WireVerdict::GaveUp);
            response.category = Some(g.category.to_string());
            response.reason = Some(g.reason.clone());
            // Budget-dependent outcomes are never persisted: a restart
            // with better luck or bigger budgets must be free to differ.
            None
        }
    };

    if let Some(verdict) = stored {
        // Test hook: deterministic corruption on the persist path,
        // modeling a verifier or serializer writing a wrong proof. The
        // record lands mutated; the store→serve audit must catch it on
        // the next lookup.
        let mut certificate = sup.outcome.certificate.clone();
        if let Some(cert) = certificate.as_mut() {
            shared
                .config
                .cert_faults
                .hit(CertFaultSite::EngineStore, cert);
        }
        // Journal the verdict and group-commit it *before* the response:
        // `OK` on the wire means the record survives a kill -9. The append
        // stages the frame under the lock; `commit` elects one thread per
        // batch to write + fsync everything pending, so concurrent workers
        // share a single fsync instead of paying one each.
        // The write-back replaces any prior record under this
        // fingerprint: its sample-audit memo no longer describes the
        // stored bytes, so the next warm hit must re-audit.
        shared
            .certs_audited
            .lock()
            .expect("certs_audited")
            .remove(&fingerprint);
        let appended = shared.store.lock().append(StoreRecord {
            fingerprint,
            name: program.name().to_owned(),
            verdict,
            rounds: sup.outcome.stats.rounds as u64,
            assertions: sup.harvest.clone(),
            certificate,
        });
        match appended {
            Ok(seq) => match shared.store.commit(seq) {
                Ok(()) => {
                    response.durable = shared.store.lock().persistent();
                }
                Err(e) => eprintln!("warning: proof store commit failed: {e}"),
            },
            Err(e) => eprintln!("warning: proof store append failed: {e}"),
        }
        // Deterministic kill -9 at the worst moment: the work is durable,
        // the response is not. Recovery tests restart and must re-serve
        // the finished prefix from the store. Charged per persisted
        // definitive verdict so the old `--crash-after N` keeps counting
        // the same events it always did.
        shared.config.crash_plan.hit(CrashSite::PostFsync);
    }
    finish(response, shared)
}

/// Serves one connection: frames in, responses out, one batch stats line
/// on close.
fn serve_connection(shared: &Shared, stream: TcpStream, job_tx: &Sender<Job>) {
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new(MAX_FRAME);
    let mut read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut write_half = stream;
    let mut batch = BatchStats::default();
    let mut idle_since = Instant::now();

    loop {
        if shared.shutdown.load(Ordering::Relaxed) && !reader.mid_frame() {
            break;
        }
        // Short idle ticks so shutdown is noticed promptly; the real idle
        // budget is enforced across ticks.
        let tick = shared.config.idle_timeout.min(Duration::from_millis(200));
        let frame = match reader.read_frame(&mut read_half, tick, shared.config.io_timeout) {
            Ok(FrameEvent::Frame(frame)) => {
                idle_since = Instant::now();
                frame
            }
            Ok(FrameEvent::Closed) => break,
            Ok(FrameEvent::Idle) => {
                if idle_since.elapsed() >= shared.config.idle_timeout {
                    break;
                }
                continue;
            }
            Err(e) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                // Best-effort structured goodbye; the framing layer is
                // compromised, so the connection closes either way.
                let goodbye = Response::error("", e.to_string());
                let _ = write_frame(&mut write_half, &goodbye.to_text());
                if !matches!(e, FrameError::Disconnected) {
                    batch.errors += 1;
                }
                break;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let request = match Request::parse(&frame) {
            Ok(request) => request,
            Err(e) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                shared.errors.fetch_add(1, Ordering::Relaxed);
                batch.errors += 1;
                let resp = Response::error("", format!("bad request: {e}"));
                if write_frame(&mut write_half, &resp.to_text()).is_err() {
                    break;
                }
                continue;
            }
        };
        let response = match request.cmd {
            Command::Ping => Response {
                id: request.id,
                status: Some(Status::Ok),
                info: vec![("pong".to_owned(), "1".to_owned())],
                ..Response::default()
            },
            Command::Stats => Response {
                id: request.id,
                status: Some(Status::Ok),
                info: shared.stats_info(),
                ..Response::default()
            },
            Command::Shutdown => {
                shared.shutdown.store(true, Ordering::Relaxed);
                Response {
                    id: request.id,
                    status: Some(Status::Ok),
                    info: vec![("draining".to_owned(), "1".to_owned())],
                    ..Response::default()
                }
            }
            Command::Verify { source, opts } => {
                dispatch_verify(shared, job_tx, request.id, source, opts, &mut batch)
            }
        };
        batch.note(&response);
        if write_frame(&mut write_half, &response.to_text()).is_err() {
            break;
        }
    }

    if batch.served > 0 {
        println!("{}", batch.render(shared));
    }
}

/// Admission control + queue hand-off for one verification.
fn dispatch_verify(
    shared: &Shared,
    job_tx: &Sender<Job>,
    id: String,
    source: String,
    opts: crate::proto::VerifyOpts,
    batch: &mut BatchStats,
) -> Response {
    let cap = shared.config.max_inflight.max(1) + shared.config.queue_depth;
    loop {
        let current = shared.inflight.load(Ordering::Relaxed);
        if current >= cap {
            shared.busy_shed.fetch_add(1, Ordering::Relaxed);
            batch.shed += 1;
            return Response::busy(&id, RETRY_AFTER);
        }
        if shared
            .inflight
            .compare_exchange(current, current + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            break;
        }
    }
    let (reply_tx, reply_rx) = channel();
    let job = Job {
        id: id.clone(),
        source,
        opts,
        reply: reply_tx,
    };
    if job_tx.send(job).is_err() {
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
        return Response::error(&id, "server is shutting down");
    }
    // Backstop only: the governor's deadline (capped by request_timeout,
    // escalated per retry) bounds real work, and panics are contained —
    // a worker always replies unless the process itself is dying.
    let ladder = 1u32 << (shared.config.retries + 2).min(16);
    let backstop = shared
        .config
        .request_timeout
        .saturating_mul(ladder)
        .saturating_add(Duration::from_secs(10));
    match reply_rx.recv_timeout(backstop) {
        Ok(response) => response,
        Err(_) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            Response::error(&id, "request worker lost")
        }
    }
}

/// Per-connection batch accounting, reported as one stats line on close.
#[derive(Default)]
struct BatchStats {
    served: u64,
    ok: u64,
    errors: u64,
    shed: u64,
    store_hits: u64,
    warm_starts: u64,
    latencies_ms: Vec<u64>,
}

impl BatchStats {
    fn note(&mut self, response: &Response) {
        self.served += 1;
        match response.status {
            Some(Status::Ok) => self.ok += 1,
            Some(Status::Error) => self.errors += 1,
            _ => {}
        }
        if response.store_hit {
            self.store_hits += 1;
        }
        if response.warm_assertions > 0 {
            self.warm_starts += 1;
        }
        if response.verdict.is_some() {
            self.latencies_ms.push(response.time_ms);
        }
    }

    fn render(&self, shared: &Shared) -> String {
        let (p50, p95, max) = percentiles(&self.latencies_ms);
        let verifications = self.latencies_ms.len() as u64;
        let hit_rate = if verifications == 0 {
            0.0
        } else {
            self.store_hits as f64 / verifications as f64
        };
        format!(
            "batch: served={} ok={} errors={} shed={} store-hits={} hit-rate={:.2} warm-starts={} \
             certs-checked={} certs-passed={} certs-quarantined={} certs-dropped={} \
             dfs-tasks={} dfs-steals={} useless-probes={} useless-hits={} \
             p50-ms={} p95-ms={} max-ms={} qcache-evictions={}",
            self.served,
            self.ok,
            self.errors,
            self.shed,
            self.store_hits,
            hit_rate,
            self.warm_starts,
            shared.certs_checked.load(Ordering::Relaxed),
            shared.certs_passed.load(Ordering::Relaxed),
            shared.certs_quarantined.load(Ordering::Relaxed),
            shared.certs_dropped.load(Ordering::Relaxed),
            shared.dfs_tasks.load(Ordering::Relaxed),
            shared.dfs_steals.load(Ordering::Relaxed),
            shared.useless_probes.load(Ordering::Relaxed),
            shared.useless_hits.load(Ordering::Relaxed),
            p50,
            p95,
            max,
            shared.cache.stats().evictions,
        )
    }
}
