//! Bug hunting with the preference-order portfolio (§8): run all five
//! orders on racy programs, report which order finds each bug fastest,
//! and validate every witness with the concrete interpreter.
//!
//! Run: `cargo run --release --example bug_hunting`

use seqver::bench_suite::generators::{
    count_up_down_buggy, peterson, producer_consumer, split_read_modify_write,
};
use seqver::cpl;
use seqver::gemcutter::portfolio::{default_portfolio, portfolio_verify};
use seqver::gemcutter::verify::Verdict;
use seqver::program::interp::Interpreter;
use seqver::smt::TermPool;

fn main() {
    let programs = [
        ("peterson-broken", peterson(false)),
        ("lost-update", split_read_modify_write()),
        ("unbounded-buffer", producer_consumer(2, false)),
        ("count-up-down-off-by-one", count_up_down_buggy(2)),
    ];
    for (name, source) in programs {
        let mut pool = TermPool::new();
        let program = cpl::compile(&source, &mut pool).expect("valid CPL");
        let result = portfolio_verify(&mut pool, &program, &default_portfolio(), false);
        let Verdict::Incorrect { trace } = &result.outcome.verdict else {
            panic!("{name}: expected a bug, got {:?}", result.outcome.verdict);
        };
        println!(
            "{name}: bug found by {} in {} rounds ({:?})",
            result.winner.as_deref().unwrap_or("?"),
            result.outcome.stats.rounds,
            result.outcome.stats.time
        );
        // Independent validation: the witness must replay concretely.
        let interp = Interpreter::new(&program);
        assert!(
            interp.replay(&pool, trace),
            "{name}: witness does not replay!"
        );
        println!(
            "  witness ({} steps) replays in the interpreter ✓",
            trace.len()
        );
        for (member, outcome) in &result.members {
            let status = match &outcome.verdict {
                Verdict::Incorrect { .. } => format!(
                    "bug in {} rounds, {:?}",
                    outcome.stats.rounds, outcome.stats.time
                ),
                Verdict::Correct => "WRONG (claims correct)".to_owned(),
                Verdict::GaveUp(give_up) => format!("gave up: {give_up}"),
            };
            println!("    {member:22} {status}");
        }
        println!();
    }
}
