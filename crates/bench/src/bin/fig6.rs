//! **Figure 6**: quantile plots of CPU time and memory over the
//! successfully analysed benchmarks — Automizer (dotted green in the
//! paper) vs. GemCutter portfolio (solid orange).
//!
//! A point `(x, y)` means: the x-th fastest successfully analysed program
//! required `y` seconds (resp. `y` visited states).
//!
//! Run: `cargo run --release -p bench --bin fig6`

use bench::{print_quantile_series, run_config, run_portfolio, Run};
use gemcutter::verify::VerifierConfig;

fn series(runs: &[Run]) -> (Vec<f64>, Vec<f64>) {
    let times = runs
        .iter()
        .filter(|r| r.successful())
        .map(Run::time_s)
        .collect();
    let mems = runs
        .iter()
        .filter(|r| r.successful())
        .map(|r| r.memory() as f64)
        .collect();
    (times, mems)
}

fn main() {
    let corpus = bench::corpus();
    println!("Figure 6: quantile plots (CPU time in s; memory = visited states)\n");
    let automizer = run_config(&corpus, &VerifierConfig::automizer());
    let gemcutter: Vec<Run> = run_portfolio(&corpus, false)
        .into_iter()
        .map(|(r, _)| r)
        .collect();

    let (at, am) = series(&automizer);
    let (gt, gm) = series(&gemcutter);

    println!("CPU time (s):");
    print_quantile_series("automizer", at.clone());
    print_quantile_series("gemcutter", gt.clone());
    println!("Memory (visited states):");
    print_quantile_series("automizer", am.clone());
    print_quantile_series("gemcutter", gm.clone());

    let sum = |v: &[f64]| v.iter().sum::<f64>();
    println!();
    println!(
        "Totals: time automizer={:.2}s gemcutter={:.2}s | memory automizer={} gemcutter={}",
        sum(&at),
        sum(&gt),
        sum(&am) as u64,
        sum(&gm) as u64
    );
    println!(
        "Paper shape: the GemCutter curve dominates (lower) at the expensive end of both plots."
    );
}
