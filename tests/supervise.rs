//! Restart-supervisor battery: escalation converts budget give-ups into
//! conclusive verdicts, recycled proofs shrink the final attempt, the
//! give-up history stays deduplicated across attempts, and seeding can
//! never flip a buggy program to `Correct` (recycled assertions are
//! *candidates* — every proof transition is re-validated by Hoare
//! queries, so a bad seed costs completeness, never soundness).

use seqver::gemcutter::govern::GovernorConfig;
use seqver::gemcutter::supervise::{supervised_verify, RetryPolicy, SuperviseConfig};
use seqver::gemcutter::verify::{verify, Verdict, VerifierConfig};
use seqver::smt::TermPool;

/// Two four-iteration workers plus a checker — the `chain-medium`
/// example: gives up under a 400-state DFS budget, converges one or two
/// escalation rungs later.
const CHAIN_MEDIUM: &str = r#"
    var c: int = 0;
    var done: int = 0;
    thread inc {
        local i: int = 0;
        while (i < 4) {
            c := c + 1;
            i := i + 1;
        }
        done := done + 1;
    }
    thread checker {
        assume done >= 2;
        assert c <= 8;
    }
    spawn inc * 2;
    spawn checker;
"#;

/// The buggy sibling: the bound is one increment too tight.
const CHAIN_MEDIUM_BUGGY: &str = r#"
    var c: int = 0;
    var done: int = 0;
    thread inc {
        local i: int = 0;
        while (i < 4) {
            c := c + 1;
            i := i + 1;
        }
        done := done + 1;
    }
    thread checker {
        assume done >= 2;
        assert c <= 7;
    }
    spawn inc * 2;
    spawn checker;
"#;

fn tight_config(dfs_budget: u64) -> VerifierConfig {
    VerifierConfig {
        govern: GovernorConfig {
            dfs_state_budget: Some(dfs_budget),
            ..GovernorConfig::default()
        },
        ..VerifierConfig::gemcutter_seq()
    }
}

#[test]
fn escalation_converts_budget_give_up_to_conclusive() {
    let mut pool = TermPool::new();
    let p = seqver::cpl::compile(CHAIN_MEDIUM, &mut pool).unwrap();
    let config = tight_config(400);

    // Without supervision the tight budget is fatal.
    let plain = verify(&mut pool, &p, &config);
    assert!(
        plain.verdict.give_up().is_some(),
        "budget should be fatal unsupervised, got {:?}",
        plain.verdict
    );

    // With the ladder the same budget converges.
    let policy = RetryPolicy::with_retries(3).escalating_by(4);
    let sup = supervised_verify(&mut pool, &p, &config, &SuperviseConfig::retrying(policy));
    assert!(
        sup.outcome.verdict.is_correct(),
        "escalation should convert the give-up, got {:?}",
        sup.outcome.verdict
    );
    assert!(sup.retries_used() > 0, "conversion must have retried");
}

#[test]
fn recycled_proofs_shrink_the_final_attempt() {
    let mut pool = TermPool::new();
    let p = seqver::cpl::compile(CHAIN_MEDIUM, &mut pool).unwrap();
    let policy = RetryPolicy::with_retries(3).escalating_by(4);
    let sup = supervised_verify(
        &mut pool,
        &p,
        &tight_config(400),
        &SuperviseConfig::retrying(policy),
    );
    assert!(sup.outcome.verdict.is_correct());
    assert!(
        sup.recycled_assertions > 0,
        "escalated attempts should be seeded with harvested assertions"
    );
    let rate = sup.recycle_hit_rate();
    assert!(
        rate > 0.0 && rate < 1.0,
        "hit rate should be a proper fraction, got {rate}"
    );
    // The last attempt reports the seeds it imported.
    let last = sup.attempts.last().unwrap();
    assert_eq!(last.seeded, sup.recycled_assertions);
    assert_eq!(last.give_up, None);
}

#[test]
fn give_up_history_is_deduped_across_attempts() {
    let mut pool = TermPool::new();
    let p = seqver::cpl::compile(CHAIN_MEDIUM, &mut pool).unwrap();
    // Factor 1: every rung re-runs the same fatal budget, so every
    // attempt gives up with the same (engine, category) key.
    let policy = RetryPolicy::with_retries(2).escalating_by(1);
    let sup = supervised_verify(
        &mut pool,
        &p,
        &tight_config(200),
        &SuperviseConfig::retrying(policy),
    );
    assert!(
        sup.outcome.verdict.give_up().is_some(),
        "factor-1 escalation cannot converge, got {:?}",
        sup.outcome.verdict
    );
    assert_eq!(sup.attempts.len(), 3, "all rungs should run");
    let mut keys: Vec<_> = sup.give_up_history.iter().map(|g| g.key()).collect();
    let total = keys.len();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), total, "give-up history must be deduped");
    assert!(
        total < sup.attempts.len(),
        "three identical give-ups should collapse, history has {total}"
    );
}

#[test]
fn seeding_never_flips_a_buggy_program() {
    let mut pool = TermPool::new();
    let p = seqver::cpl::compile(CHAIN_MEDIUM_BUGGY, &mut pool).unwrap();
    let policy = RetryPolicy::with_retries(3).escalating_by(4);
    let sup = supervised_verify(
        &mut pool,
        &p,
        &tight_config(400),
        &SuperviseConfig::retrying(policy),
    );
    assert!(
        !sup.outcome.verdict.is_correct(),
        "recycled seeds flipped a buggy program to Correct"
    );
    if sup.outcome.verdict.give_up().is_none() {
        assert!(matches!(sup.outcome.verdict, Verdict::Incorrect { .. }));
    }
}

#[test]
fn unlimited_budget_never_retries_and_matches_plain_verify() {
    let mut pool = TermPool::new();
    let p = seqver::cpl::compile(CHAIN_MEDIUM, &mut pool).unwrap();
    let config = VerifierConfig::gemcutter_seq();
    let plain = verify(&mut pool, &p, &config);

    let mut pool2 = TermPool::new();
    let p2 = seqver::cpl::compile(CHAIN_MEDIUM, &mut pool2).unwrap();
    let policy = RetryPolicy::with_retries(3).escalating_by(4);
    let sup = supervised_verify(&mut pool2, &p2, &config, &SuperviseConfig::retrying(policy));

    assert_eq!(sup.attempts.len(), 1, "nothing to retry");
    assert_eq!(sup.rounds_skipped, 0);
    assert_eq!(sup.recycle_hit_rate(), 0.0);
    assert_eq!(
        format!("{:?}", sup.outcome.verdict),
        format!("{:?}", plain.verdict)
    );
    assert_eq!(sup.outcome.stats.rounds, plain.stats.rounds);
    assert_eq!(sup.outcome.stats.proof_size, plain.stats.proof_size);
}
