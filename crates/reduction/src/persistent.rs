//! Weakly persistent membranes via conflict SCCs — Algorithm 1 (§7.1).
//!
//! For a product state `q`, a *weakly persistent* set of enabled letters
//! may soundly be the only ones explored, provided it is also a *membrane*
//! (every nonempty accepted word from `q` contains one of its letters,
//! §6.1). Algorithm 1 computes such sets in polynomial time:
//!
//! 1. precompute the location-level conflict relation `ℓi ⇝ ℓj` (an edge
//!    when a current action of thread `i` fails to commute with a *future*
//!    action of thread `j`),
//! 2. per state, build the conflict graph over active threads, adding
//!    preference-order edges for compatibility with `⋖`,
//! 3. select a topologically maximal (sink) SCC — or, in `assert` mode,
//!    the conflict-closure of the asserting thread, which guarantees the
//!    membrane property (footnote 4).

use crate::order::{OrderContext, PreferenceOrder};
use automata::bitset::BitSet;
use automata::dfa::StateId;
use program::commutativity::CommutativityOracle;
use program::concurrent::{LetterId, ProductState, Program};
use program::thread::ThreadId;
use smt::term::TermPool;

/// Which membrane discipline to use (determined by the specification).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembraneMode {
    /// Pre/post specification: accepted words end with *all* threads at
    /// exit, so any nonempty conflict-closed set of active threads is a
    /// membrane. A sink SCC is selected.
    Terminal,
    /// Assert specification for the given thread: accepted words end with
    /// this thread at an error location, so the membrane must contain the
    /// thread's enabled actions. The conflict-closure of the thread is
    /// selected.
    ErrorThread(ThreadId),
}

/// Precomputed conflict information for a program, reusable across all
/// proof-check rounds.
#[derive(Clone, Debug)]
pub struct PersistentSets {
    /// `noncommute[a]` = letters that do NOT (unconditionally) commute
    /// with `a`.
    noncommute: Vec<BitSet>,
    /// `future_letters[t][loc]` = letters enabled at any location reachable
    /// from `loc` within thread `t` (including `loc` itself).
    future_letters: Vec<Vec<BitSet>>,
}

impl PersistentSets {
    /// Precomputes the conflict relation (`O(size(P)²)` letter-pair checks,
    /// all cached in the oracle).
    pub fn new(
        pool: &mut TermPool,
        program: &Program,
        oracle: &mut CommutativityOracle,
    ) -> PersistentSets {
        PersistentSets::from_commuting(program, |a, b| oracle.commute(pool, program, a, b))
    }

    /// Builds the conflict relation from an arbitrary commutativity
    /// predicate instead of a live oracle. This is how an independent
    /// certificate checker reconstructs membranes from a *recorded* table
    /// of commutativity claims: the structural side (fixpoints, SCCs) is
    /// re-derived here, while the semantic truth of each claimed pair is
    /// validated separately by the caller.
    pub fn from_commuting(
        program: &Program,
        mut commute: impl FnMut(LetterId, LetterId) -> bool,
    ) -> PersistentSets {
        let n_letters = program.num_letters();
        let mut noncommute = vec![BitSet::new(n_letters); n_letters];
        for a in program.letters() {
            for b in program.letters() {
                if a.index() <= b.index() && !commute(a, b) {
                    noncommute[a.index()].insert(b.index());
                    noncommute[b.index()].insert(a.index());
                }
            }
        }
        let future_letters = program
            .threads()
            .iter()
            .map(|t| {
                let cfg = t.cfg();
                let n = cfg.num_states();
                let mut fut = vec![BitSet::new(n_letters); n];
                // Fixpoint: fut(ℓ) = enabled(ℓ) ∪ ⋃ fut(successors).
                let mut changed = true;
                while changed {
                    changed = false;
                    for loc in 0..n {
                        let mut acc = fut[loc].clone();
                        for (l, succ) in cfg.edges(StateId(loc as u32)) {
                            acc.insert(l.index());
                            let succ_set = fut[succ.index()].clone();
                            acc.union_with(&succ_set);
                        }
                        if acc != fut[loc] {
                            fut[loc] = acc;
                            changed = true;
                        }
                    }
                }
                fut
            })
            .collect();
        PersistentSets {
            noncommute,
            future_letters,
        }
    }

    /// The location-level conflict relation `ℓi ⇝ ℓj` (threads must
    /// differ): an enabled action of `ℓi` fails to commute with an action
    /// enabled at some `Tj`-location reachable from `ℓj`.
    pub fn conflicts(
        &self,
        program: &Program,
        ti: ThreadId,
        li: StateId,
        tj: ThreadId,
        lj: StateId,
    ) -> bool {
        debug_assert_ne!(ti, tj);
        let future = &self.future_letters[tj.index()][lj.index()];
        program
            .thread(ti)
            .cfg()
            .enabled(li)
            .any(|a| !self.noncommute[a.index()].is_disjoint_from(future))
    }

    /// Algorithm 1: a weakly persistent membrane at `q`, compatible with
    /// the preference order in context `ctx`, as a set of enabled letters.
    ///
    /// Returns the empty set when no accepted word can start at `q`
    /// (e.g. the asserting thread has terminated) — everything may be
    /// pruned.
    pub fn compute(
        &self,
        program: &Program,
        q: &ProductState,
        order: &dyn PreferenceOrder,
        ctx: OrderContext,
        mode: MembraneMode,
    ) -> Vec<LetterId> {
        let n = program.num_threads();
        let active: Vec<usize> = (0..n)
            .filter(|&i| {
                program
                    .thread(ThreadId(i as u32))
                    .cfg()
                    .enabled(q.location(ThreadId(i as u32)))
                    .next()
                    .is_some()
            })
            .collect();
        if active.is_empty() {
            return Vec::new();
        }
        // conflicts ⊆ active²: (i, j) when ℓi ⇝ ℓj, or thread j has an
        // enabled letter preferred over one of thread i's (compatibility).
        let edge = |i: usize, j: usize| -> bool {
            let (ti, tj) = (ThreadId(i as u32), ThreadId(j as u32));
            if self.conflicts(program, ti, q.location(ti), tj, q.location(tj)) {
                return true;
            }
            program.enabled_in_thread(q, tj).iter().any(|&a| {
                program
                    .enabled_in_thread(q, ti)
                    .iter()
                    .any(|&b| order.less(ctx, a, b, program))
            })
        };

        let selected: Vec<usize> = match mode {
            MembraneMode::ErrorThread(t) => {
                if !active.contains(&t.index()) {
                    // The asserting thread cannot move again: if it is not
                    // already at an error location, no accepted word starts
                    // here and the entire subtree may be pruned.
                    return Vec::new();
                }
                // Conflict-closure of {t}: follow edges transitively.
                let mut closure = vec![t.index()];
                let mut work = vec![t.index()];
                while let Some(i) = work.pop() {
                    for &j in &active {
                        if !closure.contains(&j) && edge(i, j) {
                            closure.push(j);
                            work.push(j);
                        }
                    }
                }
                closure
            }
            MembraneMode::Terminal => sink_scc(&active, edge),
        };

        let mut letters: Vec<LetterId> = selected
            .iter()
            .flat_map(|&i| program.enabled_in_thread(q, ThreadId(i as u32)))
            .collect();
        letters.sort_unstable();
        letters
    }
}

/// Tarjan SCC over the given nodes, returning a topologically maximal
/// (sink) component — deterministically the one containing the smallest
/// node among all sinks.
fn sink_scc(nodes: &[usize], edge: impl Fn(usize, usize) -> bool) -> Vec<usize> {
    // Small n: Kosaraju-style with explicit adjacency is simplest.
    let n = nodes.len();
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i && edge(nodes[i], nodes[j]))
                .collect()
        })
        .collect();
    // Tarjan.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comp_of = vec![usize::MAX; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan to avoid recursion limits.
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call = vec![Frame::Enter(root)];
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut ei) => {
                    let mut descended = false;
                    while ei < adj[v].len() {
                        let w = adj[v][ei];
                        ei += 1;
                        if index[w] == usize::MAX {
                            call.push(Frame::Resume(v, ei));
                            call.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let cid = comps.len();
                        for &w in &comp {
                            comp_of[w] = cid;
                        }
                        comps.push(comp);
                    }
                    // Propagate low to parent.
                    if let Some(Frame::Resume(p, _)) = call.last() {
                        let p = *p;
                        low[p] = low[p].min(low[v]);
                    }
                }
            }
        }
    }
    // Sinks: components with no edge to another component.
    let is_sink = |cid: usize| -> bool {
        comps[cid]
            .iter()
            .all(|&v| adj[v].iter().all(|&w| comp_of[w] == cid))
    };
    let sink = (0..comps.len())
        .filter(|&c| is_sink(c))
        .min_by_key(|&c| {
            comps[c]
                .iter()
                .map(|&v| nodes[v])
                .min()
                .unwrap_or(usize::MAX)
        })
        .expect("a finite digraph has a sink SCC");
    let mut out: Vec<usize> = comps[sink].iter().map(|&v| nodes[v]).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::order::SeqOrder;
    use automata::dfa::DfaBuilder;
    use program::commutativity::CommutativityLevel;
    use program::stmt::{SimpleStmt, Statement};
    use program::thread::Thread;
    use smt::linear::LinExpr;

    /// n independent single-step threads (full commutativity).
    fn independent(pool: &mut TermPool, n: u32) -> Program {
        let mut b = Program::builder("ind");
        let mut letters = Vec::new();
        for t in 0..n {
            let v = pool.var(&format!("x{t}"));
            b.add_global(v, 0);
            letters.push(b.add_statement(Statement::simple(
                ThreadId(t),
                &format!("w{t}"),
                SimpleStmt::Assign(v, LinExpr::constant(1)),
                pool,
            )));
        }
        for t in 0..n as usize {
            let mut cfg = DfaBuilder::new();
            let entry = cfg.add_state(false);
            let exit = cfg.add_state(true);
            cfg.add_transition(entry, letters[t], exit);
            b.add_thread(Thread::new("t", cfg.build(entry), BitSet::new(2)));
        }
        b.build(pool)
    }

    #[test]
    fn independent_threads_give_singleton_persistent_set() {
        let mut pool = TermPool::new();
        let p = independent(&mut pool, 4);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
        let ps = PersistentSets::new(&mut pool, &p, &mut oracle);
        let q = p.initial_state();
        let m = ps.compute(&p, &q, &SeqOrder::new(), 0, MembraneMode::Terminal);
        // Under seq order, only thread 0's action is explored.
        assert_eq!(m, vec![LetterId(0)]);
    }

    #[test]
    fn conflicting_threads_are_closed_over() {
        // Threads 0 and 1 write the same variable; thread 2 independent.
        let mut pool = TermPool::new();
        let mut b = Program::builder("c");
        let x = pool.var("x");
        let z = pool.var("z");
        b.add_global(x, 0);
        b.add_global(z, 0);
        let specs: Vec<(ThreadId, VarSpec)> = vec![
            (ThreadId(0), VarSpec(x, 1)),
            (ThreadId(1), VarSpec(x, 2)),
            (ThreadId(2), VarSpec(z, 1)),
        ];
        struct VarSpec(smt::VarId, i128);
        let mut letters = Vec::new();
        for (t, VarSpec(v, k)) in &specs {
            letters.push(b.add_statement(Statement::simple(
                *t,
                "w",
                SimpleStmt::Assign(*v, LinExpr::constant(*k)),
                &pool,
            )));
        }
        for l in &letters {
            let mut cfg = DfaBuilder::new();
            let entry = cfg.add_state(false);
            let exit = cfg.add_state(true);
            cfg.add_transition(entry, *l, exit);
            b.add_thread(Thread::new("t", cfg.build(entry), BitSet::new(2)));
        }
        let p = b.build(&mut pool);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
        let ps = PersistentSets::new(&mut pool, &p, &mut oracle);
        let q = p.initial_state();
        let m = ps.compute(&p, &q, &SeqOrder::new(), 0, MembraneMode::Terminal);
        // Threads 0 and 1 conflict, so both must be in the set; thread 2
        // need not be — but seq-order compatibility pulls in thread 0/1
        // over thread 2 only if 2 is selected. The sink SCC containing the
        // smallest thread is {0,1}.
        assert_eq!(m, vec![LetterId(0), LetterId(1)]);
    }

    #[test]
    fn error_mode_includes_asserting_thread() {
        let mut pool = TermPool::new();
        let p = independent(&mut pool, 3);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
        let ps = PersistentSets::new(&mut pool, &p, &mut oracle);
        let q = p.initial_state();
        // If thread 2 is the asserting one, its action must be present even
        // though thread 0 would otherwise be the sink.
        let m = ps.compute(
            &p,
            &q,
            &SeqOrder::new(),
            0,
            MembraneMode::ErrorThread(ThreadId(2)),
        );
        assert!(m.contains(&LetterId(2)));
    }

    #[test]
    fn error_mode_prunes_when_asserting_thread_done() {
        let mut pool = TermPool::new();
        let p = independent(&mut pool, 2);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
        let ps = PersistentSets::new(&mut pool, &p, &mut oracle);
        // Advance thread 1 to its exit.
        let q0 = p.initial_state();
        let q1 = p.step(&q0, LetterId(1)).unwrap();
        let m = ps.compute(
            &p,
            &q1,
            &SeqOrder::new(),
            0,
            MembraneMode::ErrorThread(ThreadId(1)),
        );
        assert!(m.is_empty(), "no accepted word can start once t1 exited");
    }

    #[test]
    fn future_conflicts_are_seen() {
        // Thread 1's FIRST action is independent of thread 0, but its
        // SECOND action writes thread 0's variable: the conflict relation
        // must look into the future.
        let mut pool = TermPool::new();
        let mut b = Program::builder("future");
        let x = pool.var("x");
        let y = pool.var("y");
        b.add_global(x, 0);
        b.add_global(y, 0);
        let l0 = b.add_statement(Statement::simple(
            ThreadId(0),
            "x := 1",
            SimpleStmt::Assign(x, LinExpr::constant(1)),
            &pool,
        ));
        let l1a = b.add_statement(Statement::simple(
            ThreadId(1),
            "y := 1",
            SimpleStmt::Assign(y, LinExpr::constant(1)),
            &pool,
        ));
        let l1b = b.add_statement(Statement::simple(
            ThreadId(1),
            "x := 2",
            SimpleStmt::Assign(x, LinExpr::constant(2)),
            &pool,
        ));
        {
            let mut cfg = DfaBuilder::new();
            let entry = cfg.add_state(false);
            let exit = cfg.add_state(true);
            cfg.add_transition(entry, l0, exit);
            b.add_thread(Thread::new("t0", cfg.build(entry), BitSet::new(2)));
        }
        {
            let mut cfg = DfaBuilder::new();
            let entry = cfg.add_state(false);
            let mid = cfg.add_state(false);
            let exit = cfg.add_state(true);
            cfg.add_transition(entry, l1a, mid);
            cfg.add_transition(mid, l1b, exit);
            b.add_thread(Thread::new("t1", cfg.build(entry), BitSet::new(3)));
        }
        let p = b.build(&mut pool);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
        let ps = PersistentSets::new(&mut pool, &p, &mut oracle);
        // ℓ0 of thread 0 conflicts with thread 1's entry location (future
        // x := 2).
        assert!(ps.conflicts(
            &p,
            ThreadId(0),
            p.thread(ThreadId(0)).entry(),
            ThreadId(1),
            p.thread(ThreadId(1)).entry()
        ));
        let q = p.initial_state();
        let m = ps.compute(&p, &q, &SeqOrder::new(), 0, MembraneMode::Terminal);
        // Both threads are in conflict: both actions kept.
        assert_eq!(m, vec![LetterId(0), LetterId(1)]);
    }
}
