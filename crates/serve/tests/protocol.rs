//! Wire-protocol and fault-isolation battery for `seqver serve`, against
//! an in-process daemon on a loopback port: malformed frames, oversized
//! payloads, mid-frame disconnects and slow-loris trickles must produce a
//! structured goodbye (or a clean drop) without disturbing concurrent
//! requests; injected panics must be contained at both layers (the
//! supervisor's round-level catch and the worker's quarantine-and-replace
//! outer layer); and admission control must shed with `busy` + a retry
//! hint instead of queueing without bound.

use serve::client::Client;
use serve::proto::{
    write_frame, FrameEvent, FrameReader, Request, Response, Status, VerifyOpts, WireVerdict,
    MAX_FRAME,
};
use serve::server::{ServeConfig, Server};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct TestServer {
    addr: String,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<Result<(), String>>>,
}

impl TestServer {
    fn start(config: ServeConfig) -> TestServer {
        let server = Server::bind(config).expect("bind test server");
        let addr = server.local_addr().expect("local addr").to_string();
        let shutdown = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            shutdown,
            handle: Some(handle),
        }
    }

    fn client(&self) -> Client {
        Client::connect_with_timeout(&self.addr, Duration::from_secs(60)).expect("connect")
    }

    fn raw(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("raw connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(25)))
            .expect("read timeout");
        stream
    }

    fn stat(&self, key: &str) -> u64 {
        let stats = self.client().stats().expect("stats");
        stats
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("no stat `{key}` in {stats:?}"))
            .1
            .parse()
            .expect("numeric stat")
    }

    fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("running")
            .join()
            .expect("server thread")
            .expect("clean drain");
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn fast_config() -> ServeConfig {
    ServeConfig {
        request_timeout: Duration::from_secs(20),
        io_timeout: Duration::from_millis(300),
        idle_timeout: Duration::from_secs(20),
        ..ServeConfig::default()
    }
}

/// `c <= bound` after one increment: correct for `bound >= 1`, a
/// deterministic bug (the `inc; chk` interleaving) for `bound == 0`.
fn source(bound: u32) -> String {
    format!(
        "var c: int = 0;\n\
         thread inc {{ c := c + 1; }}\n\
         thread chk {{ assert c <= {bound}; }}\n\
         spawn inc;\n\
         spawn chk;\n"
    )
}

/// Reads one frame from a raw socket, waiting out short idle ticks.
fn read_response(reader: &mut FrameReader, stream: &mut TcpStream) -> FrameEvent {
    for _ in 0..400 {
        match reader.read_frame(stream, Duration::from_millis(50), Duration::from_secs(5)) {
            Ok(FrameEvent::Idle) => continue,
            Ok(event) => return event,
            Err(e) => panic!("raw read failed: {e}"),
        }
    }
    panic!("no frame within the wait budget");
}

// ---------------------------------------------------------------------------
// Framing attacks
// ---------------------------------------------------------------------------

#[test]
fn malformed_length_line_gets_goodbye_and_close() {
    let server = TestServer::start(fast_config());
    let mut stream = server.raw();
    use std::io::Write;
    stream.write_all(b"not-a-number\njunk").expect("write");
    let mut reader = FrameReader::new(MAX_FRAME);
    match read_response(&mut reader, &mut stream) {
        FrameEvent::Frame(payload) => {
            let resp = Response::parse(&payload).expect("goodbye parses");
            assert_eq!(resp.status, Some(Status::Error));
            assert!(
                resp.reason.as_deref().unwrap_or("").contains("malformed"),
                "reason: {:?}",
                resp.reason
            );
        }
        other => panic!("expected goodbye frame, got {other:?}"),
    }
    assert_eq!(read_response(&mut reader, &mut stream), FrameEvent::Closed);
    server.stop();
}

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    let server = TestServer::start(fast_config());
    let mut stream = server.raw();
    use std::io::Write;
    stream
        .write_all(format!("{}\n", MAX_FRAME + 1).as_bytes())
        .expect("write");
    let mut reader = FrameReader::new(MAX_FRAME);
    match read_response(&mut reader, &mut stream) {
        FrameEvent::Frame(payload) => {
            let resp = Response::parse(&payload).expect("goodbye parses");
            assert_eq!(resp.status, Some(Status::Error));
            assert!(
                resp.reason.as_deref().unwrap_or("").contains("oversized"),
                "reason: {:?}",
                resp.reason
            );
        }
        other => panic!("expected goodbye frame, got {other:?}"),
    }
    server.stop();
}

#[test]
fn mid_frame_disconnect_is_counted_and_contained() {
    let server = TestServer::start(fast_config());
    {
        let mut stream = server.raw();
        use std::io::Write;
        stream
            .write_all(b"50\nonly-part-of-the-frame")
            .expect("write");
        stream
            .shutdown(std::net::Shutdown::Both)
            .expect("disconnect");
    }
    // The damage is visible in the counters, and the daemon still serves.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stat("protocol-errors") == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "mid-frame disconnect never counted"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let resp = server
        .client()
        .verify_source("after-disconnect", &source(1), VerifyOpts::default())
        .expect("verify after disconnect");
    assert_eq!(resp.verdict, Some(WireVerdict::Correct));
    server.stop();
}

#[test]
fn slow_loris_is_dropped_while_sibling_is_served() {
    let server = TestServer::start(fast_config());
    // The attacker starts a frame and trickles nothing further.
    let mut attacker = server.raw();
    use std::io::Write;
    attacker.write_all(b"100\na-few-bytes").expect("write");
    // A sibling on its own connection is served normally meanwhile.
    let resp = server
        .client()
        .verify_source("sibling", &source(1), VerifyOpts::default())
        .expect("sibling verify");
    assert_eq!(resp.verdict, Some(WireVerdict::Correct));
    // The attacker's connection stalls out (io_timeout) with a structured
    // goodbye, then closes.
    let mut reader = FrameReader::new(MAX_FRAME);
    match read_response(&mut reader, &mut attacker) {
        FrameEvent::Frame(payload) => {
            let resp = Response::parse(&payload).expect("goodbye parses");
            assert_eq!(resp.status, Some(Status::Error));
            assert!(
                resp.reason.as_deref().unwrap_or("").contains("stalled"),
                "reason: {:?}",
                resp.reason
            );
        }
        other => panic!("expected goodbye frame, got {other:?}"),
    }
    assert_eq!(
        read_response(&mut reader, &mut attacker),
        FrameEvent::Closed
    );
    server.stop();
}

// ---------------------------------------------------------------------------
// Request-level failures on a healthy wire
// ---------------------------------------------------------------------------

#[test]
fn bad_request_payload_leaves_connection_usable() {
    let server = TestServer::start(fast_config());
    let mut stream = server.raw();
    let mut reader = FrameReader::new(MAX_FRAME);
    // A well-framed frame whose payload is not a request.
    write_frame(&mut stream, "zalgo, he comes").expect("write");
    match read_response(&mut reader, &mut stream) {
        FrameEvent::Frame(payload) => {
            let resp = Response::parse(&payload).expect("error response parses");
            assert_eq!(resp.status, Some(Status::Error));
            assert!(
                resp.reason.as_deref().unwrap_or("").contains("bad request"),
                "reason: {:?}",
                resp.reason
            );
        }
        other => panic!("expected error response, got {other:?}"),
    }
    // Same connection, next frame: still served.
    let ping = Request::control("p-1", serve::proto::Command::Ping);
    write_frame(&mut stream, &ping.to_text()).expect("write ping");
    match read_response(&mut reader, &mut stream) {
        FrameEvent::Frame(payload) => {
            let resp = Response::parse(&payload).expect("pong parses");
            assert_eq!(resp.id, "p-1");
            assert_eq!(resp.status, Some(Status::Ok));
        }
        other => panic!("expected pong, got {other:?}"),
    }
    server.stop();
}

#[test]
fn compile_errors_are_structured_not_fatal() {
    let server = TestServer::start(fast_config());
    let mut client = server.client();
    let resp = client
        .verify_source(
            "nonsense",
            "this is not CPL at all {",
            VerifyOpts::default(),
        )
        .expect("response");
    assert_eq!(resp.status, Some(Status::Error));
    assert!(
        resp.reason
            .as_deref()
            .unwrap_or("")
            .contains("compile error"),
        "reason: {:?}",
        resp.reason
    );
    // Same connection keeps working.
    let resp = client
        .verify_source("valid", &source(1), VerifyOpts::default())
        .expect("verify");
    assert_eq!(resp.verdict, Some(WireVerdict::Correct));
    // An in-memory store has nothing to fsync: the daemon must not claim
    // the verdict is durable.
    assert!(
        !resp.durable,
        "durable acknowledgement without a persistent store: {resp:?}"
    );
    server.stop();
}

// ---------------------------------------------------------------------------
// Fault isolation: budgets, deadlines and panics
// ---------------------------------------------------------------------------

#[test]
fn budget_and_deadline_giveups_are_structured_per_request() {
    let server = TestServer::start(fast_config());
    let mut client = server.client();
    // Deterministic simulated timeout via the fault plan.
    let resp = client
        .verify_source(
            "deadline",
            &source(1),
            VerifyOpts {
                faults: Some("rounds:1:timeout".to_owned()),
                ..VerifyOpts::default()
            },
        )
        .expect("response");
    assert_eq!(resp.status, Some(Status::Ok));
    assert_eq!(resp.verdict, Some(WireVerdict::GaveUp));
    assert_eq!(resp.category.as_deref(), Some("deadline"));
    // Step-budget exhaustion.
    let resp = client
        .verify_source(
            "budget",
            &source(1),
            VerifyOpts {
                steps: vec![("dfs-states".to_owned(), 1)],
                ..VerifyOpts::default()
            },
        )
        .expect("response");
    assert_eq!(resp.verdict, Some(WireVerdict::GaveUp));
    assert_eq!(resp.category.as_deref(), Some("dfs-states"));
    // The same connection and daemon still conclude definitively, and
    // give-ups were not persisted as verdicts.
    let resp = client
        .verify_source("definitive", &source(1), VerifyOpts::default())
        .expect("verify");
    assert_eq!(resp.verdict, Some(WireVerdict::Correct));
    assert!(!resp.store_hit, "give-ups must not have seeded the store");
    server.stop();
}

#[test]
fn injected_panic_is_contained_by_the_supervisor() {
    let server = TestServer::start(fast_config());
    let mut client = server.client();
    let resp = client
        .verify_source(
            "panicky",
            &source(1),
            VerifyOpts {
                // `dfs-states` is charged inside the proof-check loop, i.e.
                // within the supervisor's round-level `catch_unwind` (a
                // `rounds` fault would fire between rounds and escape to
                // the worker's outer quarantine layer instead).
                faults: Some("dfs-states:1:panic".to_owned()),
                ..VerifyOpts::default()
            },
        )
        .expect("response");
    // The supervisor's round-level catch converts the panic into a
    // structured give-up; the daemon and the connection never notice.
    assert_eq!(resp.status, Some(Status::Ok));
    assert_eq!(resp.verdict, Some(WireVerdict::GaveUp));
    assert_eq!(resp.category.as_deref(), Some("injected-fault"));
    let resp = client
        .verify_source("sibling", &source(1), VerifyOpts::default())
        .expect("sibling verify");
    assert_eq!(resp.verdict, Some(WireVerdict::Correct));
    server.stop();
}

#[test]
fn worker_panic_is_quarantined_and_replaced() {
    // One worker only: if quarantine-and-replace failed to spawn a live
    // replacement, the follow-up request could never complete.
    let server = TestServer::start(ServeConfig {
        max_inflight: 1,
        ..fast_config()
    });
    let mut client = server.client();
    let resp = client
        .verify_source(
            "boom",
            &source(1),
            VerifyOpts {
                faults: Some("worker:panic".to_owned()),
                ..VerifyOpts::default()
            },
        )
        .expect("structured error, not a dropped connection");
    assert_eq!(resp.status, Some(Status::Error));
    assert!(
        resp.reason
            .as_deref()
            .unwrap_or("")
            .contains("panicked (contained)"),
        "reason: {:?}",
        resp.reason
    );
    assert!(server.stat("panics-contained") >= 1);
    assert!(server.stat("workers-replaced") >= 1);
    // The replacement worker serves the next request.
    let resp = client
        .verify_source("after-boom", &source(1), VerifyOpts::default())
        .expect("verify after quarantine");
    assert_eq!(resp.verdict, Some(WireVerdict::Correct));
    server.stop();
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

#[test]
fn overload_sheds_busy_with_retry_hint_and_recovers() {
    let server = TestServer::start(ServeConfig {
        max_inflight: 1,
        queue_depth: 0,
        ..fast_config()
    });
    let addr = server.addr.clone();
    let mut threads = Vec::new();
    for t in 0..6 {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            let mut client =
                Client::connect_with_timeout(&addr, Duration::from_secs(60)).expect("connect");
            let mut busy_seen = 0u64;
            for r in 0..3 {
                // Distinct programs, so no request is an instant store hit.
                let program = source(100 + t * 10 + r);
                let id = format!("flood-{t}-{r}");
                let mut attempts = 0;
                loop {
                    let resp = client
                        .verify_source(&id, &program, VerifyOpts::default())
                        .expect("response");
                    match resp.status {
                        Some(Status::Busy) => {
                            busy_seen += 1;
                            // Honor the daemon's own backoff guidance.
                            let backoff = resp.retry_after_ms.expect("busy carries a hint");
                            assert!(backoff > 0);
                            attempts += 1;
                            assert!(attempts < 1000, "starved out");
                            std::thread::sleep(Duration::from_millis(backoff));
                        }
                        _ => {
                            assert_eq!(resp.verdict, Some(WireVerdict::Correct), "{id}");
                            break;
                        }
                    }
                }
            }
            busy_seen
        }));
    }
    let busy_total: u64 = threads.into_iter().map(|t| t.join().expect("thread")).sum();
    // Six clients against a single worker with no queue: overlap is
    // effectively certain across 18 requests.
    assert!(busy_total >= 1, "no request was ever shed");
    assert!(server.stat("busy") >= busy_total);
    server.stop();
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

#[test]
fn shutdown_request_drains_cleanly() {
    let server = TestServer::start(fast_config());
    let mut client = server.client();
    let resp = client
        .verify_source("pre-drain", &source(1), VerifyOpts::default())
        .expect("verify");
    assert_eq!(resp.verdict, Some(WireVerdict::Correct));
    let resp = client.shutdown().expect("shutdown ack");
    assert_eq!(resp.status, Some(Status::Ok));
    drop(client);
    server.stop();
}
