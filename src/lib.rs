//! **seqver** — a from-scratch Rust reproduction of *“Sound
//! Sequentialization for Concurrent Program Verification”* (Farzan,
//! Klumpp, Podelski; PLDI 2022).
//!
//! This facade crate re-exports the whole stack:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`automata`] | `automata` | DFA/NFA substrate |
//! | [`smt`] | `smt` | QF-LIA SMT solver (simplex + DPLL(T) + cores + projection) |
//! | [`cpl`] | `cpl` | The CPL concurrent-language frontend |
//! | [`program`] | `program` | Concurrent program model, commutativity, interpreter |
//! | [`reduction`] | `reduction` | Preference orders, sleep sets, persistent membranes |
//! | [`gemcutter`] | `gemcutter` | The verifier: refinement loop + on-the-fly proof check |
//! | [`serve`] | `serve` | Verification-as-a-service daemon: wire protocol, proof store, server, client |
//! | [`bench_suite`] | `bench-suite` | The benchmark corpus |
//!
//! # Quickstart
//!
//! ```
//! use seqver::smt::TermPool;
//! use seqver::gemcutter::verify::{verify, VerifierConfig};
//!
//! let source = r#"
//!     var x: int = 0;
//!     thread inc { atomic { x := x + 1; } }
//!     thread check { assert x >= 0; }
//!     spawn inc * 2;
//!     spawn check;
//! "#;
//! let mut pool = TermPool::new();
//! let program = seqver::cpl::compile(source, &mut pool).unwrap();
//! let outcome = verify(&mut pool, &program, &VerifierConfig::gemcutter_seq());
//! assert!(outcome.verdict.is_correct());
//! ```

pub use automata;
pub use bench_suite;
pub use cpl;
pub use gemcutter;
pub use program;
pub use reduction;
pub use serve;
pub use smt;
