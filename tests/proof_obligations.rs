//! Proof-obligation validity: the SMT artifacts the refinement loop is
//! built on are checked directly against the solver.
//!
//! 1. **Unsat cores** (deletion-based, [`seqver::smt::unsat_core`]) are
//!    actually unsat and *locally minimal*: dropping any single member
//!    makes the remainder satisfiable.
//! 2. **Sequence interpolants** returned by trace analysis are
//!    *inductive*: every consecutive Hoare triple `{I_k} stmt_k {I_{k+1}}`
//!    validates through the proof automaton's own Hoare-check entry point,
//!    the first interpolant is implied by the initial condition, and the
//!    last one refutes the error.

use seqver::bench_suite;
use seqver::gemcutter::check::{check_proof, CheckConfig, CheckResult, CheckStats, UselessCache};
use seqver::gemcutter::interpolate::{
    analyze_trace_with_mode, InterpolationMode, InterpolationStats, TraceResult,
};
use seqver::gemcutter::proof::ProofAutomaton;
use seqver::gemcutter::verify::VerifierConfig;
use seqver::program::commutativity::CommutativityOracle;
use seqver::program::concurrent::{Program, Spec};
use seqver::reduction::persistent::PersistentSets;
use seqver::smt::unsat_core::unsat_core;
use seqver::smt::{check, entails, LinExpr, TermId, TermPool};

// ---------------------------------------------------------------------------
// 1. Deletion-based unsat cores: unsat + locally minimal
// ---------------------------------------------------------------------------

/// A battery of unsat LIA assertion sets, each with redundant members so
/// the core is a strict subset.
fn lia_battery(pool: &mut TermPool) -> Vec<(&'static str, Vec<TermId>)> {
    let x = pool.var("x");
    let y = pool.var("y");
    let z = pool.var("z");
    let mut battery = Vec::new();

    // Interval conflict with two irrelevant side constraints.
    battery.push((
        "interval-conflict",
        vec![
            pool.le_const(x, 2),
            pool.ge_const(x, 4),
            pool.ge_const(y, 0),
            pool.le_const(z, 100),
        ],
    ));

    // Chain x <= y <= z <= x - 1 (cyclic strict drop), plus noise.
    let le_xy = pool.le(&LinExpr::var(x), &LinExpr::var(y));
    let le_yz = pool.le(&LinExpr::var(y), &LinExpr::var(z));
    let lt_zx = pool.le(
        &LinExpr::var(z),
        &LinExpr::var(x).sub(&LinExpr::constant(1)),
    );
    let noise = pool.ge_const(y, -50);
    battery.push(("cyclic-chain", vec![le_xy, le_yz, lt_zx, noise]));

    // Scaled conflict: 3x = y with x ≤ 2 forces y ≤ 6, contradicting
    // y ≥ 7; `x ≥ 1` is redundant.
    let triple = pool.eq(&LinExpr::var(x).scale(3), &LinExpr::var(y));
    let ub = pool.le_const(x, 2);
    let lb = pool.ge_const(y, 7);
    let redundant = pool.ge_const(x, 1);
    battery.push(("scaled-conflict", vec![redundant, triple, ub, lb]));

    // Sum conflict: x + y <= 1, x >= 1, y >= 1, and a redundant copy of a
    // weaker bound.
    let sum = pool.le(
        &LinExpr::var(x).add(&LinExpr::var(y)),
        &LinExpr::constant(1),
    );
    let gx = pool.ge_const(x, 1);
    let gy = pool.ge_const(y, 1);
    let weak = pool.ge_const(x, 0);
    battery.push(("sum-conflict", vec![sum, gx, gy, weak]));

    // Equalities: x = y, y = z, z = x + 3.
    let exy = pool.eq(&LinExpr::var(x), &LinExpr::var(y));
    let eyz = pool.eq(&LinExpr::var(y), &LinExpr::var(z));
    let ezx = pool.eq(
        &LinExpr::var(z),
        &LinExpr::var(x).add(&LinExpr::constant(3)),
    );
    let extra = pool.le_const(y, 7);
    battery.push(("equality-chain", vec![exy, eyz, ezx, extra]));
    battery
}

#[test]
fn unsat_cores_are_unsat_and_locally_minimal() {
    let mut pool = TermPool::new();
    for (name, assertions) in lia_battery(&mut pool) {
        assert!(
            check(&mut pool, &assertions).is_unsat(),
            "{name}: battery instance must be unsat"
        );
        let core = unsat_core(&mut pool, &assertions)
            .unwrap_or_else(|| panic!("{name}: no core on an unsat instance"));
        assert!(!core.is_empty(), "{name}: empty core");
        let core_terms: Vec<TermId> = core.iter().map(|&i| assertions[i]).collect();
        assert!(
            check(&mut pool, &core_terms).is_unsat(),
            "{name}: core is not unsat"
        );
        // Local minimality: dropping any single member flips to Sat.
        for drop in 0..core_terms.len() {
            let without: Vec<TermId> = core_terms
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != drop)
                .map(|(_, &t)| t)
                .collect();
            assert!(
                check(&mut pool, &without).is_sat(),
                "{name}: core not locally minimal — member {drop} is redundant"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Sequence interpolants are inductive Hoare chains
// ---------------------------------------------------------------------------

/// Runs refinement on `program`, validating the interpolant chain of every
/// refuted counterexample as an inductive Hoare chain. Returns how many
/// chains were validated.
fn validate_chains(pool: &mut TermPool, program: &Program, mode: InterpolationMode) -> usize {
    let config = VerifierConfig::gemcutter_seq();
    let spec = match program.asserting_threads().first() {
        Some(&t) => Spec::ErrorOf(t),
        None => Spec::PrePost,
    };
    let order = config.order.build();
    let mut oracle = CommutativityOracle::new(config.commutativity);
    let persistent = PersistentSets::new(pool, program, &mut oracle);
    let mut proof = ProofAutomaton::new();
    let mut useless = UselessCache::new();
    let check_config = CheckConfig {
        use_sleep: config.use_sleep,
        use_persistent: true,
        proof_sensitive: config.proof_sensitive,
        max_visited: 100_000,
        ..CheckConfig::default()
    };
    let mut istats = InterpolationStats::default();
    let mut validated = 0;
    for _round in 0..15 {
        let mut cstats = CheckStats::default();
        let result = check_proof(
            pool,
            program,
            spec,
            order.as_ref(),
            &mut oracle,
            Some(&persistent),
            &mut proof,
            &mut useless,
            &check_config,
            &mut cstats,
        );
        let CheckResult::Counterexample(trace) = result else {
            break;
        };
        let TraceResult::Infeasible { chain } =
            analyze_trace_with_mode(pool, program, &trace, spec, mode, &mut istats)
        else {
            break; // feasible (bug benchmark) or unknown: nothing to validate
        };
        assert_eq!(
            chain.len(),
            trace.len() + 1,
            "chain must have one interpolant per trace position"
        );
        // The chain starts from the initial condition...
        let init = pool.and([program.init_formula(), program.pre()]);
        assert!(
            entails(pool, init, chain[0]),
            "first interpolant not implied by the initial condition"
        );
        // ...ends in a refutation of the error...
        assert_eq!(
            *chain.last().expect("nonempty"),
            TermPool::FALSE,
            "error-trace chain must end in false"
        );
        // ...and every consecutive triple is a valid Hoare triple.
        for (k, &l) in trace.iter().enumerate() {
            assert!(
                proof.hoare_triple_valid(pool, program, chain[k], l, chain[k + 1]),
                "non-inductive step {k}: {{{}}} {} {{{}}}",
                pool.display(chain[k]),
                program.statement(l).label(),
                pool.display(chain[k + 1]),
            );
        }
        validated += 1;
        for a in chain {
            proof.add_assertion(a);
        }
    }
    validated
}

#[test]
fn sequence_interpolants_are_inductive() {
    // A slice of the corpus that stays fast but needs several rounds.
    let names = [
        "bluetooth-1",
        "counter-safe-1",
        "dekker",
        "peterson",
        "count-up-down-1",
    ];
    for mode in [InterpolationMode::SpChain, InterpolationMode::Farkas] {
        let mut total = 0;
        for b in bench_suite::all()
            .into_iter()
            .filter(|b| names.contains(&b.name.as_str()))
        {
            let mut pool = TermPool::new();
            let p = b.compile(&mut pool);
            total += validate_chains(&mut pool, &p, mode);
        }
        assert!(
            total >= 3,
            "{mode:?}: expected at least 3 validated interpolant chains, got {total}"
        );
    }
}
