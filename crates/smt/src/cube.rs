//! Cubes (conjunctions of linear constraints), DNF sets of cubes, and
//! variable elimination.
//!
//! The strongest-postcondition interpolation engine represents the
//! assertion after each trace prefix as a DNF over program variables and
//! eliminates stale SSA versions as it goes. Elimination is *exact* when a
//! variable can be solved from an equality with a ±1 coefficient (the
//! overwhelmingly common case: every assignment produces such an equality)
//! or when Fourier–Motzkin only combines ±1 coefficients; otherwise the
//! result over-approximates over ℤ and is flagged, so callers can fall back
//! to a precise mode.

use crate::linear::{LinExpr, LinearConstraint, NormalizedConstraint, Rel, VarId};
use crate::resource::ResourceGovernor;
use crate::simplex::{check_rational, IncrementalSimplex, SimplexResult, TheoryResult};
use crate::term::{Term, TermId, TermPool};

/// A conjunction of linear constraints. The empty cube is `true`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Cube {
    /// Sorted, deduplicated constraints.
    constraints: Vec<LinearConstraint>,
}

/// Ordering key for deterministic cube normal forms.
fn constraint_key(c: &LinearConstraint) -> (Vec<(VarId, i128)>, i128, crate::linear::Rel) {
    (c.expr().terms().to_vec(), c.expr().constant_term(), c.rel())
}

impl Cube {
    /// The `true` cube.
    pub fn tautology() -> Cube {
        Cube {
            constraints: Vec::new(),
        }
    }

    /// Builds a cube from constraints; returns `None` if any is trivially
    /// false after normalization.
    pub fn from_constraints(cs: impl IntoIterator<Item = NormalizedConstraint>) -> Option<Cube> {
        let mut cube = Cube::tautology();
        for c in cs {
            if !cube.add(c) {
                return None;
            }
        }
        Some(cube)
    }

    /// Adds a normalized constraint; returns `false` if the cube became
    /// trivially false.
    pub fn add(&mut self, c: NormalizedConstraint) -> bool {
        match c {
            NormalizedConstraint::True => true,
            NormalizedConstraint::False => false,
            NormalizedConstraint::Constraint(c) => {
                match self
                    .constraints
                    .binary_search_by_key(&constraint_key(&c), constraint_key)
                {
                    Ok(_) => {}
                    Err(i) => self.constraints.insert(i, c),
                }
                true
            }
        }
    }

    /// The constraints of the cube.
    pub fn constraints(&self) -> &[LinearConstraint] {
        &self.constraints
    }

    /// `true` if the cube is the tautology.
    pub fn is_tautology(&self) -> bool {
        self.constraints.is_empty()
    }

    /// All variables mentioned.
    pub fn vars(&self) -> Vec<VarId> {
        let mut vs: Vec<VarId> = self
            .constraints
            .iter()
            .flat_map(|c| c.expr().vars())
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// `true` if `x` occurs in the cube.
    pub fn mentions(&self, x: VarId) -> bool {
        self.constraints.iter().any(|c| c.expr().mentions(x))
    }

    /// Rational consistency check (sound for pruning: rational-unsat ⇒
    /// integer-unsat).
    pub fn is_rationally_consistent(&self) -> bool {
        !matches!(check_rational(&self.constraints), SimplexResult::Unsat)
    }

    /// Conjunction of the two cubes, `None` if trivially false.
    pub fn meet(&self, other: &Cube) -> Option<Cube> {
        let mut out = self.clone();
        for c in &other.constraints {
            if !out.add(NormalizedConstraint::Constraint(c.clone())) {
                return None;
            }
        }
        Some(out)
    }

    /// Substitutes `x := e` in every constraint; `None` if trivially false.
    pub fn substitute(&self, x: VarId, e: &LinExpr) -> Option<Cube> {
        Cube::from_constraints(self.constraints.iter().map(|c| c.substitute(x, e)))
    }

    /// Eliminates `∃x` from the cube.
    ///
    /// Returns the projected cube and whether the projection is exact over
    /// the integers. A `None` cube means the projection is trivially false
    /// (possible via normalization of combined constraints).
    pub fn eliminate(&self, x: VarId) -> (Option<Cube>, bool) {
        if !self.mentions(x) {
            return (Some(self.clone()), true);
        }
        // Prefer an equality with a ±1 coefficient on x: exact substitution.
        if let Some(eq) = self
            .constraints
            .iter()
            .find(|c| c.rel() == Rel::Eq0 && c.expr().coeff(x).abs() == 1)
        {
            let coeff = eq.expr().coeff(x);
            // c·x + e = 0 ⇒ x = −e/c = −c·e (c = ±1).
            let rest = eq.expr().sub(&LinExpr::var(x).scale(coeff));
            let solution = rest.scale(-coeff);
            let others = self
                .constraints
                .iter()
                .filter(|c| *c != eq)
                .map(|c| c.substitute(x, &solution));
            return (Cube::from_constraints(others), true);
        }
        // Fourier–Motzkin. Equalities with non-unit coefficient split into
        // two inequalities first.
        let mut uppers: Vec<LinExpr> = Vec::new(); // a·x + e ≤ 0, a > 0
        let mut lowers: Vec<LinExpr> = Vec::new(); // a·x + e ≤ 0, a < 0
        let mut rest: Vec<NormalizedConstraint> = Vec::new();
        let mut exact = true;
        for c in &self.constraints {
            let a = c.expr().coeff(x);
            if a == 0 {
                rest.push(NormalizedConstraint::Constraint(c.clone()));
                continue;
            }
            if a.abs() != 1 {
                exact = false;
            }
            match c.rel() {
                Rel::Le0 => {
                    if a > 0 {
                        uppers.push(c.expr().clone());
                    } else {
                        lowers.push(c.expr().clone());
                    }
                }
                Rel::Eq0 => {
                    // Split into e ≤ 0 and −e ≤ 0, sorted by the sign of
                    // x's coefficient in each half.
                    if a > 0 {
                        uppers.push(c.expr().clone());
                        lowers.push(c.expr().scale(-1));
                    } else {
                        uppers.push(c.expr().scale(-1));
                        lowers.push(c.expr().clone());
                    }
                }
            }
        }
        // One-sided occurrences eliminate exactly (choose x far enough).
        if uppers.is_empty() || lowers.is_empty() {
            return (Cube::from_constraints(rest), true);
        }
        for u in &uppers {
            let a = u.coeff(x);
            debug_assert!(a > 0);
            for l in &lowers {
                let b = -l.coeff(x);
                debug_assert!(b > 0);
                // a·x + e ≤ 0 and −b·x + f ≤ 0 combine to b·e + a·f ≤ 0.
                let combined = u
                    .sub(&LinExpr::var(x).scale(a))
                    .scale(b)
                    .add(&l.add(&LinExpr::var(x).scale(b)).scale(a));
                rest.push(LinearConstraint::new(combined, Rel::Le0));
            }
        }
        (Cube::from_constraints(rest), exact)
    }

    /// Renders the cube as a term of `pool`.
    pub fn to_term(&self, pool: &mut TermPool) -> TermId {
        let atoms: Vec<TermId> = self
            .constraints
            .iter()
            .map(|c| pool.atom(c.expr().clone(), c.rel()))
            .collect();
        pool.and(atoms)
    }

    /// Syntactic implication: `self ⇒ other` if every constraint of `other`
    /// appears in `self`.
    pub fn syntactically_implies(&self, other: &Cube) -> bool {
        other.constraints.iter().all(|c| {
            self.constraints
                .binary_search_by_key(&constraint_key(c), constraint_key)
                .is_ok()
        })
    }
}

/// A disjunction of cubes with an exactness flag, representing a formula in
/// DNF. The empty DNF is `false`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dnf {
    cubes: Vec<Cube>,
    exact: bool,
}

/// Maximum number of cubes kept before over-approximating (see
/// `Dnf::compress`).
pub const MAX_CUBES: usize = 128;

impl Dnf {
    /// The `false` DNF.
    pub fn bottom() -> Dnf {
        Dnf {
            cubes: Vec::new(),
            exact: true,
        }
    }

    /// The `true` DNF.
    pub fn top() -> Dnf {
        Dnf {
            cubes: vec![Cube::tautology()],
            exact: true,
        }
    }

    /// A single-cube DNF.
    pub fn from_cube(cube: Cube) -> Dnf {
        Dnf {
            cubes: vec![cube],
            exact: true,
        }
    }

    /// Converts an arbitrary (negation-free) term of `pool` into DNF.
    pub fn from_term(pool: &TermPool, t: TermId) -> Dnf {
        let mut dnf = match pool.term(t) {
            Term::True => Dnf::top(),
            Term::False => Dnf::bottom(),
            Term::Atom(c) => {
                let mut cube = Cube::tautology();
                let ok = cube.add(NormalizedConstraint::Constraint(c.clone()));
                debug_assert!(ok);
                Dnf::from_cube(cube)
            }
            Term::Or(children) => {
                let mut out = Dnf::bottom();
                for &c in children.iter() {
                    out = out.or(Dnf::from_term(pool, c));
                }
                out
            }
            Term::And(children) => {
                let mut out = Dnf::top();
                for &c in children.iter() {
                    out = out.and(&Dnf::from_term(pool, c));
                }
                out
            }
        };
        dnf.compress();
        dnf
    }

    /// The cubes.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// `true` if no over-approximation has occurred.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// `true` if the DNF is syntactically `false`.
    pub fn is_bottom(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Disjunction.
    pub fn or(mut self, other: Dnf) -> Dnf {
        self.cubes.extend(other.cubes);
        self.exact &= other.exact;
        self.subsume();
        self
    }

    /// Conjunction (cross product of cubes, dropping inconsistent ones).
    pub fn and(&self, other: &Dnf) -> Dnf {
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(m) = a.meet(b) {
                    cubes.push(m);
                }
            }
        }
        let mut out = Dnf {
            cubes,
            exact: self.exact && other.exact,
        };
        out.subsume();
        out.compress();
        out
    }

    /// Eliminates `∃x` cube-wise.
    pub fn eliminate(&self, x: VarId) -> Dnf {
        let mut cubes = Vec::new();
        let mut exact = self.exact;
        for c in &self.cubes {
            let (projected, e) = c.eliminate(x);
            exact &= e;
            if let Some(p) = projected {
                cubes.push(p);
            }
        }
        let mut out = Dnf { cubes, exact };
        out.subsume();
        out
    }

    /// Removes rationally inconsistent cubes (exact).
    ///
    /// A single incremental simplex is shared across all cubes: each cube
    /// is asserted inside a mark/undo bracket, so slack rows for atoms
    /// that recur across cubes (the common case after a cross-product
    /// `and`) are created once and only their bounds churn. Overflow
    /// (`Unknown`) keeps the cube — pruning is only ever an optimization.
    pub fn prune_inconsistent(&mut self) {
        let gov = ResourceGovernor::unlimited();
        let mut simplex = IncrementalSimplex::new();
        self.cubes.retain(|cube| {
            let mark = simplex.mark();
            let mut verdict = None;
            for (i, c) in cube.constraints().iter().enumerate() {
                match simplex.assert_constraint(c, i as u32) {
                    TheoryResult::Conflict(_) => {
                        verdict = Some(false);
                        break;
                    }
                    TheoryResult::Unknown => {
                        verdict = Some(true);
                        break;
                    }
                    TheoryResult::Ok => {}
                }
            }
            let keep = verdict
                .unwrap_or_else(|| !matches!(simplex.check(&gov), TheoryResult::Conflict(_)));
            simplex.undo_to(mark);
            keep
        });
    }

    /// Drops cubes syntactically implied by another cube (exact).
    fn subsume(&mut self) {
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::new();
        for c in cubes {
            if kept.iter().any(|k| c.syntactically_implies(k) && &c != k) || kept.contains(&c) {
                continue;
            }
            kept.retain(|k| !(k.syntactically_implies(&c) && *k != c));
            kept.push(c);
        }
        self.cubes = kept;
    }

    /// If more than [`MAX_CUBES`] cubes accumulated, over-approximates by
    /// merging the surplus into the common constraints of all cubes.
    fn compress(&mut self) {
        if self.cubes.len() <= MAX_CUBES {
            return;
        }
        // Over-approximate: intersect the constraint sets of all cubes.
        let first = self.cubes[0].clone();
        let common: Vec<LinearConstraint> = first
            .constraints()
            .iter()
            .filter(|c| {
                self.cubes[1..]
                    .iter()
                    .all(|cube| cube.constraints().contains(c))
            })
            .cloned()
            .collect();
        let merged =
            Cube::from_constraints(common.into_iter().map(NormalizedConstraint::Constraint))
                .expect("constraints from existing cubes are not trivially false");
        self.cubes = vec![merged];
        self.exact = false;
    }

    /// Renders the DNF as a term.
    pub fn to_term(&self, pool: &mut TermPool) -> TermId {
        let disjuncts: Vec<TermId> = self.cubes.iter().map(|c| c.to_term(pool)).collect();
        pool.or(disjuncts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::equivalent;

    fn pool_xy() -> (TermPool, VarId, VarId) {
        let mut p = TermPool::new();
        let x = p.var("x");
        let y = p.var("y");
        (p, x, y)
    }

    #[test]
    fn dnf_round_trip_preserves_semantics() {
        let (mut p, x, y) = pool_xy();
        let a = p.le_const(x, 3);
        let b = p.ge_const(y, 1);
        let c = p.eq_const(x, 7);
        let ab = p.and([a, b]);
        let f = p.or([ab, c]);
        let dnf = Dnf::from_term(&p, f);
        assert!(dnf.is_exact());
        assert_eq!(dnf.cubes().len(), 2);
        let back = dnf.to_term(&mut p);
        assert!(equivalent(&mut p, f, back));
    }

    #[test]
    fn elimination_by_substitution_is_exact() {
        let (mut p, x, y) = pool_xy();
        // x = y + 1 ∧ x ≥ 3  →  ∃x ...  ⇔ y ≥ 2.
        let lhs = LinExpr::var(x);
        let rhs = LinExpr::var(y).add(&LinExpr::constant(1));
        let eq = p.eq(&lhs, &rhs);
        let ge = p.ge_const(x, 3);
        let f = p.and([eq, ge]);
        let dnf = Dnf::from_term(&p, f).eliminate(x);
        assert!(dnf.is_exact());
        let t = dnf.to_term(&mut p);
        let expected = p.ge_const(y, 2);
        assert!(equivalent(&mut p, t, expected));
    }

    #[test]
    fn fm_elimination_with_unit_coeffs_is_exact() {
        let (mut p, x, y) = pool_xy();
        // y ≤ x ∧ x ≤ 5  →  ∃x ⇔ y ≤ 5.
        let a = p.le(&LinExpr::var(y), &LinExpr::var(x));
        let b = p.le_const(x, 5);
        let f = p.and([a, b]);
        let dnf = Dnf::from_term(&p, f).eliminate(x);
        assert!(dnf.is_exact());
        let t = dnf.to_term(&mut p);
        let expected = p.le_const(y, 5);
        assert!(equivalent(&mut p, t, expected));
    }

    #[test]
    fn fm_elimination_with_big_coeffs_is_flagged() {
        let (mut p, x, y) = pool_xy();
        // 2x ≥ y ∧ 2x ≤ y: ∃x over ℤ requires y even; FM yields y ≤ y (true),
        // an over-approximation, which must be flagged inexact.
        let a = p.le(&LinExpr::var(y), &LinExpr::var(x).scale(2));
        let b = p.le(&LinExpr::var(x).scale(2), &LinExpr::var(y));
        let f = p.and([a, b]);
        let dnf = Dnf::from_term(&p, f).eliminate(x);
        assert!(!dnf.is_exact());
    }

    #[test]
    fn one_sided_elimination_is_exact() {
        let (p, x, y) = {
            let (p, x, y) = pool_xy();
            (p, x, y)
        };
        let mut p = p;
        // x ≥ y (no upper bound on x): ∃x ⇔ true.
        let a = p.ge(&LinExpr::var(x), &LinExpr::var(y));
        let dnf = Dnf::from_term(&p, a).eliminate(x);
        assert!(dnf.is_exact());
        let t = dnf.to_term(&mut p);
        assert_eq!(t, TermPool::TRUE);
    }

    #[test]
    fn inconsistent_cube_pruning() {
        let (mut p, x, _) = pool_xy();
        let a = p.ge_const(x, 5);
        let b = p.le_const(x, 1);
        let c = p.eq_const(x, 0);
        let bad = p.and([a, b]);
        let f = p.or([bad, c]);
        let mut dnf = Dnf::from_term(&p, f);
        assert_eq!(dnf.cubes().len(), 2);
        dnf.prune_inconsistent();
        assert_eq!(dnf.cubes().len(), 1);
    }

    #[test]
    fn subsumption_drops_stronger_cube() {
        let (mut p, x, _) = pool_xy();
        let a = p.ge_const(x, 0);
        let b = p.le_const(x, 5);
        let weak = a;
        let strong = p.and([a, b]);
        let f = p.or([weak, strong]);
        // The Or constructor doesn't subsume; DNF does.
        let dnf = Dnf::from_term(&p, f);
        assert_eq!(dnf.cubes().len(), 1);
        assert!(dnf.cubes()[0].is_tautology() || dnf.cubes()[0].constraints().len() == 1);
    }

    #[test]
    fn meet_detects_contradiction_via_normalization() {
        let (mut p, x, _) = pool_xy();
        let a = p.eq_const(x, 1);
        let b = p.eq_const(x, 2);
        let da = Dnf::from_term(&p, a);
        let db = Dnf::from_term(&p, b);
        let mut both = da.and(&db);
        // The contradictory cube survives syntactically but dies rationally.
        both.prune_inconsistent();
        assert!(both.is_bottom());
    }

    #[test]
    fn eliminate_unmentioned_var_is_identity() {
        let (mut p, x, y) = pool_xy();
        let a = p.ge_const(x, 1);
        let dnf = Dnf::from_term(&p, a);
        let e = dnf.eliminate(y);
        assert_eq!(dnf, e);
        let t = e.to_term(&mut p);
        assert!(equivalent(&mut p, t, a));
    }
}
