//! A resumable, single-round verification engine.
//!
//! [`Engine`] packages the per-order state of the refinement loop (the
//! preference order, commutativity oracle, persistent sets and the §7.2
//! useless-state cache) and exposes one refinement round at a time. The
//! plain loop ([`crate::verify::verify`]) drives a single engine to completion;
//! the **shared-proof adaptive portfolio**
//! ([`crate::portfolio::adaptive_verify`]) interleaves rounds of several
//! engines over a *common* [`ProofAutomaton`] — assertions discovered
//! under one preference order are program facts and immediately benefit
//! every other order. This realizes the direction sketched in the paper's
//! §8 Limitations ("dynamically adjust a choice of a preference order
//! based on partial verification efforts").

use crate::check::{check_proof, CheckConfig, CheckResult, CheckStats, UselessCache};
use crate::interpolate::{
    analyze_trace_with_mode, InterpolationMode, InterpolationStats, TraceResult,
};
use crate::proof::ProofAutomaton;
use crate::verify::VerifierConfig;
use program::commutativity::CommutativityOracle;
use program::concurrent::{LetterId, Program, Spec};
use reduction::order::PreferenceOrder;
use reduction::persistent::PersistentSets;
use smt::term::TermPool;

/// Outcome of a single refinement round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoundOutcome {
    /// The proof covers this engine's reduction: the program is correct.
    Proven,
    /// A feasible violating trace.
    Bug(Vec<LetterId>),
    /// The counterexample was refuted; new assertions were added.
    Refined,
    /// This engine cannot continue (budget, solver incompleteness, …).
    GaveUp(String),
}

/// Cumulative per-engine counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Visited proof-check states, cumulative.
    pub visited: usize,
    /// Largest single-round visited count.
    pub max_round_visited: usize,
    /// Useless-cache skips.
    pub cache_skips: usize,
    /// Interpolation counters.
    pub interpolation: InterpolationStats,
}

/// Per-preference-order verification state, advanced one round at a time
/// against a (possibly shared) proof automaton.
pub struct Engine {
    /// Display name (the configuration's).
    pub name: String,
    /// Counters.
    pub stats: EngineStats,
    spec: Spec,
    order: Box<dyn PreferenceOrder>,
    oracle: CommutativityOracle,
    persistent: Option<PersistentSets>,
    useless: UselessCache,
    check_config: CheckConfig,
    interpolation: InterpolationMode,
    last_trace: Option<Vec<LetterId>>,
}

impl Engine {
    /// Creates an engine for `spec` under `config`.
    pub fn new(
        pool: &mut TermPool,
        program: &Program,
        spec: Spec,
        config: &VerifierConfig,
    ) -> Engine {
        let mut oracle = CommutativityOracle::new(config.commutativity);
        let persistent = config
            .use_persistent
            .then(|| PersistentSets::new(pool, program, &mut oracle));
        Engine {
            name: config.name.clone(),
            stats: EngineStats::default(),
            spec,
            order: config.order.build(),
            oracle,
            persistent,
            useless: UselessCache::new(),
            check_config: CheckConfig {
                use_sleep: config.use_sleep,
                use_persistent: config.use_persistent,
                proof_sensitive: config.proof_sensitive,
                max_visited: config.max_visited_per_round,
            },
            interpolation: config.interpolation,
            last_trace: None,
        }
    }

    /// The specification this engine checks.
    pub fn spec(&self) -> Spec {
        self.spec
    }

    /// Runs one proof-check round against `proof` and, on an uncovered
    /// trace, refines `proof` (or reports the bug).
    pub fn round(
        &mut self,
        pool: &mut TermPool,
        program: &Program,
        proof: &mut ProofAutomaton,
    ) -> RoundOutcome {
        self.stats.rounds += 1;
        let mut round_stats = CheckStats::default();
        let result = check_proof(
            pool,
            program,
            self.spec,
            self.order.as_ref(),
            &mut self.oracle,
            self.persistent.as_ref(),
            proof,
            &mut self.useless,
            &self.check_config,
            &mut round_stats,
        );
        self.stats.visited += round_stats.visited;
        self.stats.max_round_visited = self.stats.max_round_visited.max(round_stats.visited);
        self.stats.cache_skips += round_stats.cache_skips;
        match result {
            CheckResult::Proven => RoundOutcome::Proven,
            CheckResult::LimitReached => {
                RoundOutcome::GaveUp("state budget exhausted".to_owned())
            }
            CheckResult::Counterexample(trace) => {
                if self.last_trace.as_ref() == Some(&trace) {
                    return RoundOutcome::GaveUp("refinement made no progress".to_owned());
                }
                let analysis = analyze_trace_with_mode(
                    pool,
                    program,
                    &trace,
                    self.spec,
                    self.interpolation,
                    &mut self.stats.interpolation,
                );
                match analysis {
                    TraceResult::Feasible => RoundOutcome::Bug(trace),
                    TraceResult::Unknown => {
                        RoundOutcome::GaveUp("trace feasibility undecided".to_owned())
                    }
                    TraceResult::Infeasible { chain } => {
                        for a in chain {
                            proof.add_assertion(a);
                        }
                        self.last_trace = Some(trace);
                        RoundOutcome::Refined
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::bitset::BitSet;
    use automata::dfa::DfaBuilder;
    use program::stmt::{SimpleStmt, Statement};
    use program::thread::{Thread, ThreadId};
    use smt::linear::LinExpr;

    /// x := x + 1; [assume x > bound → error].
    fn counter(pool: &mut TermPool, bound: i128) -> Program {
        let mut b = Program::builder("c");
        let x = pool.var("x");
        b.add_global(x, 0);
        let incr = b.add_statement(Statement::simple(
            ThreadId(0),
            "x := x + 1",
            SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
            pool,
        ));
        let le = pool.le_const(x, bound);
        let gt = pool.not(le);
        let bad = b.add_statement(Statement::simple(
            ThreadId(0),
            "assume x > bound",
            SimpleStmt::Assume(gt),
            pool,
        ));
        let mut cfg = DfaBuilder::new();
        let q0 = cfg.add_state(false);
        let q1 = cfg.add_state(false);
        let err = cfg.add_state(false);
        cfg.add_transition(q0, incr, q1);
        cfg.add_transition(q1, bad, err);
        let mut errors = BitSet::new(3);
        errors.insert(err.index());
        b.add_thread(Thread::new("t", cfg.build(q0), errors));
        b.build(pool)
    }

    #[test]
    fn engine_steps_to_proven() {
        let mut pool = TermPool::new();
        let p = counter(&mut pool, 5);
        let config = VerifierConfig::gemcutter_seq();
        let mut engine = Engine::new(&mut pool, &p, Spec::ErrorOf(ThreadId(0)), &config);
        let mut proof = ProofAutomaton::new();
        // Round 1: empty proof → counterexample → refined.
        assert_eq!(engine.round(&mut pool, &p, &mut proof), RoundOutcome::Refined);
        assert!(proof.proof_size() > 0);
        // Eventually proven.
        let mut outcome = RoundOutcome::Refined;
        for _ in 0..10 {
            outcome = engine.round(&mut pool, &p, &mut proof);
            if outcome != RoundOutcome::Refined {
                break;
            }
        }
        assert_eq!(outcome, RoundOutcome::Proven);
        assert!(engine.stats.rounds >= 2);
    }

    #[test]
    fn engine_finds_bug() {
        let mut pool = TermPool::new();
        let p = counter(&mut pool, 0); // x = 1 > 0 after one increment
        let config = VerifierConfig::gemcutter_seq();
        let mut engine = Engine::new(&mut pool, &p, Spec::ErrorOf(ThreadId(0)), &config);
        let mut proof = ProofAutomaton::new();
        let mut outcome = RoundOutcome::Refined;
        for _ in 0..10 {
            outcome = engine.round(&mut pool, &p, &mut proof);
            if outcome != RoundOutcome::Refined {
                break;
            }
        }
        let RoundOutcome::Bug(trace) = outcome else {
            panic!("{outcome:?}");
        };
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn assertions_from_one_engine_help_another() {
        // Engine A (seq) refines once; engine B (lockstep) then proves in
        // fewer rounds than it would alone, because the shared proof
        // already contains A's assertions.
        let mut pool = TermPool::new();
        let p = counter(&mut pool, 5);
        let spec = Spec::ErrorOf(ThreadId(0));
        let mut a = Engine::new(&mut pool, &p, spec, &VerifierConfig::gemcutter_seq());
        let mut b = Engine::new(&mut pool, &p, spec, &VerifierConfig::gemcutter_lockstep());
        let mut shared = ProofAutomaton::new();
        // Let A do all the refining.
        loop {
            match a.round(&mut pool, &p, &mut shared) {
                RoundOutcome::Refined => continue,
                RoundOutcome::Proven => break,
                other => panic!("{other:?}"),
            }
        }
        // B proves immediately with the shared proof.
        assert_eq!(b.round(&mut pool, &p, &mut shared), RoundOutcome::Proven);
        assert_eq!(b.stats.rounds, 1);
    }
}
