//! Property battery for sound degradation under deterministic fault
//! injection: whatever fault plan is active,
//!
//! * a buggy program is never reported `Correct`;
//! * a correct program is only ever `Correct` or `GaveUp` (a fault can
//!   cost completeness, never soundness);
//! * replaying the same plan on the same program gives a bit-identical
//!   verdict (injection is indexed by call count, not by time or RNG).

use proptest::prelude::*;
use seqver::automata::bitset::BitSet;
use seqver::automata::dfa::DfaBuilder;
use seqver::gemcutter::govern::{Category, FaultKind, FaultPlan, GovernorConfig};
use seqver::gemcutter::verify::{verify, Verdict, VerifierConfig};
use seqver::program::concurrent::Program;
use seqver::program::stmt::{SimpleStmt, Statement};
use seqver::program::thread::{Thread, ThreadId};
use seqver::smt::linear::LinExpr;
use seqver::smt::TermPool;

/// Two threads of `steps` increments plus a checker asserting the total
/// is at most `bound`: safe iff `bound >= 2 * steps`.
fn inc_program(pool: &mut TermPool, steps: usize, bound: i128) -> Program {
    let mut b = Program::builder("inc");
    let c = pool.var("c");
    let done = pool.var("done");
    b.add_global(c, 0);
    b.add_global(done, 0);
    for t in 0..2u32 {
        let mut cfg = DfaBuilder::new();
        let mut prev = cfg.add_state(false);
        let entry = prev;
        for s in 0..steps {
            let last = s + 1 == steps;
            let mut path = vec![SimpleStmt::Assign(
                c,
                LinExpr::var(c).add(&LinExpr::constant(1)),
            )];
            if last {
                path.push(SimpleStmt::Assign(
                    done,
                    LinExpr::var(done).add(&LinExpr::constant(1)),
                ));
            }
            let l = b.add_statement(Statement::atomic(ThreadId(t), "inc", vec![path], pool));
            let next = cfg.add_state(last);
            cfg.add_transition(prev, l, next);
            prev = next;
        }
        b.add_thread(Thread::new("inc", cfg.build(entry), BitSet::new(steps + 1)));
    }
    let all_done = pool.ge_const(done, 2);
    let ok_guard = pool.le_const(c, bound);
    let bad_guard = pool.not(ok_guard);
    let wait = b.add_statement(Statement::simple(
        ThreadId(2),
        "await",
        SimpleStmt::Assume(all_done),
        pool,
    ));
    let ok = b.add_statement(Statement::simple(
        ThreadId(2),
        "ok",
        SimpleStmt::Assume(ok_guard),
        pool,
    ));
    let bad = b.add_statement(Statement::simple(
        ThreadId(2),
        "bad",
        SimpleStmt::Assume(bad_guard),
        pool,
    ));
    let mut cfg = DfaBuilder::new();
    let q0 = cfg.add_state(false);
    let q1 = cfg.add_state(false);
    let exit = cfg.add_state(true);
    let err = cfg.add_state(false);
    cfg.add_transition(q0, wait, q1);
    cfg.add_transition(q1, ok, exit);
    cfg.add_transition(q1, bad, err);
    let mut errors = BitSet::new(4);
    errors.insert(err.index());
    b.add_thread(Thread::new("checker", cfg.build(q0), errors));
    b.build(pool)
}

/// A random fault plan over the four step categories, with sites early
/// enough (small `at`) that they usually fire on these small programs.
fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec((0u8..4, 1u64..40, 0u8..3), 1..=3).prop_map(|sites| {
        let mut plan = FaultPlan::new();
        for (cat, at, kind) in sites {
            let category = match cat {
                0 => Category::SimplexPivots,
                1 => Category::DpllDecisions,
                2 => Category::BranchNodes,
                _ => Category::DfsStates,
            };
            let kind = match kind {
                0 => FaultKind::Unknown,
                1 => FaultKind::Timeout,
                _ => FaultKind::Panic,
            };
            plan = plan.with(category, at, kind);
        }
        plan
    })
}

fn run_with_plan(steps: usize, bound: i128, plan: &FaultPlan) -> Verdict {
    let mut pool = TermPool::new();
    let p = inc_program(&mut pool, steps, bound);
    let config = VerifierConfig {
        govern: GovernorConfig {
            fault_plan: plan.clone(),
            ..GovernorConfig::default()
        },
        ..VerifierConfig::gemcutter_seq()
    };
    verify(&mut pool, &p, &config).verdict
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn buggy_programs_are_never_correct_under_faults(
        plan in fault_plan(),
        steps in 1usize..3,
    ) {
        // bound = 2*steps - 1: one increment too tight, always buggy.
        let verdict = run_with_plan(steps, 2 * steps as i128 - 1, &plan);
        prop_assert!(
            !verdict.is_correct(),
            "fault plan `{}` flipped a buggy program to Correct",
            plan.spec()
        );
    }

    #[test]
    fn safe_programs_are_correct_or_gave_up_under_faults(
        plan in fault_plan(),
        steps in 1usize..3,
    ) {
        let verdict = run_with_plan(steps, 2 * steps as i128, &plan);
        prop_assert!(
            matches!(verdict, Verdict::Correct | Verdict::GaveUp(_)),
            "fault plan `{}` produced {verdict:?} on a safe program",
            plan.spec()
        );
    }

    #[test]
    fn fault_plans_replay_bit_for_bit(
        plan in fault_plan(),
        steps in 1usize..3,
        safe_flag in 0u8..2,
    ) {
        let safe = safe_flag == 1;
        let bound = if safe { 2 * steps as i128 } else { 2 * steps as i128 - 1 };
        let first = format!("{:?}", run_with_plan(steps, bound, &plan));
        let second = format!("{:?}", run_with_plan(steps, bound, &plan));
        prop_assert_eq!(
            &first, &second,
            "fault plan `{}` did not replay deterministically", plan.spec()
        );
    }
}
