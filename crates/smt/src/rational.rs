//! Exact rational arithmetic on `i128` numerators/denominators.
//!
//! The simplex core works over ℚ; benchmark formulas have tiny coefficients,
//! so reduced `i128` fractions suffice. All operations are checked: an
//! overflow surfaces as [`ArithmeticOverflow`] and is translated by the
//! solver into an *unknown* verdict rather than a wrong one.

use std::cmp::Ordering;
use std::fmt;

/// Error returned when a rational operation overflows `i128`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArithmeticOverflow;

impl fmt::Display for ArithmeticOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rational arithmetic overflowed i128")
    }
}

impl std::error::Error for ArithmeticOverflow {}

/// A rational number in reduced form with a positive denominator.
///
/// # Example
///
/// ```
/// use smt::rational::Rat;
///
/// let a = Rat::new(1, 2).unwrap();
/// let b = Rat::new(1, 3).unwrap();
/// assert_eq!(a.add(b).unwrap(), Rat::new(5, 6).unwrap());
/// assert!(a > b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128, // invariant: den > 0, gcd(num, den) == 1
}

/// Greatest common divisor of the absolute values (`gcd(0, 0) == 0`).
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a as i128
}

#[allow(clippy::should_implement_trait)] // checked (fallible) arithmetic is the point of this API
impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates the rational `num / den` in reduced form.
    ///
    /// # Errors
    ///
    /// Returns [`ArithmeticOverflow`] if `den == 0` or normalization
    /// overflows (`den == i128::MIN`).
    pub fn new(num: i128, den: i128) -> Result<Rat, ArithmeticOverflow> {
        if den == 0 {
            return Err(ArithmeticOverflow);
        }
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = num.checked_neg().ok_or(ArithmeticOverflow)?;
            den = den.checked_neg().ok_or(ArithmeticOverflow)?;
        }
        Ok(Rat { num, den })
    }

    /// The integer `n` as a rational.
    pub fn from_int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (reduced form).
    pub fn numerator(self) -> i128 {
        self.num
    }

    /// Denominator (reduced form, always positive).
    pub fn denominator(self) -> i128 {
        self.den
    }

    /// `true` if the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// `true` if the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Sign: -1, 0 or 1.
    pub fn signum(self) -> i128 {
        self.num.signum()
    }

    /// The value as an integer, if it is one.
    pub fn to_integer(self) -> Option<i128> {
        (self.den == 1).then_some(self.num)
    }

    /// Largest integer `≤ self`.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `≥ self`.
    pub fn ceil(self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Returns [`ArithmeticOverflow`] on `i128` overflow.
    pub fn add(self, other: Rat) -> Result<Rat, ArithmeticOverflow> {
        let num = self
            .num
            .checked_mul(other.den)
            .and_then(|a| {
                other
                    .num
                    .checked_mul(self.den)
                    .and_then(|b| a.checked_add(b))
            })
            .ok_or(ArithmeticOverflow)?;
        let den = self.den.checked_mul(other.den).ok_or(ArithmeticOverflow)?;
        Rat::new(num, den)
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`ArithmeticOverflow`] on `i128` overflow.
    pub fn sub(self, other: Rat) -> Result<Rat, ArithmeticOverflow> {
        self.add(other.neg()?)
    }

    /// Checked multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`ArithmeticOverflow`] on `i128` overflow.
    pub fn mul(self, other: Rat) -> Result<Rat, ArithmeticOverflow> {
        // Cross-reduce first to keep numbers small.
        let g1 = gcd(self.num, other.den).max(1);
        let g2 = gcd(other.num, self.den).max(1);
        let num = (self.num / g1)
            .checked_mul(other.num / g2)
            .ok_or(ArithmeticOverflow)?;
        let den = (self.den / g2)
            .checked_mul(other.den / g1)
            .ok_or(ArithmeticOverflow)?;
        Rat::new(num, den)
    }

    /// Checked division.
    ///
    /// # Errors
    ///
    /// Returns [`ArithmeticOverflow`] if `other` is zero or on overflow.
    pub fn div(self, other: Rat) -> Result<Rat, ArithmeticOverflow> {
        if other.is_zero() {
            return Err(ArithmeticOverflow);
        }
        self.mul(Rat {
            num: other.den * other.num.signum(),
            den: other.num.abs(),
        })
    }

    /// Checked negation.
    ///
    /// # Errors
    ///
    /// Returns [`ArithmeticOverflow`] if the numerator is `i128::MIN`.
    pub fn neg(self) -> Result<Rat, ArithmeticOverflow> {
        Ok(Rat {
            num: self.num.checked_neg().ok_or(ArithmeticOverflow)?,
            den: self.den,
        })
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // den > 0 on both sides. Compare via i128 widening: values are
        // reduced, so products fit unless inputs are astronomically large;
        // fall back to f64 comparison would be unsound, so saturate instead.
        match self.num.checked_mul(other.den) {
            Some(l) => match other.num.checked_mul(self.den) {
                Some(r) => l.cmp(&r),
                None => {
                    // other side overflowed: its magnitude dominates.
                    if other.num > 0 {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    }
                }
            },
            None => {
                if self.num > 0 {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::from_int(n as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_sign() {
        assert_eq!(Rat::new(2, 4).unwrap(), Rat::new(1, 2).unwrap());
        assert_eq!(Rat::new(-2, -4).unwrap(), Rat::new(1, 2).unwrap());
        assert_eq!(Rat::new(2, -4).unwrap(), Rat::new(-1, 2).unwrap());
        assert_eq!(Rat::new(0, -7).unwrap(), Rat::ZERO);
        assert!(Rat::new(1, 0).is_err());
    }

    #[test]
    fn arithmetic() {
        let half = Rat::new(1, 2).unwrap();
        let third = Rat::new(1, 3).unwrap();
        assert_eq!(half.add(third).unwrap(), Rat::new(5, 6).unwrap());
        assert_eq!(half.sub(third).unwrap(), Rat::new(1, 6).unwrap());
        assert_eq!(half.mul(third).unwrap(), Rat::new(1, 6).unwrap());
        assert_eq!(half.div(third).unwrap(), Rat::new(3, 2).unwrap());
        assert!(half.div(Rat::ZERO).is_err());
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).unwrap().floor(), 3);
        assert_eq!(Rat::new(7, 2).unwrap().ceil(), 4);
        assert_eq!(Rat::new(-7, 2).unwrap().floor(), -4);
        assert_eq!(Rat::new(-7, 2).unwrap().ceil(), -3);
        assert_eq!(Rat::from_int(5).floor(), 5);
        assert_eq!(Rat::from_int(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        let vals = [
            Rat::new(-3, 2).unwrap(),
            Rat::new(-1, 3).unwrap(),
            Rat::ZERO,
            Rat::new(1, 3).unwrap(),
            Rat::new(1, 2).unwrap(),
            Rat::ONE,
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{:?} < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn overflow_is_reported() {
        let big = Rat::from_int(i128::MAX);
        assert_eq!(big.mul(Rat::from_int(2)), Err(ArithmeticOverflow));
        assert_eq!(big.add(Rat::ONE), Err(ArithmeticOverflow));
    }

    #[test]
    fn integer_queries() {
        assert!(Rat::from_int(4).is_integer());
        assert_eq!(Rat::from_int(4).to_integer(), Some(4));
        assert!(!Rat::new(1, 2).unwrap().is_integer());
        assert_eq!(Rat::new(1, 2).unwrap().to_integer(), None);
    }

    #[test]
    fn gcd_edge_cases() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(-4, 6), 2);
        assert_eq!(gcd(i128::MIN + 1, 1), 1);
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 1).unwrap().to_string(), "3");
        assert_eq!(Rat::new(-3, 6).unwrap().to_string(), "-1/2");
    }
}
