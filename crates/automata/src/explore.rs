//! Bounded language exploration: word enumeration, shortest accepted word,
//! and bounded language equality.
//!
//! The reduction soundness/minimality property tests (§4 of the paper)
//! compare *languages up to a length bound*; these helpers implement that
//! comparison without constructing product automata.

use crate::dfa::{Dfa, StateId};
use std::collections::{HashSet, VecDeque};
use std::hash::Hash;

/// All words over `alphabet` of length at most `max_len`, in length-then-lex
/// order. Intended for small alphabets/bounds in tests.
///
/// # Example
///
/// ```
/// use automata::explore::enumerate_words;
/// let words = enumerate_words(&['a', 'b'], 2);
/// assert_eq!(words.len(), 1 + 2 + 4);
/// ```
pub fn enumerate_words<L: Copy>(alphabet: &[L], max_len: usize) -> Vec<Vec<L>> {
    let mut out: Vec<Vec<L>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<L>> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::with_capacity(frontier.len() * alphabet.len());
        for w in &frontier {
            for &l in alphabet {
                let mut v = w.clone();
                v.push(l);
                next.push(v);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

/// All words accepted by `dfa` with length at most `max_len`, via BFS over
/// runs (only reachable prefixes are expanded).
pub fn accepted_words<L: Copy + Eq + Ord + Hash>(dfa: &Dfa<L>, max_len: usize) -> Vec<Vec<L>> {
    let mut out = Vec::new();
    let mut queue: VecDeque<(StateId, Vec<L>)> = VecDeque::new();
    queue.push_back((dfa.initial(), Vec::new()));
    while let Some((q, w)) = queue.pop_front() {
        if dfa.is_accepting(q) {
            out.push(w.clone());
        }
        if w.len() == max_len {
            continue;
        }
        for (l, t) in dfa.edges(q) {
            let mut v = w.clone();
            v.push(l);
            queue.push_back((t, v));
        }
    }
    out
}

/// A shortest accepted word, or `None` if the language is empty.
///
/// Breadth-first, so the result is length-minimal; among equal-length
/// words, the lexicographically smallest (by letter order) is returned
/// because edges are explored in letter order.
pub fn shortest_accepted_word<L: Copy + Eq + Ord + Hash>(dfa: &Dfa<L>) -> Option<Vec<L>> {
    let mut visited: HashSet<StateId> = HashSet::new();
    let mut queue: VecDeque<(StateId, Vec<L>)> = VecDeque::new();
    visited.insert(dfa.initial());
    queue.push_back((dfa.initial(), Vec::new()));
    while let Some((q, w)) = queue.pop_front() {
        if dfa.is_accepting(q) {
            return Some(w);
        }
        for (l, t) in dfa.edges(q) {
            if visited.insert(t) {
                let mut v = w.clone();
                v.push(l);
                queue.push_back((t, v));
            }
        }
    }
    None
}

/// `true` iff the two automata accept exactly the same words of length at
/// most `max_len`.
pub fn bounded_equal<L: Copy + Eq + Ord + Hash>(a: &Dfa<L>, b: &Dfa<L>, max_len: usize) -> bool {
    let mut wa = accepted_words(a, max_len);
    let mut wb = accepted_words(b, max_len);
    wa.sort();
    wb.sort();
    wa == wb
}

/// Counts accepted words of each length `0..=max_len` — the growth profile
/// used when comparing reduction sizes in the experiments.
pub fn counting_profile<L: Copy + Eq + Ord + Hash>(dfa: &Dfa<L>, max_len: usize) -> Vec<usize> {
    let mut counts = vec![0usize; max_len + 1];
    for w in accepted_words(dfa, max_len) {
        counts[w.len()] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::DfaBuilder;

    fn a_star_b() -> Dfa<char> {
        // a* b
        let mut bld = DfaBuilder::new();
        let q0 = bld.add_state(false);
        let q1 = bld.add_state(true);
        bld.add_transition(q0, 'a', q0);
        bld.add_transition(q0, 'b', q1);
        bld.build(q0)
    }

    #[test]
    fn enumerate_counts() {
        assert_eq!(enumerate_words(&['x'], 3).len(), 4);
        assert_eq!(enumerate_words(&['a', 'b', 'c'], 2).len(), 1 + 3 + 9);
    }

    #[test]
    fn accepted_words_of_a_star_b() {
        let words = accepted_words(&a_star_b(), 3);
        assert_eq!(words, vec![vec!['b'], vec!['a', 'b'], vec!['a', 'a', 'b'],]);
    }

    #[test]
    fn shortest_word() {
        assert_eq!(shortest_accepted_word(&a_star_b()), Some(vec!['b']));
        let mut bld = DfaBuilder::new();
        let q0 = bld.add_state(false);
        bld.add_transition(q0, 'a', q0);
        let empty = bld.build(q0);
        assert_eq!(shortest_accepted_word(&empty), None);
    }

    #[test]
    fn bounded_equality() {
        assert!(bounded_equal(&a_star_b(), &a_star_b(), 5));
        let mut bld = DfaBuilder::new();
        let q0 = bld.add_state(false);
        let q1 = bld.add_state(true);
        bld.add_transition(q0, 'b', q1);
        let just_b = bld.build(q0);
        assert!(!bounded_equal(&a_star_b(), &just_b, 2));
        assert!(
            bounded_equal(&a_star_b(), &just_b, 1),
            "equal up to length 1"
        );
    }

    #[test]
    fn profile() {
        assert_eq!(counting_profile(&a_star_b(), 4), vec![0, 1, 1, 1, 1]);
    }
}
