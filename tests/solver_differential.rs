//! Differential solver fuzzing: the CDCL engine against the legacy DPLL
//! search on random bounded LIA formulas.
//!
//! Every generated case runs through both engines on the same pool
//! (memoization disabled, so neither engine can see the other's work):
//!
//! * the engines must agree `Sat`/`Unsat` (`Unknown` is conservative and
//!   exempt — neither engine reports a definitive verdict it can't back);
//! * every `Sat` model is re-validated by exact integer evaluation of
//!   the queried formula;
//! * every `Unsat` verdict's core (computed under the CDCL engine, which
//!   exercises the antecedent-origin certificate path) is cross-checked
//!   unsatisfiable by the *legacy* engine.
//!
//! The proptest battery is a fixed-seed 512-case regression; the
//! `randomized_pass` test adds a bounded-time pass whose seed comes from
//! `SEQVER_FUZZ_SEED` (CI sets a per-run value so coverage accumulates
//! across runs without making any single run flaky).

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use seqver::smt::linear::{LinExpr, VarId};
use seqver::smt::solver::{check_with_config, SatResult, SolverConfig, SolverKind};
use seqver::smt::term::{TermId, TermPool};
use seqver::smt::unsat_core::unsat_core;
use seqver::smt::Rel;
use std::time::{Duration, Instant};

/// Number of variables used by generated formulas.
const NUM_VARS: usize = 3;
/// All variables are boxed to `-BOX..=BOX` so brute force stays cheap.
const BOX: i128 = 4;

#[derive(Clone, Debug)]
enum F {
    Le(Vec<i128>, i128),
    Eq(Vec<i128>, i128),
    And(Box<F>, Box<F>),
    Or(Box<F>, Box<F>),
    Not(Box<F>),
}

fn coeffs() -> impl Strategy<Value = Vec<i128>> {
    proptest::collection::vec(-3i128..=3, NUM_VARS)
}

fn formula() -> impl Strategy<Value = F> {
    let leaf = prop_oneof![
        (coeffs(), -6i128..=6).prop_map(|(c, k)| F::Le(c, k)),
        (coeffs(), -6i128..=6).prop_map(|(c, k)| F::Eq(c, k)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| F::Not(Box::new(a))),
        ]
    })
}

fn lower(pool: &mut TermPool, vars: &[VarId], f: &F) -> TermId {
    match f {
        F::Le(cs, k) => {
            let e = LinExpr::from_terms(cs.iter().enumerate().map(|(i, &c)| (vars[i], c)), -*k);
            pool.atom(e, Rel::Le0)
        }
        F::Eq(cs, k) => {
            let e = LinExpr::from_terms(cs.iter().enumerate().map(|(i, &c)| (vars[i], c)), -*k);
            pool.atom(e, Rel::Eq0)
        }
        F::And(a, b) => {
            let (ta, tb) = (lower(pool, vars, a), lower(pool, vars, b));
            pool.and([ta, tb])
        }
        F::Or(a, b) => {
            let (ta, tb) = (lower(pool, vars, a), lower(pool, vars, b));
            pool.or([ta, tb])
        }
        F::Not(a) => {
            let t = lower(pool, vars, a);
            pool.not(t)
        }
    }
}

fn config(kind: SolverKind) -> SolverConfig {
    SolverConfig {
        solver: kind,
        ..SolverConfig::default()
    }
}

/// Runs one generated formula through both engines and checks the
/// differential contract.
fn check_one(f: &F) {
    let mut pool = TermPool::new();
    // Disable memoization: each engine must earn its own verdict.
    pool.take_query_cache();
    let vars: Vec<VarId> = (0..NUM_VARS).map(|i| pool.var(&format!("v{i}"))).collect();
    let t = lower(&mut pool, &vars, f);
    // The query is a *battery* of assertions (formula + box bounds), so
    // unsat cores have room to differ from the full assertion list.
    let mut assertions = vec![t];
    for &v in &vars {
        assertions.push(pool.ge_const(v, -BOX));
        assertions.push(pool.le_const(v, BOX));
    }
    let conj = pool.and(assertions.clone());

    let dpll = check_with_config(&mut pool, &assertions, &config(SolverKind::Dpll));
    let cdcl = check_with_config(&mut pool, &assertions, &config(SolverKind::Cdcl));

    match (&dpll, &cdcl) {
        (SatResult::Sat(md), SatResult::Sat(mc)) => {
            assert!(
                pool.eval(conj, &|v| md.value(v)),
                "dpll model fails evaluation on {f:?}"
            );
            assert!(
                pool.eval(conj, &|v| mc.value(v)),
                "cdcl model fails evaluation on {f:?}"
            );
        }
        (SatResult::Unsat, SatResult::Unsat) => {
            pool.set_solver_kind(SolverKind::Cdcl);
            let core = unsat_core(&mut pool, &assertions)
                .expect("unsat input must yield a core under cdcl");
            assert!(!core.is_empty(), "empty core for unsat input {f:?}");
            let core_terms: Vec<TermId> = core.iter().map(|&i| assertions[i]).collect();
            assert!(
                matches!(
                    check_with_config(&mut pool, &core_terms, &config(SolverKind::Dpll)),
                    SatResult::Unsat
                ),
                "cdcl core {core:?} not unsat under legacy dpll on {f:?}"
            );
        }
        (SatResult::Unknown, _) | (_, SatResult::Unknown) => {
            // Conservative verdicts are allowed on either side.
        }
        (a, b) => panic!("engines disagree on {f:?}: dpll={a:?} cdcl={b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Fixed-seed 512-case differential battery.
    #[test]
    fn engines_agree_on_random_formulas(f in formula()) {
        check_one(&f);
    }
}

/// Bounded-time randomized pass. `SEQVER_FUZZ_SEED` selects the stream
/// (defaulting to a fixed one), so CI can rotate coverage per run while
/// any failure stays reproducible from the seed it prints.
#[test]
fn randomized_pass() {
    let seed: u64 = std::env::var("SEQVER_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xf00d);
    let deadline = Instant::now() + Duration::from_secs(15);
    let strat = formula();
    let mut rng = TestRng::deterministic(seed);
    let mut cases = 0u32;
    while cases < 512 && Instant::now() < deadline {
        let f = strat.generate(&mut rng);
        check_one(&f);
        cases += 1;
    }
    println!("randomized_pass: seed={seed} cases={cases}");
    assert!(cases > 0);
}
