//! Cross-pool term translation.
//!
//! [`TermId`]s are indices into one [`TermPool`]'s hash-cons table, so they
//! are meaningless in any other pool. To ship assertions between engines that
//! run on separate threads — each with its own pool — a term is *exported*
//! into the pool-independent [`ExportedTerm`] representation (variables are
//! identified by name, constraints by their coefficient lists) and
//! *imported* on the receiving side, re-interning variables and re-running
//! the pool's normalizing constructors.
//!
//! The representation is plain data (`String`/`i128`/`Vec`), hence `Send`,
//! which is what lets assertion chains cross an `mpsc` channel in the
//! parallel portfolio.
//!
//! Beyond crossing threads, an [`ExportedTerm`] also crosses *processes*:
//! [`ExportedTerm::to_text`] renders a stable, versionless s-expression
//! line and [`ExportedTerm::parse`] reads it back. This is the on-disk
//! format of the supervisor's crash-safe checkpoints — a harvested proof
//! assertion written by one `seqver` process is re-imported bit-for-bit by
//! the resuming one.

use crate::linear::{LinExpr, Rel};
use crate::term::{Term, TermId, TermPool};
use std::fmt::Write as _;

/// A pool-independent serialization of a term.
///
/// Structurally mirrors [`Term`], but atoms carry variable *names* instead of
/// pool-relative [`crate::VarId`]s, and connectives own their children
/// instead of referencing interned ids.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExportedTerm {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A linear constraint `sum(coeff * var) + constant REL 0`.
    Atom {
        /// Named variables with their coefficients, in the exporting pool's
        /// normalized order.
        coeffs: Vec<(String, i128)>,
        /// The constant term of the linear expression.
        constant: i128,
        /// The constraint relation (`≤ 0` or `= 0`).
        rel: Rel,
    },
    /// Conjunction of the children.
    And(Vec<ExportedTerm>),
    /// Disjunction of the children.
    Or(Vec<ExportedTerm>),
}

/// Writes a variable name as a `|…|`-quoted token, escaping `\` and `|`.
fn quote_name(out: &mut String, name: &str) {
    out.push('|');
    for c in name.chars() {
        if c == '\\' || c == '|' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('|');
}

fn rel_token(rel: Rel) -> &'static str {
    match rel {
        Rel::Le0 => "le0",
        Rel::Eq0 => "eq0",
    }
}

/// Token stream over the textual term format.
struct Lexer<'a> {
    rest: &'a str,
}

/// One token of the textual term format.
#[derive(Debug, PartialEq, Eq)]
enum Token {
    Open,
    Close,
    /// A bare word: keyword, relation or integer.
    Word(String),
    /// A `|…|`-quoted variable name, unescaped.
    Name(String),
}

impl<'a> Lexer<'a> {
    fn new(s: &'a str) -> Lexer<'a> {
        Lexer { rest: s }
    }

    fn next(&mut self) -> Result<Option<Token>, String> {
        self.rest = self.rest.trim_start();
        let mut chars = self.rest.chars();
        let Some(first) = chars.next() else {
            return Ok(None);
        };
        match first {
            '(' => {
                self.rest = &self.rest[1..];
                Ok(Some(Token::Open))
            }
            ')' => {
                self.rest = &self.rest[1..];
                Ok(Some(Token::Close))
            }
            '|' => {
                let mut name = String::new();
                let mut consumed = 1; // opening '|'
                let mut escaped = false;
                for c in chars {
                    consumed += c.len_utf8();
                    if escaped {
                        name.push(c);
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '|' {
                        self.rest = &self.rest[consumed..];
                        return Ok(Some(Token::Name(name)));
                    } else {
                        name.push(c);
                    }
                }
                Err("unterminated |…| variable name".to_owned())
            }
            _ => {
                let end = self
                    .rest
                    .find(|c: char| c.is_whitespace() || c == '(' || c == ')' || c == '|')
                    .unwrap_or(self.rest.len());
                let (word, rest) = self.rest.split_at(end);
                self.rest = rest;
                Ok(Some(Token::Word(word.to_owned())))
            }
        }
    }

    fn expect(&mut self, want: Token) -> Result<(), String> {
        match self.next()? {
            Some(t) if t == want => Ok(()),
            other => Err(format!("expected {want:?}, found {other:?}")),
        }
    }
}

impl ExportedTerm {
    /// Renders the term as a single-line s-expression, stable across
    /// processes and releases:
    ///
    /// ```text
    /// true | false
    /// (atom le0|eq0 <constant> (|name| <coeff>)*)
    /// (and <term>*) | (or <term>*)
    /// ```
    ///
    /// Variable names are `|…|`-quoted with `\`-escapes, so arbitrary
    /// names survive the round trip. [`ExportedTerm::parse`] inverts this
    /// exactly: `parse(t.to_text()) == Ok(t)`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            ExportedTerm::True => out.push_str("true"),
            ExportedTerm::False => out.push_str("false"),
            ExportedTerm::Atom {
                coeffs,
                constant,
                rel,
            } => {
                let _ = write!(out, "(atom {} {constant}", rel_token(*rel));
                for (name, k) in coeffs {
                    out.push_str(" (");
                    quote_name(out, name);
                    let _ = write!(out, " {k})");
                }
                out.push(')');
            }
            ExportedTerm::And(children) | ExportedTerm::Or(children) => {
                out.push('(');
                out.push_str(if matches!(self, ExportedTerm::And(_)) {
                    "and"
                } else {
                    "or"
                });
                for c in children {
                    out.push(' ');
                    c.write(out);
                }
                out.push(')');
            }
        }
    }

    /// Parses the [`ExportedTerm::to_text`] format back.
    pub fn parse(s: &str) -> Result<ExportedTerm, String> {
        let mut lexer = Lexer::new(s);
        let term = ExportedTerm::parse_term(&mut lexer)?;
        match lexer.next()? {
            None => Ok(term),
            Some(t) => Err(format!("trailing input after term: {t:?}")),
        }
    }

    fn parse_term(lexer: &mut Lexer<'_>) -> Result<ExportedTerm, String> {
        match lexer.next()? {
            Some(Token::Word(w)) if w == "true" => Ok(ExportedTerm::True),
            Some(Token::Word(w)) if w == "false" => Ok(ExportedTerm::False),
            Some(Token::Open) => {
                let head = match lexer.next()? {
                    Some(Token::Word(w)) => w,
                    other => return Err(format!("expected atom/and/or, found {other:?}")),
                };
                match head.as_str() {
                    "atom" => ExportedTerm::parse_atom(lexer),
                    "and" | "or" => {
                        let mut children = Vec::new();
                        loop {
                            let mut probe = Lexer { rest: lexer.rest };
                            if probe.next()? == Some(Token::Close) {
                                lexer.rest = probe.rest;
                                break;
                            }
                            children.push(ExportedTerm::parse_term(lexer)?);
                        }
                        Ok(if head == "and" {
                            ExportedTerm::And(children)
                        } else {
                            ExportedTerm::Or(children)
                        })
                    }
                    other => Err(format!("unknown term head `{other}`")),
                }
            }
            other => Err(format!("expected a term, found {other:?}")),
        }
    }

    fn parse_atom(lexer: &mut Lexer<'_>) -> Result<ExportedTerm, String> {
        let rel = match lexer.next()? {
            Some(Token::Word(w)) if w == "le0" => Rel::Le0,
            Some(Token::Word(w)) if w == "eq0" => Rel::Eq0,
            other => return Err(format!("expected le0/eq0, found {other:?}")),
        };
        let constant: i128 = match lexer.next()? {
            Some(Token::Word(w)) => w
                .parse()
                .map_err(|_| format!("invalid atom constant `{w}`"))?,
            other => return Err(format!("expected atom constant, found {other:?}")),
        };
        let mut coeffs = Vec::new();
        loop {
            match lexer.next()? {
                Some(Token::Close) => {
                    return Ok(ExportedTerm::Atom {
                        coeffs,
                        constant,
                        rel,
                    })
                }
                Some(Token::Open) => {
                    let name = match lexer.next()? {
                        Some(Token::Name(n)) => n,
                        other => return Err(format!("expected |name|, found {other:?}")),
                    };
                    let k: i128 = match lexer.next()? {
                        Some(Token::Word(w)) => w
                            .parse()
                            .map_err(|_| format!("invalid coefficient `{w}`"))?,
                        other => return Err(format!("expected coefficient, found {other:?}")),
                    };
                    lexer.expect(Token::Close)?;
                    coeffs.push((name, k));
                }
                other => return Err(format!("expected (|name| coeff) or ), found {other:?}")),
            }
        }
    }
}

impl TermPool {
    /// Serializes `id` into a pool-independent [`ExportedTerm`].
    pub fn export(&self, id: TermId) -> ExportedTerm {
        match self.term(id) {
            Term::True => ExportedTerm::True,
            Term::False => ExportedTerm::False,
            Term::Atom(c) => {
                // Pool-internal coefficient order follows VarId numbering,
                // which differs between pools; sort by name so structurally
                // equal terms export identically from any pool.
                let mut coeffs: Vec<_> = c
                    .expr()
                    .terms()
                    .iter()
                    .map(|&(v, k)| (self.var_name(v).to_owned(), k))
                    .collect();
                coeffs.sort();
                ExportedTerm::Atom {
                    coeffs,
                    constant: c.expr().constant_term(),
                    rel: c.rel(),
                }
            }
            Term::And(children) => {
                ExportedTerm::And(children.iter().map(|&c| self.export(c)).collect())
            }
            Term::Or(children) => {
                ExportedTerm::Or(children.iter().map(|&c| self.export(c)).collect())
            }
        }
    }

    /// Re-interns an [`ExportedTerm`] in this pool.
    ///
    /// Variables are resolved by name (created on first sight), and the
    /// normalizing `atom`/`and`/`or` constructors run again, so the result is
    /// hash-consed exactly as if the term had been built here natively. In
    /// particular `import(export(t)) == t` within one pool.
    pub fn import(&mut self, term: &ExportedTerm) -> TermId {
        match term {
            ExportedTerm::True => TermPool::TRUE,
            ExportedTerm::False => TermPool::FALSE,
            ExportedTerm::Atom {
                coeffs,
                constant,
                rel,
            } => {
                let resolved: Vec<_> = coeffs
                    .iter()
                    .map(|(name, k)| (self.var(name), *k))
                    .collect();
                self.atom(LinExpr::from_terms(resolved, *constant), *rel)
            }
            ExportedTerm::And(children) => {
                let ids: Vec<_> = children.iter().map(|c| self.import(c)).collect();
                self.and(ids)
            }
            ExportedTerm::Or(children) => {
                let ids: Vec<_> = children.iter().map(|c| self.import(c)).collect();
                self.or(ids)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{check, SatResult};

    fn sample_term(pool: &mut TermPool) -> TermId {
        let x = pool.var("x");
        let y = pool.var("y");
        let a = pool.le(&LinExpr::var(x), &LinExpr::constant(5));
        let b = pool.ge(
            &LinExpr::var(y),
            &LinExpr::var(x).add(&LinExpr::constant(1)),
        );
        let c = pool.eq_const(x, 3);
        let ab = pool.and([a, b]);
        pool.or([ab, c])
    }

    #[test]
    fn exported_term_is_send_and_static() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<ExportedTerm>();
    }

    #[test]
    fn round_trip_same_pool_is_identity() {
        let mut pool = TermPool::new();
        let t = sample_term(&mut pool);
        let exported = pool.export(t);
        assert_eq!(pool.import(&exported), t);
        assert_eq!(pool.import(&ExportedTerm::True), TermPool::TRUE);
        assert_eq!(pool.import(&ExportedTerm::False), TermPool::FALSE);
    }

    #[test]
    fn round_trip_across_pools_preserves_structure() {
        let mut a = TermPool::new();
        let t = sample_term(&mut a);
        let exported = a.export(t);

        // A pool with a different variable numbering: interning unrelated
        // variables first shifts every VarId the import will allocate.
        let mut b = TermPool::new();
        b.var("unrelated");
        b.var("y"); // note: y before x, opposite of pool `a`
        let imported = b.import(&exported);

        assert_eq!(b.export(imported), exported);
        // Shipping the term back into the original pool reproduces `t`
        // exactly (hash-consing makes this an id-level identity).
        assert_eq!(a.import(&b.export(imported)), t);
    }

    #[test]
    fn round_trip_preserves_satisfiability() {
        let mut a = TermPool::new();
        let x = a.var("x");
        let y = a.var("y");

        // Satisfiable: x <= 5 && y = x + 1.
        let sat1 = a.le(&LinExpr::var(x), &LinExpr::constant(5));
        let sat2 = a.eq(
            &LinExpr::var(y),
            &LinExpr::var(x).add(&LinExpr::constant(1)),
        );
        // Unsatisfiable: x <= 2 && x >= 4.
        let unsat1 = a.le(&LinExpr::var(x), &LinExpr::constant(2));
        let unsat2 = a.ge(&LinExpr::var(x), &LinExpr::constant(4));

        let mut b = TermPool::new();
        b.var("z"); // shift variable numbering
        let (s1, s2, u1, u2) = (
            b.import(&a.export(sat1)),
            b.import(&a.export(sat2)),
            b.import(&a.export(unsat1)),
            b.import(&a.export(unsat2)),
        );

        assert!(matches!(check(&mut b, &[s1, s2]), SatResult::Sat(_)));
        assert!(matches!(check(&mut b, &[u1, u2]), SatResult::Unsat));
        // Same verdicts as in the original pool.
        assert!(matches!(check(&mut a, &[sat1, sat2]), SatResult::Sat(_)));
        assert!(matches!(check(&mut a, &[unsat1, unsat2]), SatResult::Unsat));
    }

    #[test]
    fn text_round_trip_is_identity() {
        let mut pool = TermPool::new();
        let t = sample_term(&mut pool);
        let exported = pool.export(t);
        let text = exported.to_text();
        assert_eq!(ExportedTerm::parse(&text), Ok(exported.clone()));
        // Through a fresh pool: text → term → import gives the same
        // hash-consed id as importing the original export.
        let mut b = TermPool::new();
        let reparsed = ExportedTerm::parse(&text).unwrap();
        assert_eq!(b.import(&reparsed), b.import(&exported));
        assert_eq!(ExportedTerm::parse("true"), Ok(ExportedTerm::True));
        assert_eq!(ExportedTerm::parse(" false "), Ok(ExportedTerm::False));
    }

    #[test]
    fn text_round_trip_escapes_hostile_names() {
        let hostile = ExportedTerm::Atom {
            coeffs: vec![
                ("pipe|in|name".into(), 1),
                ("back\\slash".into(), -2),
                ("sp ace (paren)".into(), 3),
            ],
            constant: -7,
            rel: Rel::Eq0,
        };
        let text = hostile.to_text();
        assert_eq!(ExportedTerm::parse(&text), Ok(hostile));
    }

    #[test]
    fn text_round_trip_nested_connectives() {
        let t = ExportedTerm::Or(vec![
            ExportedTerm::And(vec![
                ExportedTerm::True,
                ExportedTerm::Atom {
                    coeffs: vec![("x".into(), 1)],
                    constant: -5,
                    rel: Rel::Le0,
                },
            ]),
            ExportedTerm::And(vec![]),
            ExportedTerm::False,
        ]);
        assert_eq!(ExportedTerm::parse(&t.to_text()), Ok(t));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "(atom le0)",
            "(atom le0 x)",
            "(atom ge0 1)",
            "(and true",
            "(atom le0 1 (|x| 1)) trailing",
            "(bogus)",
            "(atom le0 1 (|unterminated 1))",
            "true false",
        ] {
            assert!(ExportedTerm::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn import_rebuilds_through_normalizing_constructors() {
        // A hand-built ExportedTerm whose atom is not normalized (gcd 2) and
        // whose conjunction contains `true`: import must normalize both.
        let raw = ExportedTerm::And(vec![
            ExportedTerm::True,
            ExportedTerm::Atom {
                coeffs: vec![("v".into(), 2)],
                constant: -4,
                rel: Rel::Le0,
            },
        ]);
        let mut pool = TermPool::new();
        let id = pool.import(&raw);
        // 2v - 4 <= 0 normalizes to v - 2 <= 0, and the `true` conjunct drops.
        assert_eq!(pool.display(id), {
            let v = pool.var("v");
            let expect = pool.le_const(v, 2);
            pool.display(expect)
        });
    }
}
