//! Mazurkiewicz trace equivalence (§4).
//!
//! Two words are equivalent iff one can be reached from the other by
//! repeatedly swapping adjacent *commuting* letters. Equivalence is decided
//! without enumerating swaps: `u ∼ v` iff they have the same letter
//! multiset and, for every pair of *dependent* (non-commuting) letters, the
//! same relative order of occurrences — checked by projecting both words
//! onto each dependent letter pair (the standard projection lemma for trace
//! monoids).

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::hash::Hash;

/// Decides `u ∼ v` under the commutativity predicate `commute`.
///
/// `commute` must be symmetric and irreflexive-in-effect (a letter never
/// commutes with itself — letters of the same thread never commute in the
/// program setting).
///
/// # Example
///
/// ```
/// use reduction::mazurkiewicz::equivalent;
///
/// // a and b commute; c commutes with nothing.
/// let commute = |x: char, y: char| (x, y) == ('a', 'b') || (x, y) == ('b', 'a');
/// assert!(equivalent(&['a', 'b', 'c'], &['b', 'a', 'c'], commute));
/// assert!(!equivalent(&['a', 'c', 'b'], &['c', 'a', 'b'], commute));
/// ```
pub fn equivalent<L: Copy + Eq + Ord + Hash>(
    u: &[L],
    v: &[L],
    commute: impl Fn(L, L) -> bool,
) -> bool {
    if u.len() != v.len() {
        return false;
    }
    // Same multiset.
    let mut count: HashMap<L, isize> = HashMap::new();
    for &a in u {
        *count.entry(a).or_insert(0) += 1;
    }
    for &b in v {
        *count.entry(b).or_insert(0) -= 1;
    }
    if count.values().any(|&c| c != 0) {
        return false;
    }
    // Same projection onto every dependent letter pair (including (a, a)).
    let letters: BTreeSet<L> = u.iter().copied().collect();
    for &a in &letters {
        for &b in &letters {
            if a > b {
                continue;
            }
            if a != b && commute(a, b) {
                continue;
            }
            let pu: Vec<L> = u.iter().copied().filter(|&x| x == a || x == b).collect();
            let pv: Vec<L> = v.iter().copied().filter(|&x| x == a || x == b).collect();
            if pu != pv {
                return false;
            }
        }
    }
    true
}

/// Enumerates the full equivalence class of `word` by BFS over adjacent
/// swaps. Exponential — for tests on short words only.
pub fn equivalence_class<L: Copy + Eq + Ord + Hash>(
    word: &[L],
    commute: impl Fn(L, L) -> bool,
) -> Vec<Vec<L>> {
    let mut seen: BTreeSet<Vec<L>> = BTreeSet::new();
    let mut queue: VecDeque<Vec<L>> = VecDeque::new();
    seen.insert(word.to_vec());
    queue.push_back(word.to_vec());
    while let Some(w) = queue.pop_front() {
        for i in 0..w.len().saturating_sub(1) {
            let (a, b) = (w[i], w[i + 1]);
            if a != b && commute(a, b) {
                let mut s = w.clone();
                s.swap(i, i + 1);
                if seen.insert(s.clone()) {
                    queue.push_back(s);
                }
            }
        }
    }
    seen.into_iter().collect()
}

/// The Foata normal form of a word: the unique factorization into maximal
/// "steps" (sets of pairwise-commuting letters, each depending on some
/// letter of the previous step), with each step sorted. Two words are
/// Mazurkiewicz-equivalent iff their Foata normal forms coincide — an
/// alternative decision procedure used to cross-check [`equivalent`].
///
/// # Example
///
/// ```
/// use reduction::mazurkiewicz::foata_normal_form;
///
/// let commute = |x: char, y: char| (x, y) == ('a', 'b') || (x, y) == ('b', 'a');
/// let nf1 = foata_normal_form(&['a', 'b', 'c'], commute);
/// let nf2 = foata_normal_form(&['b', 'a', 'c'], commute);
/// assert_eq!(nf1, nf2);
/// assert_eq!(nf1, vec![vec!['a', 'b'], vec!['c']]);
/// ```
pub fn foata_normal_form<L: Copy + Eq + Ord + Hash>(
    word: &[L],
    commute: impl Fn(L, L) -> bool,
) -> Vec<Vec<L>> {
    let mut steps: Vec<Vec<L>> = Vec::new();
    for &a in word {
        // Find the deepest step a can join: a must commute with everything
        // in every later step, and either depend on something in the step
        // before its home, or land in step 0.
        let mut target = steps.len();
        while target > 0 {
            let step = &steps[target - 1];
            if step.iter().any(|&b| a == b || !commute(a, b)) {
                break;
            }
            target -= 1;
        }
        if target == steps.len() {
            steps.push(vec![a]);
        } else {
            let pos = steps[target].binary_search(&a).unwrap_or_else(|p| p);
            steps[target].insert(pos, a);
        }
    }
    steps
}

/// Checks that `reduced` is a *sound reduction* of `full` up to the given
/// length bound: `reduced ⊆ full` and every word of `full` has an
/// equivalent representative in `reduced`. Returns the first offending word
/// (`Err`) or `Ok(())`.
pub fn check_reduction_sound<L: Copy + Eq + Ord + Hash + std::fmt::Debug>(
    full: &[Vec<L>],
    reduced: &[Vec<L>],
    commute: impl Fn(L, L) -> bool + Copy,
) -> Result<(), Vec<L>> {
    for w in reduced {
        if !full.contains(w) {
            return Err(w.clone());
        }
    }
    for w in full {
        if !reduced.iter().any(|r| equivalent(w, r, commute)) {
            return Err(w.clone());
        }
    }
    Ok(())
}

/// Checks language-minimality up to the bound: no two distinct words of
/// `reduced` are equivalent. Returns an offending pair if any.
pub fn check_reduction_minimal<L: Copy + Eq + Ord + Hash + Clone>(
    reduced: &[Vec<L>],
    commute: impl Fn(L, L) -> bool + Copy,
) -> Result<(), (Vec<L>, Vec<L>)> {
    for (i, u) in reduced.iter().enumerate() {
        for v in &reduced[i + 1..] {
            if equivalent(u, v, commute) {
                return Err((u.clone(), v.clone()));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab_commute(x: char, y: char) -> bool {
        matches!((x, y), ('a', 'b') | ('b', 'a'))
    }

    #[test]
    fn basic_equivalence() {
        assert!(equivalent(&['a', 'b'], &['b', 'a'], ab_commute));
        assert!(!equivalent(&['a', 'b'], &['a', 'b', 'a'], ab_commute));
        assert!(equivalent::<char>(&[], &[], ab_commute));
        assert!(!equivalent(&['a', 'a', 'b'], &['a', 'b', 'b'], ab_commute));
    }

    #[test]
    fn dependence_blocks_swaps() {
        // c is dependent on everything.
        assert!(!equivalent(&['a', 'c'], &['c', 'a'], ab_commute));
        // but commuting letters can move across non-adjacent positions.
        assert!(equivalent(
            &['a', 'a', 'b', 'b'],
            &['b', 'b', 'a', 'a'],
            ab_commute
        ));
    }

    #[test]
    fn projection_catches_subtle_inequivalence() {
        // Same multiset, same ab-order freedom, but c-relative order differs.
        assert!(!equivalent(&['a', 'c', 'b'], &['b', 'c', 'a'], ab_commute));
    }

    #[test]
    fn class_enumeration_matches_pairwise_check() {
        let word = ['a', 'b', 'c', 'a', 'b'];
        let class = equivalence_class(&word, ab_commute);
        // All class members are pairwise equivalent to the original.
        for w in &class {
            assert!(equivalent(&word, w, ab_commute), "{w:?}");
        }
        // And everything equivalent (within same-length permutations of the
        // multiset) is in the class.
        let mut sorted = word.to_vec();
        sorted.sort_unstable();
        let mut perms = vec![];
        permute(&mut sorted.clone(), 0, &mut perms);
        for p in perms {
            let in_class = class.contains(&p);
            assert_eq!(in_class, equivalent(&word, &p, ab_commute), "{p:?}");
        }
    }

    fn permute(items: &mut Vec<char>, k: usize, out: &mut Vec<Vec<char>>) {
        if k == items.len() {
            if !out.contains(items) {
                out.push(items.clone());
            }
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, out);
            items.swap(k, i);
        }
    }

    #[test]
    fn foata_characterizes_equivalence() {
        // Over random-ish words, equality of Foata normal forms must agree
        // with the projection-based equivalence check.
        let alphabet = ['a', 'b', 'c'];
        let mut words: Vec<Vec<char>> = vec![vec![]];
        for _ in 0..4 {
            let mut next = Vec::new();
            for w in &words {
                for &l in &alphabet {
                    let mut v = w.clone();
                    v.push(l);
                    next.push(v);
                }
            }
            words = next;
        }
        for u in &words {
            for v in &words {
                let eq = equivalent(u, v, ab_commute);
                let foata_eq = foata_normal_form(u, ab_commute) == foata_normal_form(v, ab_commute);
                assert_eq!(eq, foata_eq, "{u:?} vs {v:?}");
            }
        }
    }

    #[test]
    fn foata_steps_are_maximal_commuting_sets() {
        let nf = foata_normal_form(&['c', 'a', 'b', 'a'], ab_commute);
        // c first (depends on nothing before it), then {a, b}, then {a}.
        assert_eq!(nf, vec![vec!['c'], vec!['a', 'b'], vec!['a']]);
    }

    #[test]
    fn soundness_checker() {
        let full = vec![vec!['a', 'b'], vec!['b', 'a']];
        let reduced_ok = vec![vec!['a', 'b']];
        let reduced_bad: Vec<Vec<char>> = vec![];
        assert!(check_reduction_sound(&full, &reduced_ok, ab_commute).is_ok());
        assert_eq!(
            check_reduction_sound(&full, &reduced_bad, ab_commute),
            Err(vec!['a', 'b'])
        );
        // Reduction must be a subset.
        let not_subset = vec![vec!['z']];
        assert!(check_reduction_sound(&full, &not_subset, ab_commute).is_err());
    }

    #[test]
    fn minimality_checker() {
        let minimal = vec![vec!['a', 'b']];
        assert!(check_reduction_minimal(&minimal, ab_commute).is_ok());
        let redundant = vec![vec!['a', 'b'], vec!['b', 'a']];
        assert!(check_reduction_minimal(&redundant, ab_commute).is_err());
    }
}
