//! Kill/resume equivalence: abort a run at a deterministic round via the
//! fault plan (`rounds:N:unknown`, firing as round N is charged), resume
//! from the crash-safe checkpoint, and check the resumed run reaches the
//! *same verdict with the same cumulative round count* as the
//! uninterrupted run — on every corpus example that terminates quickly,
//! and bit-identically when resumed twice.

use std::path::{Path, PathBuf};

use seqver::gemcutter::govern::{FaultPlan, GovernorConfig};
use seqver::gemcutter::snapshot::Snapshot;
use seqver::gemcutter::supervise::{supervised_verify, SuperviseConfig, SupervisedOutcome};
use seqver::gemcutter::verify::VerifierConfig;
use seqver::program::concurrent::Program;
use seqver::smt::TermPool;

fn compile_example(name: &str) -> (TermPool, Program) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/cpl")
        .join(name);
    let source = std::fs::read_to_string(&path).unwrap();
    let mut pool = TermPool::new();
    let p = seqver::cpl::compile(&source, &mut pool).unwrap();
    (pool, p)
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "seqver-killresume-{}-{tag}.ckpt",
        std::process::id()
    ))
}

fn run_clean(name: &str, scfg: &SuperviseConfig) -> SupervisedOutcome {
    let (mut pool, p) = compile_example(name);
    supervised_verify(&mut pool, &p, &VerifierConfig::gemcutter_seq(), scfg)
}

/// Aborts `name` at `abort_round` with checkpointing on; returns the
/// snapshot, or `None` if the run concluded before the fault fired.
fn kill_at(name: &str, abort_round: u64, ckpt: &Path) -> Option<Snapshot> {
    let (mut pool, p) = compile_example(name);
    let config = VerifierConfig {
        govern: GovernorConfig {
            fault_plan: FaultPlan::parse(&format!("rounds:{abort_round}:unknown")).unwrap(),
            ..GovernorConfig::default()
        },
        ..VerifierConfig::gemcutter_seq()
    };
    let killed = supervised_verify(
        &mut pool,
        &p,
        &config,
        &SuperviseConfig {
            checkpoint: Some(ckpt.to_path_buf()),
            ..SuperviseConfig::default()
        },
    );
    assert!(
        killed.checkpoint_error.is_none(),
        "{:?}",
        killed.checkpoint_error
    );
    if killed.outcome.verdict.give_up().is_some() && ckpt.exists() {
        Some(Snapshot::load(ckpt).unwrap())
    } else {
        None
    }
}

fn resume_with(name: &str, snap: Snapshot) -> SupervisedOutcome {
    run_clean(
        name,
        &SuperviseConfig {
            resume: Some(snap),
            ..SuperviseConfig::default()
        },
    )
}

/// Kill at every early round boundary and check resume equivalence.
fn check_kill_resume(name: &str, abort_rounds: &[u64]) {
    let reference = run_clean(name, &SuperviseConfig::default());
    for &abort in abort_rounds {
        let ckpt = scratch(&format!("{name}-{abort}"));
        let Some(snap) = kill_at(name, abort, &ckpt) else {
            let _ = std::fs::remove_file(&ckpt);
            continue;
        };
        let resumed = resume_with(name, snap);
        assert_eq!(
            format!("{:?}", resumed.outcome.verdict),
            format!("{:?}", reference.outcome.verdict),
            "{name}: verdict diverged after kill at round {abort}"
        );
        assert_eq!(
            resumed.outcome.stats.rounds, reference.outcome.stats.rounds,
            "{name}: cumulative round count diverged after kill at round {abort}"
        );
        assert!(
            resumed.rounds_skipped > 0,
            "{name}: resume must account for the checkpointed rounds"
        );
        let _ = std::fs::remove_file(&ckpt);
    }
}

#[test]
fn kill_resume_matches_uninterrupted_on_corpus_examples() {
    // Every deterministic-terminating example in examples/cpl/ (chain-wide
    // does not converge even unlimited, so it has no reference verdict).
    check_kill_resume("counter.cpl", &[2, 3]);
    check_kill_resume("counter-racy.cpl", &[2, 3]);
    check_kill_resume("bluetooth.cpl", &[2, 4]);
    check_kill_resume("chain-medium.cpl", &[2, 6, 10]);
}

#[test]
fn resume_is_deterministic() {
    let ckpt = scratch("determinism");
    let snap = kill_at("chain-medium.cpl", 6, &ckpt).expect("fault should fire mid-proof");
    let a = resume_with("chain-medium.cpl", snap.clone());
    let b = resume_with("chain-medium.cpl", snap);
    assert_eq!(
        format!("{:?}", a.outcome.verdict),
        format!("{:?}", b.outcome.verdict)
    );
    assert_eq!(a.outcome.stats.rounds, b.outcome.stats.rounds);
    assert_eq!(a.outcome.stats.proof_size, b.outcome.stats.proof_size);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn resume_refuses_a_different_program() {
    let ckpt = scratch("wrong-program");
    let snap = kill_at("chain-medium.cpl", 6, &ckpt).expect("fault should fire mid-proof");
    let resumed = run_clean(
        "chain-trio.cpl",
        &SuperviseConfig {
            resume: Some(snap),
            ..SuperviseConfig::default()
        },
    );
    let give_up = resumed
        .outcome
        .verdict
        .give_up()
        .expect("hash mismatch must not silently verify");
    assert!(
        give_up.reason.contains("refusing to resume"),
        "unexpected reason: {}",
        give_up.reason
    );
    let _ = std::fs::remove_file(&ckpt);
}
