//! The sleep set automaton `S⋖(A)` (§5, Def. 5.1).
//!
//! Given a DFA `A` with a closed language, a preference order `⋖` and a
//! commutativity relation, the sleep set automaton recognizes *exactly* the
//! lexicographic reduction `red_lex(⋖)(L(A))` (Thm. 5.3): for each
//! Mazurkiewicz class of `L(A)`, precisely its ⋖-minimal representative.
//!
//! States are `(q, S, ctx)` where `S ⊆ Σ` is the sleep set and `ctx` the
//! preference-order context (trivial for non-positional orders). The
//! construction prunes edges labelled by sleeping letters and may duplicate
//! input states (unrolling) — that is what makes the result language-
//! minimal, at the price of *useless states* that §6's persistent sets
//! remove.

use crate::order::{OrderContext, PreferenceOrder};
use automata::bitset::BitSet;
use automata::dfa::{Dfa, DfaBuilder, StateId};
use program::commutativity::CommutativityOracle;
use program::concurrent::{LetterId, Program};
use smt::term::TermPool;
use std::collections::HashMap;

/// Builds the explicit sleep set automaton of `input` (a DFA over the
/// program's alphabet — typically its interleaving product or a fragment).
///
/// The commutativity relation is the oracle's *unconditional* relation.
/// The result recognizes the lexicographic reduction of `L(input)` induced
/// by `order`.
pub fn sleep_set_automaton(
    pool: &mut TermPool,
    program: &Program,
    input: &Dfa<LetterId>,
    order: &dyn PreferenceOrder,
    oracle: &mut CommutativityOracle,
) -> Dfa<LetterId> {
    type SleepState = (StateId, BitSet, OrderContext);

    let num_letters = program.num_letters();
    let mut builder = DfaBuilder::new();
    let mut ids: HashMap<SleepState, StateId> = HashMap::new();

    let start: SleepState = (input.initial(), BitSet::new(num_letters), 0);
    let start_id = builder.add_state(input.is_accepting(start.0));
    ids.insert(start.clone(), start_id);
    let mut work = vec![start];

    while let Some((q, sleep, ctx)) = work.pop() {
        let from = ids[&(q, sleep.clone(), ctx)];
        let enabled: Vec<LetterId> = input.enabled(q).collect();
        for &a in &enabled {
            if sleep.contains(a.index()) {
                continue; // pruned: a smaller equivalent representative exists
            }
            let target = input.step(q, a).expect("enabled letter steps");
            // S' = {b ∈ enabled(q) | (b ∈ S ∨ b <q a) ∧ a ↷↷ b}
            let mut next_sleep = BitSet::new(num_letters);
            for &b in &enabled {
                let earlier = sleep.contains(b.index()) || order.less(ctx, b, a, program);
                if earlier && oracle.commute(pool, program, a, b) {
                    next_sleep.insert(b.index());
                }
            }
            let next_ctx = order.step(ctx, a, program);
            let key: SleepState = (target, next_sleep, next_ctx);
            let to = match ids.get(&key) {
                Some(&id) => id,
                None => {
                    let id = builder.add_state(input.is_accepting(target));
                    ids.insert(key.clone(), id);
                    work.push(key);
                    id
                }
            };
            builder.add_transition(from, a, to);
        }
    }
    builder.build(start_id)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::mazurkiewicz::{check_reduction_minimal, check_reduction_sound};
    use crate::order::{RandomOrder, SeqOrder};
    use automata::dfa::DfaBuilder as CfgBuilder;
    use automata::explore::accepted_words;
    use program::commutativity::CommutativityLevel;
    use program::concurrent::Spec;
    use program::stmt::{SimpleStmt, Statement};
    use program::thread::{Thread, ThreadId};

    /// n threads, each writing its own variable k times — full commutativity
    /// across threads.
    fn independent_program(pool: &mut TermPool, n: u32, k: u32) -> Program {
        let mut b = Program::builder("independent");
        let mut letters = Vec::new();
        for t in 0..n {
            let v = pool.var(&format!("x{t}"));
            b.add_global(v, 0);
            let mut ls = Vec::new();
            for s in 0..k {
                ls.push(b.add_statement(Statement::simple(
                    ThreadId(t),
                    &format!("t{t}s{s}"),
                    SimpleStmt::Havoc(v),
                    pool,
                )));
            }
            letters.push(ls);
        }
        for t in 0..n as usize {
            let mut cfg = CfgBuilder::new();
            let mut prev = cfg.add_state(k == 0);
            let entry = prev;
            for s in 0..k as usize {
                let next = cfg.add_state(s + 1 == k as usize);
                cfg.add_transition(prev, letters[t][s], next);
                prev = next;
            }
            b.add_thread(Thread::new(
                "t",
                cfg.build(entry),
                BitSet::new(k as usize + 1),
            ));
        }
        b.build(pool)
    }

    /// Figure 3's shape: two threads with letters {a1, b1} and {a2, b2},
    /// ai/bj commute across threads... here all cross-thread letters
    /// commute (distinct variables).
    #[test]
    fn figure3_sleep_set_prunes_paths_not_states() {
        let mut pool = TermPool::new();
        let p = independent_program(&mut pool, 2, 2);
        let product = p.explicit_product(Spec::PrePost);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
        let sleep = sleep_set_automaton(&mut pool, &p, &product, &SeqOrder::new(), &mut oracle);
        // Exactly one representative per class: the full language of 2+2
        // interleavings is C(4,2) = 6 words; the reduction keeps 1.
        let full = accepted_words(&product, 4);
        assert_eq!(full.len(), 6);
        let reduced = accepted_words(&sleep, 4);
        assert_eq!(reduced.len(), 1, "full commutativity: single class");
        // Under seq order the representative is thread 0 first.
        assert_eq!(
            reduced[0],
            vec![LetterId(0), LetterId(1), LetterId(2), LetterId(3)]
        );
    }

    #[test]
    fn sleep_reduction_is_sound_and_minimal() {
        let mut pool = TermPool::new();
        let p = independent_program(&mut pool, 3, 1);
        let product = p.explicit_product(Spec::PrePost);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
        for order in [
            Box::new(SeqOrder::new()) as Box<dyn PreferenceOrder>,
            Box::new(RandomOrder::new(3)),
        ] {
            let sleep = sleep_set_automaton(&mut pool, &p, &product, order.as_ref(), &mut oracle);
            let full = accepted_words(&product, 3);
            let reduced = accepted_words(&sleep, 3);
            let commute = |a: LetterId, b: LetterId| {
                p.thread_of(a) != p.thread_of(b) // independent program: all cross-thread commute
            };
            check_reduction_sound(&full, &reduced, commute).expect("sound");
            check_reduction_minimal(&reduced, commute).expect("minimal");
            assert_eq!(reduced.len(), 1);
        }
    }

    #[test]
    fn dependent_letters_are_not_pruned() {
        // Two threads writing the SAME variable: nothing commutes, the
        // reduction is the full language.
        let mut pool = TermPool::new();
        let mut b = Program::builder("conflict");
        let x = pool.var("x");
        b.add_global(x, 0);
        let l0 = b.add_statement(Statement::simple(
            ThreadId(0),
            "x := 1",
            SimpleStmt::Assign(x, smt::LinExpr::constant(1)),
            &pool,
        ));
        let l1 = b.add_statement(Statement::simple(
            ThreadId(1),
            "x := 2",
            SimpleStmt::Assign(x, smt::LinExpr::constant(2)),
            &pool,
        ));
        for l in [l0, l1] {
            let mut cfg = CfgBuilder::new();
            let entry = cfg.add_state(false);
            let exit = cfg.add_state(true);
            cfg.add_transition(entry, l, exit);
            b.add_thread(Thread::new("t", cfg.build(entry), BitSet::new(2)));
        }
        let p = b.build(&mut pool);
        let product = p.explicit_product(Spec::PrePost);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
        let sleep = sleep_set_automaton(&mut pool, &p, &product, &SeqOrder::new(), &mut oracle);
        assert_eq!(accepted_words(&sleep, 2).len(), 2, "both orders kept");
    }

    #[test]
    fn sleep_states_can_exceed_input_states() {
        // Unrolling duplicates states (the paper notes sleep sets do not
        // reduce the state count).
        let mut pool = TermPool::new();
        let p = independent_program(&mut pool, 2, 2);
        let product = p.explicit_product(Spec::PrePost);
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
        let sleep = sleep_set_automaton(&mut pool, &p, &product, &SeqOrder::new(), &mut oracle);
        assert!(
            sleep.num_states() >= product.num_states() - 2,
            "sleep construction does not shrink the state space: {} vs {}",
            sleep.num_states(),
            product.num_states()
        );
        // And it contains useless (non-co-reachable) states — the problem
        // persistent sets solve (§6).
        let useless = sleep.num_states() - sleep.trim().num_states();
        assert!(useless > 0, "expected sleep-set-blocked states");
    }
}
