//! **GemCutter-style verifier**: concurrent program verification by sound
//! sequentialization (Farzan, Klumpp, Podelski — PLDI 2022).
//!
//! The verifier runs trace abstraction refinement (§7): each round checks
//! whether the current Floyd/Hoare proof candidate covers a *sound
//! reduction* of the program, computed **on the fly** with sleep sets,
//! weakly persistent membranes and (optionally) proof-sensitive
//! commutativity — Algorithm 2 of the paper. An uncovered trace is either
//! a real bug (feasible) or yields new assertions via unsat-core-sliced
//! strongest-postcondition interpolation.
//!
//! * [`proof`] — Floyd/Hoare proof automata over a growing assertion pool;
//! * [`interpolate`] — trace feasibility + sequence interpolation;
//! * [`check`] — the on-the-fly proof check (Algorithm 2), with the §7.2
//!   cross-round useless-state cache;
//! * [`mod@verify`] — the refinement loop, configuration and statistics;
//! * [`govern`] — resource governance (deadlines, step budgets,
//!   cancellation, deterministic fault injection);
//! * [`portfolio`] — the multi-preference-order portfolio of §8;
//! * [`supervise`] — restart supervision: proof-recycling escalation
//!   ladders and crash-safe checkpoint/resume;
//! * [`snapshot`] — the versioned on-disk checkpoint format.
//!
//! # Example
//!
//! ```no_run
//! use gemcutter::verify::{verify, Verdict, VerifierConfig};
//! # fn demo(pool: &mut smt::TermPool, program: &program::Program) {
//! let config = VerifierConfig::gemcutter_seq();
//! let outcome = verify(pool, program, &config);
//! match outcome.verdict {
//!     Verdict::Correct => println!("proved in {} rounds", outcome.stats.rounds),
//!     Verdict::Incorrect { .. } => println!("bug found"),
//!     Verdict::GaveUp(g) => println!("gave up: {g}"),
//! }
//! # }
//! ```

pub mod certify;
pub mod check;
pub mod engine;
pub mod govern;
pub mod interpolate;
pub mod pardfs;
pub mod portfolio;
pub mod proof;
pub mod snapshot;
pub mod supervise;
pub mod trace;
pub mod verify;

pub use certify::{
    check_certificate, CertMutation, CertSpec, Certificate, CertifyMode, CertifyReport, SpecCert,
};
pub use govern::{
    push_give_up_deduped, AttributedGiveUp, Category, FaultKind, FaultPlan, GiveUp, GovernorConfig,
    ResourceGovernor,
};
pub use portfolio::{
    adaptive_verify, default_portfolio, parallel_verify, portfolio_verify, EngineReport,
    EngineStatus, ParallelConfig, ParallelOutcome, PortfolioOutcome,
};
pub use snapshot::{program_fingerprint, Snapshot};
pub use supervise::{
    supervised_parallel_verify, supervised_verify, AttemptReport, RetryPolicy, SuperviseConfig,
    SupervisedOutcome, SupervisedParallelOutcome,
};
pub use verify::{specs_of, verify, OrderSpec, Outcome, RunStats, Verdict, VerifierConfig};
