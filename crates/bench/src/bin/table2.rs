//! **Table 2**: proof size for successfully verified correct programs and
//! time per refinement round for all successfully analysed programs —
//! Automizer vs. five GemCutter variants (portfolio, sleep-only,
//! persistent-only, lockstep, and the multi-threaded shared-proof
//! parallel portfolio).
//!
//! Run: `cargo run --release -p bench --bin table2`

use bench::{run_config, run_parallel, run_portfolio, run_supervised, Aggregate, Run};
use bench_suite::{Expected, Suite};
use gemcutter::govern::Category;
use gemcutter::portfolio::ParallelConfig;
use gemcutter::supervise::RetryPolicy;
use gemcutter::verify::{Verdict, VerifierConfig};

/// DFS-state budget for the supervised column's *first* attempt. Tight
/// enough that the harder corpus programs give up initially, so the
/// escalation ladder (and its recycle hit rate) has something to show.
const SUPERVISED_DFS_BUDGET: u64 = 400;

struct Column {
    name: &'static str,
    runs: Vec<Run>,
}

fn proof_size_row(cols: &[Column], suite: Option<Suite>) -> Vec<f64> {
    cols.iter()
        .map(|c| {
            let agg = Aggregate::of(c.runs.iter(), |r| {
                r.expected == Expected::Safe && suite.is_none_or(|s| r.suite == s)
            });
            if agg.count == 0 {
                f64::NAN
            } else {
                agg.proof_size as f64 / agg.count as f64
            }
        })
        .collect()
}

fn time_per_round_row(cols: &[Column], suite: Option<Suite>) -> Vec<f64> {
    cols.iter()
        .map(|c| {
            let agg = Aggregate::of(c.runs.iter(), |r| suite.is_none_or(|s| r.suite == s));
            if agg.rounds == 0 {
                f64::NAN
            } else {
                agg.time_s / agg.rounds as f64
            }
        })
        .collect()
}

fn print_row(label: &str, values: &[f64], unit: &str) {
    print!("  {label:12}");
    for v in values {
        print!(" {v:>10.3}{unit}");
    }
    println!();
}

/// Count of runs that gave up with `category`, per column. `None` counts
/// give-ups outside the categories listed in the table.
fn give_up_row(cols: &[Column], category: Option<Category>, listed: &[Category]) -> Vec<usize> {
    cols.iter()
        .map(|c| {
            c.runs
                .iter()
                .filter(|r| match (&r.outcome.verdict, category) {
                    (Verdict::GaveUp(g), Some(cat)) => g.category == cat,
                    (Verdict::GaveUp(g), None) => !listed.contains(&g.category),
                    _ => false,
                })
                .count()
        })
        .collect()
}

fn print_count_row(label: &str, values: &[usize]) {
    print!("  {label:16}");
    for v in values {
        print!(" {v:>11}");
    }
    println!();
}

fn main() {
    let corpus = bench::corpus();
    println!("Table 2: proof size and proof-check efficiency per configuration\n");

    let mut tight = VerifierConfig::gemcutter_seq();
    tight.name = "supervised".to_owned();
    tight.govern.dfs_state_budget = Some(SUPERVISED_DFS_BUDGET);
    let policy = RetryPolicy::with_retries(3).escalating_by(4);
    let supervised = run_supervised(&corpus, &tight, policy);

    let cols = vec![
        Column {
            name: "automizer",
            runs: run_config(&corpus, &VerifierConfig::automizer()),
        },
        Column {
            name: "portfolio",
            runs: run_portfolio(&corpus, false)
                .into_iter()
                .map(|(r, _)| r)
                .collect(),
        },
        Column {
            name: "sleep",
            runs: run_config(&corpus, &VerifierConfig::sleep_only()),
        },
        Column {
            name: "persistent",
            runs: run_config(&corpus, &VerifierConfig::persistent_only()),
        },
        Column {
            name: "lockstep",
            runs: run_config(&corpus, &VerifierConfig::gemcutter_lockstep()),
        },
        Column {
            name: "parallel",
            runs: run_parallel(&corpus, &[], &ParallelConfig::default())
                .into_iter()
                .map(|(r, _)| r)
                .collect(),
        },
        Column {
            name: "supervised",
            runs: supervised.iter().map(|s| s.run.clone()).collect(),
        },
    ];

    print!("  {:12}", "");
    for c in &cols {
        print!(" {:>11}", c.name);
    }
    println!();

    println!("Proof size for successfully verified correct programs (avg #assertions)");
    print_row("total", &proof_size_row(&cols, None), " ");
    print_row(
        "- SV-COMP",
        &proof_size_row(&cols, Some(Suite::SvComp)),
        " ",
    );
    print_row("- Weaver", &proof_size_row(&cols, Some(Suite::Weaver)), " ");

    println!("Time per refinement round (in s) for successfully analysed programs");
    print_row("total", &time_per_round_row(&cols, None), "s");
    print_row(
        "- SV-COMP",
        &time_per_round_row(&cols, Some(Suite::SvComp)),
        "s",
    );
    print_row(
        "- Weaver",
        &time_per_round_row(&cols, Some(Suite::Weaver)),
        "s",
    );

    println!("Give-ups per resource category (count of inconclusive runs)");
    let listed = [
        Category::Deadline,
        Category::SimplexPivots,
        Category::DfsStates,
        Category::Rounds,
        Category::UnknownTheory,
    ];
    for cat in listed {
        print_count_row(cat.name(), &give_up_row(&cols, Some(cat), &listed));
    }
    print_count_row("other", &give_up_row(&cols, None, &listed));

    // Restart supervision: retries used and recycle hit rate under a tight
    // first-attempt budget (the `supervised` column above).
    println!();
    println!(
        "Restart supervision (dfs-states budget {SUPERVISED_DFS_BUDGET}, retries {}, escalate {}x)",
        policy.max_retries, policy.step_factor
    );
    let retried: Vec<_> = supervised.iter().filter(|s| s.retries_used > 0).collect();
    let converted = retried.iter().filter(|s| s.run.successful()).count();
    let with_recycling = supervised.iter().filter(|s| s.hit_rate > 0.0).count();
    println!(
        "  programs escalated: {} of {} ({} converted to a conclusive verdict)",
        retried.len(),
        supervised.len(),
        converted
    );
    println!("  programs with recycle hit rate > 0: {with_recycling}");
    println!(
        "  {:24} {:>8} {:>9} {:>8} {:>9}",
        "", "retries", "recycled", "skipped", "hit rate"
    );
    for s in &retried {
        println!(
            "  {:24} {:>8} {:>9} {:>8} {:>8.0}%",
            s.run.name,
            s.retries_used,
            s.recycled,
            s.rounds_skipped,
            s.hit_rate * 100.0
        );
    }

    // Paper shape: the portfolio's average proof size beats the baseline's.
    let total = proof_size_row(&cols, None);
    println!();
    println!(
        "Paper shape: portfolio avg proof size {:.1} vs automizer {:.1} (smaller is the paper's finding)",
        total[1], total[0]
    );
}
