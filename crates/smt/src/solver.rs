//! Lazy DPLL(T): boolean search over the negation-free formula structure
//! with LIA theory checks.
//!
//! Because formulas are *monotone* in their atoms (negation was compiled
//! away at construction, see [`crate::term`]), the boolean search never
//! needs to assert the negation of an atom: branching an atom to `false`
//! merely declines to use it, and any theory model for the atoms branched
//! to `true` satisfies the whole formula. This makes the solver short and
//! obviously sound.

use crate::lia::{check_integer_governed, LiaResult};
use crate::linear::{LinearConstraint, VarId};
use crate::resource::{Category, ResourceGovernor};
use crate::simplex::{check_rational_governed, SimplexResult};
use crate::term::{Term, TermId, TermPool};
use std::collections::HashMap;

/// A satisfying integer assignment. Variables not mentioned by any
/// constraint default to `0`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<VarId, i128>,
}

impl Model {
    /// Creates a model from explicit values.
    pub fn from_values(values: HashMap<VarId, i128>) -> Model {
        Model { values }
    }

    /// The value of `v` (0 when unconstrained).
    pub fn value(&self, v: VarId) -> i128 {
        self.values.get(&v).copied().unwrap_or(0)
    }

    /// Iterates over the explicitly assigned variables.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, i128)> + '_ {
        self.values.iter().map(|(&v, &k)| (v, k))
    }
}

/// Outcome of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// Solver budget exhausted or arithmetic overflow.
    Unknown,
}

impl SatResult {
    /// `true` for [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// `true` for [`SatResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }
}

/// Tunable solver limits and counters.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Branch-and-bound node budget per theory check.
    pub bb_budget: usize,
    /// Maximum DPLL branch nodes before giving up.
    pub dpll_budget: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            bb_budget: 2_000,
            dpll_budget: 100_000,
        }
    }
}

/// Checks satisfiability of the conjunction of `assertions`.
///
/// # Example
///
/// ```
/// use smt::term::TermPool;
/// use smt::solver::check;
///
/// let mut pool = TermPool::new();
/// let x = pool.var("x");
/// let a = pool.ge_const(x, 1);
/// let b = pool.le_const(x, 0);
/// assert!(check(&mut pool, &[a]).is_sat());
/// assert!(check(&mut pool, &[a, b]).is_unsat());
/// ```
pub fn check(pool: &mut TermPool, assertions: &[TermId]) -> SatResult {
    check_with_config(pool, assertions, &SolverConfig::default())
}

/// As [`check`], with explicit limits.
pub fn check_with_config(
    pool: &mut TermPool,
    assertions: &[TermId],
    config: &SolverConfig,
) -> SatResult {
    let formula = pool.and(assertions.iter().copied());
    let governor = pool.governor().clone();
    let mut search = Search {
        pool,
        config,
        budget: config.dpll_budget,
        saw_unknown: false,
        governor,
    };
    let mut fixed = Vec::new();
    match search.dpll(formula, &mut fixed) {
        Some(model) => SatResult::Sat(model),
        None if search.saw_unknown => SatResult::Unknown,
        None => SatResult::Unsat,
    }
}

/// `true` iff `antecedent → consequent` is valid (reported conservatively:
/// `Unknown` counts as *not* entailed).
pub fn entails(pool: &mut TermPool, antecedent: TermId, consequent: TermId) -> bool {
    let neg = pool.not(consequent);
    check(pool, &[antecedent, neg]).is_unsat()
}

/// `true` iff `t` is valid (conservative under `Unknown`).
pub fn is_valid(pool: &mut TermPool, t: TermId) -> bool {
    let neg = pool.not(t);
    check(pool, &[neg]).is_unsat()
}

/// `true` iff `a` and `b` are logically equivalent (conservative).
pub fn equivalent(pool: &mut TermPool, a: TermId, b: TermId) -> bool {
    entails(pool, a, b) && entails(pool, b, a)
}

struct Search<'a> {
    pool: &'a mut TermPool,
    config: &'a SolverConfig,
    budget: usize,
    saw_unknown: bool,
    /// Cloned from the pool once per query; charged per DPLL decision and
    /// forwarded into the theory layers.
    governor: ResourceGovernor,
}

impl Search<'_> {
    /// Recursive DPLL. `fixed` is the conjunction of atoms branched true.
    fn dpll(&mut self, formula: TermId, fixed: &mut Vec<LinearConstraint>) -> Option<Model> {
        if self.budget == 0 || self.governor.charge(Category::DpllDecisions).is_err() {
            self.saw_unknown = true;
            return None;
        }
        self.budget -= 1;
        match self.pool.term(formula) {
            Term::False => None,
            Term::True => {
                match check_integer_governed(fixed, self.config.bb_budget, &self.governor) {
                    LiaResult::Sat(values) => Some(Model::from_values(values)),
                    LiaResult::Unsat => None,
                    LiaResult::Unknown => {
                        self.saw_unknown = true;
                        None
                    }
                }
            }
            _ => {
                // Unit propagation: conjuncts that are atoms must hold.
                if let Term::And(children) = self.pool.term(formula) {
                    let units: Vec<TermId> = children
                        .iter()
                        .copied()
                        .filter(|&c| matches!(self.pool.term(c), Term::Atom(_)))
                        .collect();
                    if !units.is_empty() {
                        let saved = fixed.len();
                        let mut f = formula;
                        for u in units {
                            if let Term::Atom(c) = self.pool.term(u) {
                                fixed.push(c.clone());
                            }
                            f = assign(self.pool, f, u, true);
                        }
                        let result = if self.prune(fixed) {
                            None
                        } else {
                            self.dpll(f, fixed)
                        };
                        fixed.truncate(saved);
                        return result;
                    }
                }
                // Branch on the first atom in the formula.
                let atom =
                    first_atom(self.pool, formula).expect("non-constant formula has an atom");
                let Term::Atom(constraint) = self.pool.term(atom).clone() else {
                    unreachable!("first_atom returns an atom");
                };
                // Try atom = true.
                let f_true = assign(self.pool, formula, atom, true);
                fixed.push(constraint);
                if !self.prune(fixed) {
                    if let Some(m) = self.dpll(f_true, fixed) {
                        fixed.pop();
                        return Some(m);
                    }
                }
                fixed.pop();
                // Try atom = false (monotone: no negation needed).
                let f_false = assign(self.pool, formula, atom, false);
                self.dpll(f_false, fixed)
            }
        }
    }

    /// Cheap rational pruning of the current partial conjunction.
    fn prune(&mut self, fixed: &[LinearConstraint]) -> bool {
        matches!(
            check_rational_governed(fixed, &self.governor),
            SimplexResult::Unsat
        )
    }
}

/// Replaces every occurrence of the atom `atom` in `formula` by the given
/// constant and re-simplifies.
fn assign(pool: &mut TermPool, formula: TermId, atom: TermId, value: bool) -> TermId {
    let replacement = if value {
        TermPool::TRUE
    } else {
        TermPool::FALSE
    };
    let mut memo = HashMap::new();
    assign_rec(pool, formula, atom, replacement, &mut memo)
}

fn assign_rec(
    pool: &mut TermPool,
    formula: TermId,
    atom: TermId,
    replacement: TermId,
    memo: &mut HashMap<TermId, TermId>,
) -> TermId {
    if formula == atom {
        return replacement;
    }
    if let Some(&r) = memo.get(&formula) {
        return r;
    }
    let result = match pool.term(formula).clone() {
        Term::True | Term::False | Term::Atom(_) => formula,
        Term::And(children) => {
            let mapped: Vec<TermId> = children
                .iter()
                .map(|&c| assign_rec(pool, c, atom, replacement, memo))
                .collect();
            pool.and(mapped)
        }
        Term::Or(children) => {
            let mapped: Vec<TermId> = children
                .iter()
                .map(|&c| assign_rec(pool, c, atom, replacement, memo))
                .collect();
            pool.or(mapped)
        }
    };
    memo.insert(formula, result);
    result
}

/// The first atom (in DFS order) of `formula`, if any.
fn first_atom(pool: &TermPool, formula: TermId) -> Option<TermId> {
    match pool.term(formula) {
        Term::True | Term::False => None,
        Term::Atom(_) => Some(formula),
        Term::And(children) | Term::Or(children) => {
            children.iter().find_map(|&c| first_atom(pool, c))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;

    #[test]
    fn conjunction_sat_and_model() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let y = p.var("y");
        let a = p.ge_const(x, 3);
        let sum = LinExpr::var(x).add(&LinExpr::var(y));
        let b = p.eq(&sum, &LinExpr::constant(5));
        match check(&mut p, &[a, b]) {
            SatResult::Sat(m) => {
                assert!(m.value(x) >= 3);
                assert_eq!(m.value(x) + m.value(y), 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disjunction_explores_branches() {
        let mut p = TermPool::new();
        let x = p.var("x");
        // (x ≤ 0 ∨ x ≥ 10) ∧ x ≥ 5  → x ≥ 10 branch.
        let low = p.le_const(x, 0);
        let high = p.ge_const(x, 10);
        let disj = p.or([low, high]);
        let five = p.ge_const(x, 5);
        match check(&mut p, &[disj, five]) {
            SatResult::Sat(m) => assert!(m.value(x) >= 10),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsat_through_disjunction() {
        let mut p = TermPool::new();
        let x = p.var("x");
        // (x ≤ 0 ∨ x ≥ 10) ∧ 3 ≤ x ≤ 7 → unsat.
        let low = p.le_const(x, 0);
        let high = p.ge_const(x, 10);
        let disj = p.or([low, high]);
        let a = p.ge_const(x, 3);
        let b = p.le_const(x, 7);
        assert!(check(&mut p, &[disj, a, b]).is_unsat());
    }

    #[test]
    fn model_satisfies_formula_eval() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let y = p.var("y");
        let a = p.ne(&LinExpr::var(x), &LinExpr::var(y));
        let b = p.le_const(x, 2);
        let c = p.ge_const(y, 2);
        let f = p.and([a, b, c]);
        match check(&mut p, &[f]) {
            SatResult::Sat(m) => assert!(p.eval(f, &|v| m.value(v))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn entailment_and_validity() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let ge5 = p.ge_const(x, 5);
        let ge3 = p.ge_const(x, 3);
        assert!(entails(&mut p, ge5, ge3));
        assert!(!entails(&mut p, ge3, ge5));
        let taut = p.or([ge3, TermPool::TRUE]);
        assert!(is_valid(&mut p, taut));
        let lt3 = p.not(ge3);
        let excluded_middle = p.or([ge3, lt3]);
        assert!(is_valid(&mut p, excluded_middle));
    }

    #[test]
    fn equivalence() {
        let mut p = TermPool::new();
        let x = p.var("x");
        // x ≥ 1 ⇔ x > 0 over ℤ (the pool normalizes both to the same atom,
        // so also test a structurally different pair).
        let a = p.ge_const(x, 1);
        let b = p.gt(&LinExpr::var(x), &LinExpr::constant(0));
        assert!(equivalent(&mut p, a, b));
        let c = p.ge_const(x, 2);
        assert!(!equivalent(&mut p, a, c));
    }

    #[test]
    fn empty_assertions_are_sat() {
        let mut p = TermPool::new();
        assert!(check(&mut p, &[]).is_sat());
    }

    #[test]
    fn false_assertion_unsat() {
        let mut p = TermPool::new();
        assert!(check(&mut p, &[TermPool::FALSE]).is_unsat());
    }

    #[test]
    fn nested_disjunction_of_equalities() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let y = p.var("y");
        // (x = 1 ∨ x = 2) ∧ (y = x + 10) ∧ y ≥ 12 → x = 2, y = 12.
        let x1 = p.eq_const(x, 1);
        let x2 = p.eq_const(x, 2);
        let xd = p.or([x1, x2]);
        let lhs = LinExpr::var(y);
        let rhs = LinExpr::var(x).add(&LinExpr::constant(10));
        let link = p.eq(&lhs, &rhs);
        let y12 = p.ge_const(y, 12);
        match check(&mut p, &[xd, link, y12]) {
            SatResult::Sat(m) => {
                assert_eq!(m.value(x), 2);
                assert_eq!(m.value(y), 12);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pool_governor_interrupts_query() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a = p.ge_const(x, 0);
        let b = p.le_const(x, 10);
        p.set_governor(
            ResourceGovernor::builder()
                .budget(Category::DpllDecisions, 0)
                .build(),
        );
        assert_eq!(check(&mut p, &[a, b]), SatResult::Unknown);
        assert_eq!(
            p.governor().give_up().unwrap().category,
            Category::DpllDecisions
        );
        // Entailment degrades conservatively: a tripped governor can only
        // make `entails` answer "not entailed", never "entailed".
        assert!(!entails(&mut p, a, a));
        p.set_governor(ResourceGovernor::unlimited());
        assert!(check(&mut p, &[a, b]).is_sat());
    }

    #[test]
    fn tiny_budget_reports_unknown() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a = p.ge_const(x, 0);
        let b = p.le_const(x, 10);
        let cfg = SolverConfig {
            bb_budget: 2000,
            dpll_budget: 0,
        };
        assert_eq!(check_with_config(&mut p, &[a, b], &cfg), SatResult::Unknown);
    }
}
