//! Corpus sweep: verify every benchmark with the main configurations and
//! report verdict agreement with ground truth and per-program statistics.
//! A sanity harness rather than a paper artifact; the table/figure
//! binaries build on the same corpus.
//!
//! Run: `cargo run --release -p bench --bin corpus_check`

use bench::run_config;
use gemcutter::verify::{Verdict, VerifierConfig};

fn main() {
    let corpus = bench::corpus();
    let configs = [VerifierConfig::gemcutter_seq(), VerifierConfig::automizer()];
    let mut unknowns = 0usize;
    for config in &configs {
        for run in run_config(&corpus, config) {
            let verdict = match (&run.outcome.verdict, run.successful()) {
                (_, true) => "OK",
                (Verdict::GaveUp(_), _) => {
                    unknowns += 1;
                    "UNKNOWN"
                }
                _ => unreachable!("run_config asserts against wrong verdicts"),
            };
            println!(
                "{:24} {:16} {:8} rounds={:3} proof={:3} visited={:8} t={}",
                run.name,
                run.config,
                verdict,
                run.outcome.stats.rounds,
                run.outcome.stats.proof_size,
                run.memory(),
                bench::fmt_time(run.time_s()),
            );
        }
    }
    println!("\nNo wrong verdicts; {unknowns} unknown verdicts across all configurations.");
}
