//! Run-scoped resource governance: wall-clock deadlines, per-category step
//! budgets, cooperative cancellation, and deterministic fault injection.
//!
//! A [`ResourceGovernor`] is a cheap, shareable handle (an `Arc` clone)
//! threaded through every long-running loop of the solver stack and the
//! proof check. Each loop iteration calls [`ResourceGovernor::charge`] with
//! its [`Category`]; the first exhausted budget, passed deadline, raised
//! cancellation flag or matching injected fault *trips* the governor, and
//! every subsequent charge fails fast — unwinding recursive searches
//! mid-query without any extra plumbing. The recorded [`GiveUp`] explains
//! the first cause, so an `Unknown` verdict bubbling out of the solver can
//! be attributed precisely at the top of the stack.
//!
//! Soundness contract: a failed charge must only ever make a caller *more*
//! conservative (`Unknown`, "dependent", "cannot refute"). The governor
//! never influences which model or certificate is produced — it only
//! decides whether a computation is allowed to continue.
//!
//! Fault injection ([`FaultPlan`]) is keyed by `(category, nth charge)`
//! pairs — plain counting, no RNG — so a faulted run replays bit-for-bit.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// What kind of work (or failure cause) a charge or give-up refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Simplex pivot steps ([`crate::simplex`]).
    SimplexPivots,
    /// Boolean search decisions ([`crate::solver`]); charged by both the
    /// legacy DPLL recursion (per branch node) and the CDCL engine (per
    /// decision), so step budgets and fault plans keyed on this category
    /// stay meaningful across `--solver` modes.
    DpllDecisions,
    /// CDCL conflict analyses ([`crate::cdcl`]): one charge per learned
    /// clause. Only the CDCL engine charges this category.
    CdclConflicts,
    /// Branch-and-bound nodes ([`crate::lia`]).
    BranchNodes,
    /// Proof-check DFS states (the verifier's Algorithm 2 loop).
    DfsStates,
    /// Refinement rounds.
    Rounds,
    /// Wall-clock deadline exceeded.
    Deadline,
    /// Cooperative cancellation (e.g. another portfolio member concluded).
    Cancelled,
    /// The theory solver returned `Unknown` outside governor control
    /// (legacy per-query budget or `i128` overflow).
    UnknownTheory,
    /// Refinement reproduced a previously seen counterexample.
    NonProgress,
    /// A deterministic injected fault ([`FaultPlan`]).
    InjectedFault,
}

/// Number of categories (array sizing).
const NCAT: usize = 11;

impl Category {
    /// All categories, in declaration order.
    pub const ALL: [Category; NCAT] = [
        Category::SimplexPivots,
        Category::DpllDecisions,
        Category::CdclConflicts,
        Category::BranchNodes,
        Category::DfsStates,
        Category::Rounds,
        Category::Deadline,
        Category::Cancelled,
        Category::UnknownTheory,
        Category::NonProgress,
        Category::InjectedFault,
    ];

    /// Dense index for per-category arrays.
    pub fn index(self) -> usize {
        match self {
            Category::SimplexPivots => 0,
            Category::DpllDecisions => 1,
            Category::CdclConflicts => 2,
            Category::BranchNodes => 3,
            Category::DfsStates => 4,
            Category::Rounds => 5,
            Category::Deadline => 6,
            Category::Cancelled => 7,
            Category::UnknownTheory => 8,
            Category::NonProgress => 9,
            Category::InjectedFault => 10,
        }
    }

    /// Stable kebab-case name (used in CLI flags and bench tables).
    pub fn name(self) -> &'static str {
        match self {
            Category::SimplexPivots => "simplex-pivots",
            Category::DpllDecisions => "dpll-decisions",
            Category::CdclConflicts => "cdcl-conflicts",
            Category::BranchNodes => "branch-nodes",
            Category::DfsStates => "dfs-states",
            Category::Rounds => "rounds",
            Category::Deadline => "deadline",
            Category::Cancelled => "cancelled",
            Category::UnknownTheory => "unknown-theory",
            Category::NonProgress => "non-progress",
            Category::InjectedFault => "injected-fault",
        }
    }

    /// Parses a [`Category::name`] back.
    pub fn parse(s: &str) -> Option<Category> {
        Category::ALL.into_iter().find(|c| c.name() == s)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured give-up: the first cause that tripped the governor, or a
/// solver-level incompleteness attributed by the caller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GiveUp {
    /// The failure category.
    pub category: Category,
    /// Human-readable detail.
    pub reason: String,
}

impl GiveUp {
    /// Creates a give-up record.
    pub fn new(category: Category, reason: impl Into<String>) -> GiveUp {
        GiveUp {
            category,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for GiveUp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.category, self.reason)
    }
}

/// What an injected fault does when its site is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Trip with [`Category::InjectedFault`] — the query degrades to
    /// `Unknown` and the run to `GaveUp`.
    Unknown,
    /// Trip with [`Category::Deadline`], simulating a timeout.
    Timeout,
    /// Panic (exercises the `catch_unwind` containment layers).
    Panic,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Unknown => "unknown",
            FaultKind::Timeout => "timeout",
            FaultKind::Panic => "panic",
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "unknown" => Some(FaultKind::Unknown),
            "timeout" => Some(FaultKind::Timeout),
            "panic" => Some(FaultKind::Panic),
            _ => None,
        }
    }
}

/// One injection site: fire `kind` at the `at`-th charge (1-based) of
/// `category`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSite {
    /// Which charge counter the site watches.
    pub category: Category,
    /// 1-based charge index at which the fault fires.
    pub at: u64,
    /// What happens when it fires.
    pub kind: FaultKind,
}

/// A deterministic fault-injection plan: a set of [`FaultSite`]s keyed by
/// per-category charge indices. No randomness is involved, so the same
/// plan against the same (deterministic) run injects at exactly the same
/// program points every time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    sites: Vec<FaultSite>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a site; builder style.
    pub fn with(mut self, category: Category, at: u64, kind: FaultKind) -> FaultPlan {
        self.sites.push(FaultSite { category, at, kind });
        self
    }

    /// `true` when no site is registered.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The registered sites.
    pub fn sites(&self) -> &[FaultSite] {
        &self.sites
    }

    /// Parses a comma-separated plan spec: `CATEGORY:N:KIND`, e.g.
    /// `simplex-pivots:100:unknown,dfs-states:5:panic`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let fields: Vec<&str> = part.trim().split(':').collect();
            let [cat, at, kind] = fields[..] else {
                return Err(format!("fault site `{part}` is not CATEGORY:N:KIND"));
            };
            let category = Category::parse(cat)
                .ok_or_else(|| format!("unknown fault category `{cat}` in `{part}`"))?;
            let at: u64 = at
                .parse()
                .map_err(|_| format!("invalid charge index in `{part}`"))?;
            if at == 0 {
                return Err(format!("charge index in `{part}` must be ≥ 1"));
            }
            let kind = FaultKind::parse(kind)
                .ok_or_else(|| format!("unknown fault kind `{kind}` in `{part}`"))?;
            plan.sites.push(FaultSite { category, at, kind });
        }
        Ok(plan)
    }

    /// Renders the plan back into its `parse` syntax.
    pub fn spec(&self) -> String {
        self.sites
            .iter()
            .map(|s| format!("{}:{}:{}", s.category, s.at, s.kind.name()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// How many charges pass between two `Instant::now()` deadline polls.
/// Solver-core charges arrive at well over 10 kHz, so a stride of 64 keeps
/// the deadline overshoot in the low milliseconds while amortizing the
/// clock read.
const DEADLINE_POLL_STRIDE: u64 = 64;

#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    budgets: [u64; NCAT],
    counters: [AtomicU64; NCAT],
    /// Global charge counter driving the strided deadline poll.
    ticks: AtomicU64,
    cancel: Arc<AtomicBool>,
    tripped: AtomicBool,
    trip_cell: OnceLock<GiveUp>,
    /// Injection sites, indexed by category.
    faults: [Vec<(u64, FaultKind)>; NCAT],
}

/// The shareable governor handle. `Clone` is an `Arc` clone: all clones
/// share counters, the trip state and the cancellation flag. The
/// [`ResourceGovernor::unlimited`] handle has no state at all and makes
/// every charge a no-op, so ungoverned entry points stay allocation-free.
#[derive(Clone, Debug, Default)]
pub struct ResourceGovernor {
    inner: Option<Arc<Inner>>,
}

impl ResourceGovernor {
    /// The no-op governor: every charge succeeds, nothing is counted.
    pub fn unlimited() -> ResourceGovernor {
        ResourceGovernor { inner: None }
    }

    /// Starts building a real (counting) governor.
    pub fn builder() -> GovernorBuilder {
        GovernorBuilder::default()
    }

    /// `true` when this handle actually governs (is not
    /// [`ResourceGovernor::unlimited`]).
    pub fn is_governed(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one unit of work in `category`. `Err` means the governor is
    /// tripped (now or earlier); the caller must abandon the computation
    /// and degrade conservatively.
    #[inline]
    pub fn charge(&self, category: Category) -> Result<(), GiveUp> {
        match &self.inner {
            None => Ok(()),
            Some(inner) => inner.charge(category),
        }
    }

    /// Trips the governor with an explicit cause (first cause wins).
    /// Returns the recorded give-up.
    pub fn trip(&self, give_up: GiveUp) -> GiveUp {
        match &self.inner {
            None => give_up,
            Some(inner) => inner.trip(give_up),
        }
    }

    /// The first recorded give-up, if the governor has tripped.
    pub fn give_up(&self) -> Option<GiveUp> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.trip_cell.get().cloned())
    }

    /// `true` once any charge failed or [`ResourceGovernor::trip`] ran.
    pub fn is_tripped(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.tripped.load(Ordering::Relaxed))
    }

    /// Raises the cooperative cancellation flag shared by all clones (and
    /// any governor built from the same token).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancel.store(true, Ordering::Relaxed);
        }
    }

    /// The shared cancellation token, if governed.
    pub fn cancel_token(&self) -> Option<Arc<AtomicBool>> {
        self.inner.as_ref().map(|inner| Arc::clone(&inner.cancel))
    }

    /// Total charges recorded for `category`.
    pub fn count(&self, category: Category) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner.counters[category.index()].load(Ordering::Relaxed)
        })
    }

    /// The absolute deadline, if one was configured.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|inner| inner.deadline)
    }

    /// Polls the deadline and cancellation flag immediately (no stride, no
    /// counting) — for coarse outer loops that want tight latency.
    pub fn poll(&self) -> Result<(), GiveUp> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.tripped.load(Ordering::Relaxed) {
            return Err(inner.current_give_up());
        }
        if inner.cancel.load(Ordering::Relaxed) {
            return Err(inner.trip(GiveUp::new(
                Category::Cancelled,
                "cancellation requested (another engine concluded or the run was stopped)",
            )));
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(inner.trip(GiveUp::new(
                    Category::Deadline,
                    "wall-clock deadline exceeded",
                )));
            }
        }
        Ok(())
    }
}

impl Inner {
    fn current_give_up(&self) -> GiveUp {
        self.trip_cell
            .get()
            .cloned()
            .unwrap_or_else(|| GiveUp::new(Category::Cancelled, "governor tripped"))
    }

    fn trip(&self, give_up: GiveUp) -> GiveUp {
        // First cause wins; later trips read the original record.
        let _ = self.trip_cell.set(give_up);
        self.tripped.store(true, Ordering::Release);
        self.current_give_up()
    }

    fn charge(&self, category: Category) -> Result<(), GiveUp> {
        if self.tripped.load(Ordering::Relaxed) {
            return Err(self.current_give_up());
        }
        let i = category.index();
        let n = self.counters[i].fetch_add(1, Ordering::Relaxed) + 1;
        if !self.faults[i].is_empty() {
            if let Some(&(_, kind)) = self.faults[i].iter().find(|&&(at, _)| at == n) {
                return Err(self.inject(category, n, kind));
            }
        }
        if n > self.budgets[i] {
            return Err(self.trip(GiveUp::new(
                category,
                format!("{category} budget exhausted after {n} steps"),
            )));
        }
        if self.cancel.load(Ordering::Relaxed) {
            return Err(self.trip(GiveUp::new(
                Category::Cancelled,
                "cancellation requested (another engine concluded or the run was stopped)",
            )));
        }
        if let Some(deadline) = self.deadline {
            let t = self.ticks.fetch_add(1, Ordering::Relaxed);
            if t.is_multiple_of(DEADLINE_POLL_STRIDE) && Instant::now() >= deadline {
                return Err(self.trip(GiveUp::new(
                    Category::Deadline,
                    "wall-clock deadline exceeded",
                )));
            }
        }
        Ok(())
    }

    fn inject(&self, category: Category, n: u64, kind: FaultKind) -> GiveUp {
        match kind {
            FaultKind::Unknown => self.trip(GiveUp::new(
                Category::InjectedFault,
                format!("injected unknown at {category} charge {n}"),
            )),
            FaultKind::Timeout => self.trip(GiveUp::new(
                Category::Deadline,
                format!("injected timeout at {category} charge {n}"),
            )),
            FaultKind::Panic => {
                self.trip(GiveUp::new(
                    Category::InjectedFault,
                    format!("injected panic at {category} charge {n}"),
                ));
                panic!("injected panic at {category} charge {n}");
            }
        }
    }
}

/// Builder for a governed [`ResourceGovernor`].
#[derive(Clone, Debug, Default)]
pub struct GovernorBuilder {
    deadline: Option<Duration>,
    budgets: Vec<(Category, u64)>,
    cancel: Option<Arc<AtomicBool>>,
    plan: FaultPlan,
}

impl GovernorBuilder {
    /// Sets a wall-clock deadline, measured from [`GovernorBuilder::build`].
    pub fn deadline(mut self, d: Duration) -> GovernorBuilder {
        self.deadline = Some(d);
        self
    }

    /// As [`GovernorBuilder::deadline`], tolerating `None`.
    pub fn deadline_opt(mut self, d: Option<Duration>) -> GovernorBuilder {
        self.deadline = d;
        self
    }

    /// Caps `category` at `budget` total charges across the run.
    pub fn budget(mut self, category: Category, budget: u64) -> GovernorBuilder {
        self.budgets.push((category, budget));
        self
    }

    /// Shares an external cancellation token (the portfolio stop flag).
    pub fn cancel_token(mut self, token: Arc<AtomicBool>) -> GovernorBuilder {
        self.cancel = Some(token);
        self
    }

    /// Installs a deterministic fault plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> GovernorBuilder {
        self.plan = plan;
        self
    }

    /// Builds the governor; a configured deadline starts counting now.
    pub fn build(self) -> ResourceGovernor {
        let mut budgets = [u64::MAX; NCAT];
        for (c, b) in self.budgets {
            budgets[c.index()] = b;
        }
        let mut faults: [Vec<(u64, FaultKind)>; NCAT] = Default::default();
        for site in self.plan.sites() {
            faults[site.category.index()].push((site.at, site.kind));
        }
        ResourceGovernor {
            inner: Some(Arc::new(Inner {
                deadline: self.deadline.map(|d| Instant::now() + d),
                budgets,
                counters: Default::default(),
                ticks: AtomicU64::new(1),
                cancel: self.cancel.unwrap_or_default(),
                tripped: AtomicBool::new(false),
                trip_cell: OnceLock::new(),
                faults,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_a_noop() {
        let g = ResourceGovernor::unlimited();
        for _ in 0..10_000 {
            assert!(g.charge(Category::SimplexPivots).is_ok());
        }
        assert!(!g.is_governed());
        assert!(!g.is_tripped());
        assert_eq!(g.count(Category::SimplexPivots), 0);
    }

    #[test]
    fn budget_trips_and_sticks() {
        let g = ResourceGovernor::builder()
            .budget(Category::SimplexPivots, 5)
            .build();
        for _ in 0..5 {
            assert!(g.charge(Category::SimplexPivots).is_ok());
        }
        let e = g.charge(Category::SimplexPivots).unwrap_err();
        assert_eq!(e.category, Category::SimplexPivots);
        // Sticky: every category now fails fast with the original cause.
        let e2 = g.charge(Category::DpllDecisions).unwrap_err();
        assert_eq!(e2, e);
        assert_eq!(g.give_up(), Some(e));
    }

    #[test]
    fn first_trip_wins() {
        let g = ResourceGovernor::builder()
            .budget(Category::BranchNodes, 1)
            .build();
        assert!(g.charge(Category::BranchNodes).is_ok());
        let first = g.charge(Category::BranchNodes).unwrap_err();
        let later = g.trip(GiveUp::new(Category::Deadline, "late"));
        assert_eq!(later, first, "an earlier trip is never overwritten");
    }

    #[test]
    fn cancellation_is_shared() {
        let token = Arc::new(AtomicBool::new(false));
        let g = ResourceGovernor::builder()
            .cancel_token(Arc::clone(&token))
            .build();
        let clone = g.clone();
        assert!(clone.charge(Category::DfsStates).is_ok());
        token.store(true, Ordering::Relaxed);
        let e = clone.charge(Category::DfsStates).unwrap_err();
        assert_eq!(e.category, Category::Cancelled);
        assert!(g.is_tripped(), "clones share the trip state");
    }

    #[test]
    fn zero_deadline_trips_via_poll_and_charge() {
        let g = ResourceGovernor::builder().deadline(Duration::ZERO).build();
        assert_eq!(g.poll().unwrap_err().category, Category::Deadline);
        let g2 = ResourceGovernor::builder().deadline(Duration::ZERO).build();
        // The strided poll fires within one stride of charges.
        let mut tripped = None;
        for _ in 0..(DEADLINE_POLL_STRIDE + 1) {
            if let Err(e) = g2.charge(Category::DpllDecisions) {
                tripped = Some(e);
                break;
            }
        }
        assert_eq!(tripped.unwrap().category, Category::Deadline);
    }

    #[test]
    fn fault_plan_fires_at_exact_index() {
        let plan = FaultPlan::new().with(Category::BranchNodes, 3, FaultKind::Unknown);
        let g = ResourceGovernor::builder().fault_plan(plan).build();
        assert!(g.charge(Category::BranchNodes).is_ok());
        assert!(g.charge(Category::BranchNodes).is_ok());
        let e = g.charge(Category::BranchNodes).unwrap_err();
        assert_eq!(e.category, Category::InjectedFault);
        assert!(e.reason.contains("charge 3"), "{e}");
    }

    #[test]
    fn injected_timeout_reads_as_deadline() {
        let plan = FaultPlan::new().with(Category::DfsStates, 1, FaultKind::Timeout);
        let g = ResourceGovernor::builder().fault_plan(plan).build();
        let e = g.charge(Category::DfsStates).unwrap_err();
        assert_eq!(e.category, Category::Deadline);
    }

    #[test]
    fn injected_panic_panics_and_trips() {
        let plan = FaultPlan::new().with(Category::DpllDecisions, 2, FaultKind::Panic);
        let g = ResourceGovernor::builder().fault_plan(plan).build();
        assert!(g.charge(Category::DpllDecisions).is_ok());
        let g2 = g.clone();
        let result = std::panic::catch_unwind(move || {
            let _ = g2.charge(Category::DpllDecisions);
        });
        assert!(result.is_err());
        assert_eq!(g.give_up().unwrap().category, Category::InjectedFault);
    }

    #[test]
    fn plan_spec_round_trip() {
        let spec = "simplex-pivots:100:unknown,dfs-states:5:panic,rounds:2:timeout";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.sites().len(), 3);
        assert_eq!(plan.spec(), spec);
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        assert!(FaultPlan::parse("bogus:1:unknown").is_err());
        assert!(FaultPlan::parse("rounds:0:unknown").is_err(), "1-based");
        assert!(FaultPlan::parse("rounds:1:explode").is_err());
        assert!(FaultPlan::parse("rounds1unknown").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn counters_are_observable() {
        let g = ResourceGovernor::builder().build();
        for _ in 0..7 {
            g.charge(Category::SimplexPivots).unwrap();
        }
        for _ in 0..3 {
            g.charge(Category::DfsStates).unwrap();
        }
        assert_eq!(g.count(Category::SimplexPivots), 7);
        assert_eq!(g.count(Category::DfsStates), 3);
        assert_eq!(g.count(Category::Rounds), 0);
    }

    #[test]
    fn category_name_round_trip() {
        for c in Category::ALL {
            assert_eq!(Category::parse(c.name()), Some(c));
        }
        assert_eq!(Category::parse("nope"), None);
    }
}
