//! **Portfolio scaling**: wall-clock of the multi-threaded shared-proof
//! portfolio ([`gemcutter::portfolio::parallel_verify`]) at 1, 2 and 4
//! engines vs. the single-threaded adaptive portfolio on the multi-round
//! corpus benchmarks (those where refinement needs several rounds, so
//! there are assertions worth sharing).
//!
//! Run: `cargo run --release -p bench --bin portfolio_scaling`
//! (`SEQVER_QUICK=1` restricts to the small instances.)

use gemcutter::govern::Category;
use gemcutter::portfolio::{adaptive_verify, default_portfolio, parallel_verify, ParallelConfig};
use gemcutter::verify::Verdict;
use smt::term::TermPool;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Engine counts to scale over (prefixes of the §8 portfolio).
const ENGINE_COUNTS: [usize; 3] = [1, 2, 4];

/// A benchmark is "multi-round" when the adaptive baseline needs at least
/// this many refinement rounds — otherwise there is nothing to parallelize.
const MIN_ROUNDS: usize = 4;

fn main() {
    let corpus = bench::corpus();
    let configs = default_portfolio();
    println!("Portfolio scaling: adaptive (1 thread) vs parallel (n threads)\n");
    print!("  {:24} {:>9} {:>7}", "benchmark", "adaptive", "rounds");
    for n in ENGINE_COUNTS {
        print!(" {:>11}", format!("par({n})"));
    }
    println!(" {:>9} {:>8} {:>16}", "speedup", "qc-hit", "give-up");

    let mut parallel4_wins = 0usize;
    let mut measured = 0usize;
    let mut give_ups: BTreeMap<Category, usize> = BTreeMap::new();
    for b in &corpus {
        // Baseline: single-threaded adaptive portfolio over a shared proof.
        let mut pool = TermPool::new();
        let p = b.compile(&mut pool);
        let t0 = Instant::now();
        let (adaptive, _) = adaptive_verify(&mut pool, &p, &configs, 600);
        let adaptive_time = t0.elapsed();
        if let Verdict::GaveUp(g) = &adaptive.verdict {
            // Inconclusive: record the resource category instead of timings.
            *give_ups.entry(g.category).or_insert(0) += 1;
            let dashes = ENGINE_COUNTS.map(|_| format!(" {:>11}", "-")).concat();
            println!(
                "  {:24} {:>9} {:>7}{dashes} {:>9} {:>8} {:>16}",
                b.name,
                "-",
                adaptive.stats.rounds,
                "-",
                "-",
                g.category.name()
            );
            continue;
        }
        if adaptive.stats.rounds < MIN_ROUNDS {
            continue; // trivial: no sharing to measure
        }
        measured += 1;

        let mut times: Vec<Duration> = Vec::new();
        // Hit rate of the widest parallel run: workers share one cache, so
        // this shows the cross-engine reuse the scaling column buys.
        let mut widest_hit_rate = f64::NAN;
        for &n in &ENGINE_COUNTS {
            let mut pool = TermPool::new();
            let p = b.compile(&mut pool);
            let t0 = Instant::now();
            let result = parallel_verify(&pool, &p, &configs[..n], &ParallelConfig::default());
            times.push(t0.elapsed());
            widest_hit_rate = result.outcome.stats.qcache_hit_rate();
            assert_eq!(
                result.outcome.verdict.is_correct(),
                adaptive.verdict.is_correct(),
                "parallel({n}) disagrees with adaptive on {}",
                b.name
            );
        }
        let par4 = *times.last().expect("nonempty");
        if par4 < adaptive_time {
            parallel4_wins += 1;
        }
        print!(
            "  {:24} {:>8.1}ms {:>7}",
            b.name,
            adaptive_time.as_secs_f64() * 1e3,
            adaptive.stats.rounds
        );
        for t in &times {
            print!(" {:>9.1}ms", t.as_secs_f64() * 1e3);
        }
        println!(
            " {:>8.2}x {:>7.0}% {:>16}",
            adaptive_time.as_secs_f64() / par4.as_secs_f64().max(1e-9),
            widest_hit_rate * 100.0,
            "-"
        );
    }
    println!();
    if give_ups.is_empty() {
        println!("give-ups by category: none");
    } else {
        let tally: Vec<String> = give_ups
            .iter()
            .map(|(cat, n)| format!("{}={n}", cat.name()))
            .collect();
        println!("give-ups by category: {}", tally.join(" "));
    }
    println!(
        "parallel(4) beat the single-threaded adaptive portfolio on {parallel4_wins}/{measured} multi-round benchmarks"
    );
    assert!(
        measured == 0 || parallel4_wins > 0,
        "expected parallel(4) to win at least one multi-round benchmark"
    );
}
