//! A resumable, single-round verification engine.
//!
//! [`Engine`] packages the per-order state of the refinement loop (the
//! preference order, commutativity oracle, persistent sets and the §7.2
//! useless-state cache) and exposes one refinement round at a time. The
//! plain loop ([`crate::verify::verify`]) drives a single engine to completion;
//! the **shared-proof adaptive portfolio**
//! ([`crate::portfolio::adaptive_verify`]) interleaves rounds of several
//! engines over a *common* [`ProofAutomaton`] — assertions discovered
//! under one preference order are program facts and immediately benefit
//! every other order. This realizes the direction sketched in the paper's
//! §8 Limitations ("dynamically adjust a choice of a preference order
//! based on partial verification efforts").

use crate::certify::SpecCert;
use crate::check::{record_reduction, CheckConfig, CheckResult, CheckStats, UselessCache};
use crate::govern::{Category, GiveUp};
use crate::interpolate::{
    analyze_trace_with_mode, InterpolationMode, InterpolationStats, TraceResult,
};
use crate::pardfs::{routed_check_proof, ParDfs};
use crate::proof::ProofAutomaton;
use crate::verify::{OrderSpec, VerifierConfig};
use program::commutativity::CommutativityOracle;
use program::concurrent::{LetterId, Program, Spec};
use reduction::order::PreferenceOrder;
use reduction::persistent::PersistentSets;
use smt::term::{TermId, TermPool};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};

/// Outcome of a single refinement round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoundOutcome {
    /// The proof covers this engine's reduction: the program is correct.
    Proven,
    /// A feasible violating trace.
    Bug(Vec<LetterId>),
    /// The counterexample was refuted; new assertions were added.
    Refined,
    /// This engine cannot continue (budget, solver incompleteness,
    /// deadline, injected fault, …). The give-up carries the category.
    GaveUp(GiveUp),
    /// The round was aborted by the shared cancellation flag (another
    /// portfolio member already concluded).
    Cancelled,
}

/// A bounded memory of recently seen counterexample traces.
///
/// A refinement round that reproduces *any* recently seen trace is stuck:
/// the proof grew but the preference order keeps steering the check into a
/// cycle of counterexamples it cannot refute further. Comparing only
/// against the immediately preceding trace misses period-2 (and longer)
/// cycles, so we keep a bounded set of trace hashes.
#[derive(Clone, Debug, Default)]
pub struct TraceHistory {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
}

/// How many recent traces a [`TraceHistory`] remembers.
const TRACE_HISTORY_CAPACITY: usize = 64;

impl TraceHistory {
    /// An empty history.
    pub fn new() -> TraceHistory {
        TraceHistory::default()
    }

    /// Records `trace`; returns `true` iff it was already in the history
    /// (i.e. refinement is cycling). Evicts the oldest entry beyond
    /// [`TRACE_HISTORY_CAPACITY`].
    pub fn record(&mut self, trace: &[LetterId]) -> bool {
        let mut hasher = DefaultHasher::new();
        trace.hash(&mut hasher);
        let h = hasher.finish();
        if !self.seen.insert(h) {
            return true;
        }
        self.order.push_back(h);
        if self.order.len() > TRACE_HISTORY_CAPACITY {
            let evicted = self.order.pop_front().expect("nonempty");
            self.seen.remove(&evicted);
        }
        false
    }

    /// Number of remembered traces.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when no trace has been recorded.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Cumulative per-engine counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Visited proof-check states, cumulative.
    pub visited: usize,
    /// Largest single-round visited count.
    pub max_round_visited: usize,
    /// Useless-cache skips.
    pub cache_skips: usize,
    /// Useless-cache probes (skips are the hits).
    pub useless_probes: usize,
    /// Useless-cache entries after the most recent round (a gauge).
    pub useless_len: usize,
    /// Work-stealing events between parallel DFS workers.
    pub dfs_steals: usize,
    /// Tasks processed by parallel DFS workers (0 on the sequential path).
    pub dfs_tasks: usize,
    /// Tasks processed by the busiest parallel DFS worker in any round.
    pub dfs_max_worker_tasks: usize,
    /// Solver queries answered from the query cache during this engine's
    /// rounds. With a shared cache under free-running parallel workers
    /// this attribution is approximate (concurrent activity lands in the
    /// round that observes it); pool-level totals are exact.
    pub qcache_hits: u64,
    /// Solver queries by this engine's rounds that solved cold (same
    /// attribution caveat as `qcache_hits`).
    pub qcache_misses: u64,
    /// Proven rounds whose certificate was dropped because the recording
    /// re-walk tripped its state budget or the resource governor.
    pub certs_dropped: usize,
    /// Interpolation counters.
    pub interpolation: InterpolationStats,
}

/// Per-preference-order verification state, advanced one round at a time
/// against a (possibly shared) proof automaton.
pub struct Engine {
    /// Display name (the configuration's).
    pub name: String,
    /// Counters.
    pub stats: EngineStats,
    spec: Spec,
    order: Box<dyn PreferenceOrder>,
    order_spec: OrderSpec,
    certify: bool,
    oracle: CommutativityOracle,
    persistent: Option<PersistentSets>,
    useless: UselessCache,
    /// Worker state for `--dfs-threads > 1`, created at the first round
    /// and reused across rounds (it owns the shared useless-cache then).
    par: Option<ParDfs>,
    check_config: CheckConfig,
    interpolation: InterpolationMode,
    history: TraceHistory,
    /// Assertions added to the proof by this engine's refinements since the
    /// last [`Engine::take_new_assertions`] call — the shareable increment a
    /// portfolio coordinator broadcasts to the other members.
    pending_broadcast: Vec<TermId>,
}

impl Engine {
    /// Creates an engine for `spec` under `config`.
    pub fn new(
        pool: &mut TermPool,
        program: &Program,
        spec: Spec,
        config: &VerifierConfig,
    ) -> Engine {
        let mut oracle = CommutativityOracle::new(config.commutativity);
        let persistent = config
            .use_persistent
            .then(|| PersistentSets::new(pool, program, &mut oracle));
        Engine {
            name: config.name.clone(),
            stats: EngineStats::default(),
            spec,
            order: config.order.build(),
            order_spec: config.order.clone(),
            certify: config.certify,
            oracle,
            persistent,
            useless: UselessCache::new(),
            par: None,
            check_config: CheckConfig {
                use_sleep: config.use_sleep,
                use_persistent: config.use_persistent,
                proof_sensitive: config.proof_sensitive,
                max_visited: config.max_visited_per_round,
                dfs_threads: config.dfs_threads,
                freeze_useless: false,
            },
            interpolation: config.interpolation,
            history: TraceHistory::new(),
            pending_broadcast: Vec::new(),
        }
    }

    /// The specification this engine checks.
    pub fn spec(&self) -> Spec {
        self.spec
    }

    /// Records this engine's certificate for `proof` after a round
    /// returned [`RoundOutcome::Proven`] — one uncached re-walk of the
    /// covered reduction. Returns `None` when certification is disabled
    /// for the engine's configuration or the walk was interrupted.
    pub fn record_spec_cert(
        &mut self,
        pool: &mut TermPool,
        program: &Program,
        proof: &mut ProofAutomaton,
    ) -> Option<SpecCert> {
        if !self.certify {
            return None;
        }
        let Some(rec) = record_reduction(
            pool,
            program,
            self.spec,
            self.order.as_ref(),
            &mut self.oracle,
            self.persistent.as_ref(),
            proof,
            &self.check_config,
        ) else {
            self.stats.certs_dropped += 1;
            return None;
        };
        Some(SpecCert::from_recorded(
            pool,
            proof,
            &rec,
            self.spec,
            &self.order_spec,
            &self.check_config,
        ))
    }

    /// Drains the assertions this engine added to the proof since the last
    /// call (newly discovered program facts, in discovery order).
    pub fn take_new_assertions(&mut self) -> Vec<TermId> {
        std::mem::take(&mut self.pending_broadcast)
    }

    /// Runs one proof-check round against `proof` and, on an uncovered
    /// trace, refines `proof` (or reports the bug).
    pub fn round(
        &mut self,
        pool: &mut TermPool,
        program: &Program,
        proof: &mut ProofAutomaton,
    ) -> RoundOutcome {
        self.stats.rounds += 1;
        let cache_before = pool.query_cache().map(|c| c.stats());
        let mut round_stats = CheckStats::default();
        let result = routed_check_proof(
            pool,
            program,
            self.spec,
            self.order.as_ref(),
            &mut self.oracle,
            self.persistent.as_ref(),
            proof,
            &mut self.useless,
            &mut self.par,
            &self.check_config,
            &mut round_stats,
        );
        self.stats.visited += round_stats.visited;
        self.stats.max_round_visited = self.stats.max_round_visited.max(round_stats.visited);
        self.stats.cache_skips += round_stats.cache_skips;
        self.stats.useless_probes += round_stats.useless_probes;
        self.stats.useless_len = round_stats.useless_len;
        self.stats.dfs_steals += round_stats.steals;
        self.stats.dfs_tasks += round_stats.par_tasks;
        self.stats.dfs_max_worker_tasks = self
            .stats
            .dfs_max_worker_tasks
            .max(round_stats.max_worker_tasks);
        let outcome = match result {
            CheckResult::Proven => RoundOutcome::Proven,
            CheckResult::LimitReached => {
                RoundOutcome::GaveUp(GiveUp::new(Category::DfsStates, "state budget exhausted"))
            }
            CheckResult::Interrupted(g) if g.category == Category::Cancelled => {
                RoundOutcome::Cancelled
            }
            CheckResult::Interrupted(g) => RoundOutcome::GaveUp(g),
            CheckResult::Counterexample(trace) => {
                if self.history.record(&trace) {
                    RoundOutcome::GaveUp(GiveUp::new(
                        Category::NonProgress,
                        "refinement made no progress",
                    ))
                } else {
                    let analysis = analyze_trace_with_mode(
                        pool,
                        program,
                        &trace,
                        self.spec,
                        self.interpolation,
                        &mut self.stats.interpolation,
                    );
                    match analysis {
                        TraceResult::Feasible => RoundOutcome::Bug(trace),
                        // The governor may be the true cause of an undecided
                        // feasibility check; attribute it if so.
                        TraceResult::Unknown => {
                            RoundOutcome::GaveUp(pool.governor().give_up().unwrap_or_else(|| {
                                GiveUp::new(Category::UnknownTheory, "trace feasibility undecided")
                            }))
                        }
                        TraceResult::Infeasible { chain } => {
                            for a in chain {
                                if proof.add_assertion(a) {
                                    self.pending_broadcast.push(a);
                                }
                            }
                            RoundOutcome::Refined
                        }
                    }
                }
            }
        };
        if let (Some(cache), Some(before)) = (pool.query_cache(), cache_before) {
            let delta = cache.stats().since(&before);
            self.stats.qcache_hits += delta.hits;
            self.stats.qcache_misses += delta.misses;
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::bitset::BitSet;
    use automata::dfa::DfaBuilder;
    use program::stmt::{SimpleStmt, Statement};
    use program::thread::{Thread, ThreadId};
    use smt::linear::LinExpr;

    /// x := x + 1; [assume x > bound → error].
    fn counter(pool: &mut TermPool, bound: i128) -> Program {
        let mut b = Program::builder("c");
        let x = pool.var("x");
        b.add_global(x, 0);
        let incr = b.add_statement(Statement::simple(
            ThreadId(0),
            "x := x + 1",
            SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
            pool,
        ));
        let le = pool.le_const(x, bound);
        let gt = pool.not(le);
        let bad = b.add_statement(Statement::simple(
            ThreadId(0),
            "assume x > bound",
            SimpleStmt::Assume(gt),
            pool,
        ));
        let mut cfg = DfaBuilder::new();
        let q0 = cfg.add_state(false);
        let q1 = cfg.add_state(false);
        let err = cfg.add_state(false);
        cfg.add_transition(q0, incr, q1);
        cfg.add_transition(q1, bad, err);
        let mut errors = BitSet::new(3);
        errors.insert(err.index());
        b.add_thread(Thread::new("t", cfg.build(q0), errors));
        b.build(pool)
    }

    /// Period-2 cycle: alternating between two traces must be detected as
    /// non-progress. The old implementation only compared against the
    /// immediately preceding trace and looped forever on `t1, t2, t1, …`.
    #[test]
    fn trace_history_detects_period_two_cycle() {
        let mut h = TraceHistory::new();
        let t1 = [LetterId(0), LetterId(1)];
        let t2 = [LetterId(1), LetterId(0)];
        assert!(!h.record(&t1), "first sighting");
        assert!(!h.record(&t2), "different trace");
        assert!(h.record(&t1), "period-2 repeat must be caught");
        assert!(h.record(&t2), "period-2 repeat must be caught");
    }

    #[test]
    fn trace_history_bounded_eviction() {
        let mut h = TraceHistory::new();
        let trace = |i: u32| [LetterId(i), LetterId(i + 1)];
        for i in 0..(TRACE_HISTORY_CAPACITY as u32) {
            assert!(!h.record(&trace(i)));
        }
        assert_eq!(h.len(), TRACE_HISTORY_CAPACITY);
        // One more evicts the oldest...
        assert!(!h.record(&trace(1_000)));
        assert_eq!(h.len(), TRACE_HISTORY_CAPACITY);
        // ...so the first trace is forgotten, while a recent one is not.
        assert!(!h.record(&trace(0)), "evicted trace is no longer a repeat");
        assert!(h.record(&trace(17)), "recent trace is still remembered");
    }

    /// End-to-end regression: a round that reproduces an earlier — not
    /// necessarily the immediately preceding — counterexample gives up
    /// instead of looping. We seed the history as if the trace the first
    /// round will find had been seen two rounds ago (with a different trace
    /// in between), which the old single-`last_trace` check missed.
    #[test]
    fn engine_gives_up_on_cycling_counterexamples() {
        let mut pool = TermPool::new();
        let p = counter(&mut pool, 5);
        let config = VerifierConfig::gemcutter_seq();
        let mut engine = Engine::new(&mut pool, &p, Spec::ErrorOf(ThreadId(0)), &config);
        // The first check round finds the shortest error path `incr; bad`.
        assert!(!engine.history.record(&[LetterId(0), LetterId(1)]));
        assert!(!engine.history.record(&[LetterId(1), LetterId(0)]));
        let mut proof = ProofAutomaton::new();
        assert_eq!(
            engine.round(&mut pool, &p, &mut proof),
            RoundOutcome::GaveUp(GiveUp::new(
                Category::NonProgress,
                "refinement made no progress"
            ))
        );
    }

    #[test]
    fn engine_steps_to_proven() {
        let mut pool = TermPool::new();
        let p = counter(&mut pool, 5);
        let config = VerifierConfig::gemcutter_seq();
        let mut engine = Engine::new(&mut pool, &p, Spec::ErrorOf(ThreadId(0)), &config);
        let mut proof = ProofAutomaton::new();
        // Round 1: empty proof → counterexample → refined.
        assert_eq!(
            engine.round(&mut pool, &p, &mut proof),
            RoundOutcome::Refined
        );
        assert!(proof.proof_size() > 0);
        // Eventually proven.
        let mut outcome = RoundOutcome::Refined;
        for _ in 0..10 {
            outcome = engine.round(&mut pool, &p, &mut proof);
            if outcome != RoundOutcome::Refined {
                break;
            }
        }
        assert_eq!(outcome, RoundOutcome::Proven);
        assert!(engine.stats.rounds >= 2);
    }

    #[test]
    fn engine_finds_bug() {
        let mut pool = TermPool::new();
        let p = counter(&mut pool, 0); // x = 1 > 0 after one increment
        let config = VerifierConfig::gemcutter_seq();
        let mut engine = Engine::new(&mut pool, &p, Spec::ErrorOf(ThreadId(0)), &config);
        let mut proof = ProofAutomaton::new();
        let mut outcome = RoundOutcome::Refined;
        for _ in 0..10 {
            outcome = engine.round(&mut pool, &p, &mut proof);
            if outcome != RoundOutcome::Refined {
                break;
            }
        }
        let RoundOutcome::Bug(trace) = outcome else {
            panic!("{outcome:?}");
        };
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn assertions_from_one_engine_help_another() {
        // Engine A (seq) refines once; engine B (lockstep) then proves in
        // fewer rounds than it would alone, because the shared proof
        // already contains A's assertions.
        let mut pool = TermPool::new();
        let p = counter(&mut pool, 5);
        let spec = Spec::ErrorOf(ThreadId(0));
        let mut a = Engine::new(&mut pool, &p, spec, &VerifierConfig::gemcutter_seq());
        let mut b = Engine::new(&mut pool, &p, spec, &VerifierConfig::gemcutter_lockstep());
        let mut shared = ProofAutomaton::new();
        // Let A do all the refining.
        loop {
            match a.round(&mut pool, &p, &mut shared) {
                RoundOutcome::Refined => continue,
                RoundOutcome::Proven => break,
                other => panic!("{other:?}"),
            }
        }
        // B proves immediately with the shared proof.
        assert_eq!(b.round(&mut pool, &p, &mut shared), RoundOutcome::Proven);
        assert_eq!(b.stats.rounds, 1);
    }
}
