//! A dense, fixed-capacity bit set.
//!
//! Sleep sets (§5 of the paper) and Floyd/Hoare assertion sets are small,
//! dense sets over a fixed universe, so a `Vec<u64>`-backed bit set is the
//! natural representation. The type is `Ord + Hash` so it can key visited-set
//! maps during the on-the-fly proof check.

use std::fmt;

/// A set of `usize` values below a fixed capacity, stored as packed bits.
///
/// # Example
///
/// ```
/// use automata::BitSet;
///
/// let mut s = BitSet::new(128);
/// s.insert(3);
/// s.insert(77);
/// assert!(s.contains(3));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 77]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `value`, returning `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `value >= self.capacity()`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(value < self.capacity, "bitset value out of range");
        let (w, b) = (value / 64, value % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `value`, returning `true` if it was present.
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / 64, value % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Tests membership of `value`.
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.words[value / 64] & (1 << (value % 64)) != 0
    }

    /// Returns `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: removes every element of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if the sets share no element.
    pub fn is_disjoint_from(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set whose capacity is one past the maximum
    /// value (or zero for an empty iterator).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(cap);
        for v in values {
            set.insert(v);
        }
        set
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

/// Iterator over the elements of a [`BitSet`], produced by [`BitSet::iter`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(200);
        assert!(s.insert(0));
        assert!(s.insert(199));
        assert!(!s.insert(0), "re-insert reports not fresh");
        assert!(s.contains(0));
        assert!(s.contains(199));
        assert!(!s.contains(100));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1_000_000));
    }

    #[test]
    fn set_ops() {
        let mut a: BitSet = [1usize, 2, 3].into_iter().collect();
        let b: BitSet = [2usize, 3].into_iter().collect();
        // from_iter capacities: a has cap 4, b has cap 4.
        assert!(b.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 3]);
        a.difference_with(&b);
        assert!(a.is_empty());
        a.union_with(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn disjoint() {
        let a: BitSet = [0usize, 2].into_iter().collect();
        let mut b = BitSet::new(3);
        b.insert(1);
        assert!(a.is_disjoint_from(&b));
        b.insert(2);
        assert!(!a.is_disjoint_from(&b));
    }

    #[test]
    fn iter_order() {
        let mut s = BitSet::new(300);
        for v in [257, 3, 64, 65, 128] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 65, 128, 257]);
    }

    #[test]
    fn empty_and_clear() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let mut t = BitSet::new(70);
        t.insert(69);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn debug_is_nonempty() {
        let s = BitSet::new(4);
        assert_eq!(format!("{s:?}"), "{}");
    }
}
