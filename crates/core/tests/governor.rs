//! Resource-governor integration tests: in-query deadlines bound
//! wall-clock overshoot, step budgets and injected faults degrade to
//! structured give-ups, and none of it can flip a verdict to Correct.

use automata::bitset::BitSet;
use automata::dfa::DfaBuilder;
use gemcutter::govern::{Category, FaultPlan, GovernorConfig};
use gemcutter::verify::{verify, Verdict, VerifierConfig};
use program::concurrent::Program;
use program::stmt::{SimpleStmt, Statement};
use program::thread::{Thread, ThreadId};
use smt::linear::LinExpr;
use smt::term::TermPool;
use std::time::{Duration, Instant};

/// `threads` workers each increment a shared counter `steps` times; a
/// checker waits for everyone and asserts the total. With `safe` the
/// bound is exact (provable); otherwise it is one too small (buggy).
fn chain_inc(pool: &mut TermPool, threads: u32, steps: usize, safe: bool) -> Program {
    let mut b = Program::builder("chain-inc");
    let c = pool.var("c");
    let done = pool.var("done");
    b.add_global(c, 0);
    b.add_global(done, 0);
    for t in 0..threads {
        let mut cfg = DfaBuilder::new();
        let mut prev = cfg.add_state(false);
        let entry = prev;
        for s in 0..steps {
            let last = s + 1 == steps;
            let mut path = vec![SimpleStmt::Assign(
                c,
                LinExpr::var(c).add(&LinExpr::constant(1)),
            )];
            if last {
                path.push(SimpleStmt::Assign(
                    done,
                    LinExpr::var(done).add(&LinExpr::constant(1)),
                ));
            }
            let l = b.add_statement(Statement::atomic(ThreadId(t), "inc", vec![path], pool));
            let next = cfg.add_state(last);
            cfg.add_transition(prev, l, next);
            prev = next;
        }
        b.add_thread(Thread::new("inc", cfg.build(entry), BitSet::new(steps + 1)));
    }
    let total = (threads as i128) * (steps as i128);
    let bound = if safe { total } else { total - 1 };
    let all_done = pool.ge_const(done, threads as i128);
    let ok_guard = pool.le_const(c, bound);
    let bad_guard = pool.not(ok_guard);
    let checker = ThreadId(threads);
    let wait = b.add_statement(Statement::simple(
        checker,
        "await",
        SimpleStmt::Assume(all_done),
        pool,
    ));
    let ok = b.add_statement(Statement::simple(
        checker,
        "ok",
        SimpleStmt::Assume(ok_guard),
        pool,
    ));
    let bad = b.add_statement(Statement::simple(
        checker,
        "bad",
        SimpleStmt::Assume(bad_guard),
        pool,
    ));
    let mut cfg = DfaBuilder::new();
    let q0 = cfg.add_state(false);
    let q1 = cfg.add_state(false);
    let exit = cfg.add_state(true);
    let err = cfg.add_state(false);
    cfg.add_transition(q0, wait, q1);
    cfg.add_transition(q1, ok, exit);
    cfg.add_transition(q1, bad, err);
    let mut errors = BitSet::new(4);
    errors.insert(err.index());
    b.add_thread(Thread::new("checker", cfg.build(q0), errors));
    b.build(pool)
}

fn governed(govern: GovernorConfig) -> VerifierConfig {
    VerifierConfig {
        govern,
        ..VerifierConfig::gemcutter_seq()
    }
}

/// Satellite 1 regression: an adversarial query (big proof-check DFS and
/// many solver calls) must not overshoot a small wall-clock deadline by
/// more than the polling tolerance — the deadline has to fire *inside*
/// the query, not between refinement rounds.
#[test]
fn deadline_bounds_overshoot_within_polling_tolerance() {
    const DEADLINE: Duration = Duration::from_millis(50);
    const TOLERANCE: Duration = Duration::from_millis(250);
    let mut pool = TermPool::new();
    // Large enough that an ungoverned run takes far longer than the
    // deadline + tolerance (a seven-thread product with ~50 letters).
    let p = chain_inc(&mut pool, 6, 6, true);
    let config = governed(GovernorConfig::with_deadline(DEADLINE));
    let start = Instant::now();
    let outcome = verify(&mut pool, &p, &config);
    let elapsed = start.elapsed();
    match &outcome.verdict {
        Verdict::GaveUp(g) => assert_eq!(g.category, Category::Deadline, "{g}"),
        other => panic!("expected a deadline give-up, got {other:?} after {elapsed:?}"),
    }
    assert!(
        elapsed <= DEADLINE + TOLERANCE,
        "deadline overshoot: {elapsed:?} for a {DEADLINE:?} budget"
    );
}

#[test]
fn step_budget_gives_up_with_its_category() {
    let mut pool = TermPool::new();
    let p = chain_inc(&mut pool, 2, 2, true);
    let config = governed(GovernorConfig {
        dfs_state_budget: Some(5),
        ..GovernorConfig::default()
    });
    let outcome = verify(&mut pool, &p, &config);
    match &outcome.verdict {
        Verdict::GaveUp(g) => assert_eq!(g.category, Category::DfsStates, "{g}"),
        other => panic!("expected a dfs-states give-up, got {other:?}"),
    }
}

#[test]
fn injected_unknown_fault_gives_up() {
    let mut pool = TermPool::new();
    let p = chain_inc(&mut pool, 2, 2, true);
    let config = governed(GovernorConfig {
        fault_plan: FaultPlan::parse("dfs-states:3:unknown").unwrap(),
        ..GovernorConfig::default()
    });
    let outcome = verify(&mut pool, &p, &config);
    match &outcome.verdict {
        Verdict::GaveUp(g) => assert_eq!(g.category, Category::InjectedFault, "{g}"),
        other => panic!("expected an injected-fault give-up, got {other:?}"),
    }
}

#[test]
fn injected_timeout_fault_reads_as_deadline() {
    let mut pool = TermPool::new();
    let p = chain_inc(&mut pool, 2, 2, true);
    let config = governed(GovernorConfig {
        fault_plan: FaultPlan::parse("dfs-states:3:timeout").unwrap(),
        ..GovernorConfig::default()
    });
    let outcome = verify(&mut pool, &p, &config);
    match &outcome.verdict {
        Verdict::GaveUp(g) => assert_eq!(g.category, Category::Deadline, "{g}"),
        other => panic!("expected a deadline give-up, got {other:?}"),
    }
}

#[test]
fn injected_panic_is_contained() {
    let mut pool = TermPool::new();
    let p = chain_inc(&mut pool, 2, 2, true);
    let config = governed(GovernorConfig {
        fault_plan: FaultPlan::parse("dfs-states:3:panic").unwrap(),
        ..GovernorConfig::default()
    });
    // The injected panic must be caught inside `verify`, not unwind here.
    let outcome = verify(&mut pool, &p, &config);
    match &outcome.verdict {
        Verdict::GaveUp(g) => assert_eq!(g.category, Category::InjectedFault, "{g}"),
        other => panic!("expected an injected-fault give-up, got {other:?}"),
    }
    // The pool's governor was restored: the next run is unlimited again.
    let clean = verify(&mut pool, &p, &VerifierConfig::gemcutter_seq());
    assert!(clean.verdict.is_correct(), "{:?}", clean.verdict);
}

#[test]
fn faults_never_flip_a_buggy_program_to_correct() {
    for spec in [
        "simplex-pivots:1:unknown",
        "dpll-decisions:1:unknown",
        "branch-nodes:1:unknown",
        "dfs-states:1:unknown",
        "dfs-states:10:timeout",
        "dfs-states:10:panic",
        "simplex-pivots:50:unknown",
    ] {
        let mut pool = TermPool::new();
        let p = chain_inc(&mut pool, 2, 2, false);
        let config = governed(GovernorConfig {
            fault_plan: FaultPlan::parse(spec).unwrap(),
            ..GovernorConfig::default()
        });
        let outcome = verify(&mut pool, &p, &config);
        assert!(
            !outcome.verdict.is_correct(),
            "fault `{spec}` flipped a buggy program to Correct"
        );
    }
}

#[test]
fn fault_injection_replays_identically() {
    let run = || {
        let mut pool = TermPool::new();
        let p = chain_inc(&mut pool, 2, 2, true);
        let config = governed(GovernorConfig {
            fault_plan: FaultPlan::parse("dfs-states:7:unknown").unwrap(),
            ..GovernorConfig::default()
        });
        format!("{:?}", verify(&mut pool, &p, &config).verdict)
    };
    let first = run();
    assert_eq!(first, run(), "fault injection must be deterministic");
    assert_eq!(first, run());
}
