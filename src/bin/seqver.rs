//! `seqver` — command-line front end of the verifier.
//!
//! ```text
//! seqver verify <file.cpl> [--order seq|lockstep|rand:<seed>|prio:<p0,p1,...>] [--config NAME]
//!                          [--no-proof-sensitivity] [--no-qcache] [--solver dpll|cdcl]
//!                          [--max-rounds N] [--portfolio]
//!                          [--parallel] [--deterministic]
//!                          [--timeout DUR] [--steps CAT=N] [--faults SPEC]
//! seqver info   <file.cpl>
//! seqver reduce <file.cpl> [--order ...] [--dot]
//! ```

use seqver::automata::dot::to_dot;
use seqver::cpl;
use seqver::gemcutter::certify::{check_certificate, CertifyMode};
use seqver::gemcutter::govern::{Category, FaultPlan, GovernorConfig};
use seqver::gemcutter::portfolio::{
    default_portfolio, parallel_verify, portfolio_verify, ParallelConfig,
};
use seqver::gemcutter::snapshot::fnv1a;
use seqver::gemcutter::snapshot::Snapshot;
use seqver::gemcutter::supervise::{
    supervised_parallel_verify, supervised_verify, RetryPolicy, SuperviseConfig,
};
use seqver::gemcutter::verify::{verify, OrderSpec, Verdict, VerifierConfig};
use seqver::program::commutativity::{CommutativityLevel, CommutativityOracle};
use seqver::program::concurrent::{Program, Spec};
use seqver::reduction::reduce::{reduction_automaton, ReductionConfig};
use seqver::serve::certfault::CertFaultPlan;
use seqver::serve::client::{BusyRetryPolicy, Client};
use seqver::serve::crash::CrashPlan;
use seqver::serve::proto::{Status, VerifyOpts, WireVerdict};
use seqver::serve::server::{ServeConfig, Server};
use seqver::smt::{SolverKind, TermPool};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  seqver verify <file.cpl> [--order seq|lockstep|rand:<seed>] [--config gemcutter|automizer|sleep|persistent]
                           [--no-proof-sensitivity] [--no-qcache] [--solver dpll|cdcl]
                           [--max-rounds N] [--dfs-threads N] [--portfolio]
                           [--parallel] [--deterministic]
                           [--timeout DUR] [--steps CAT=N] [--faults SPEC]
                           [--retries N] [--escalate Fx]
                           [--checkpoint PATH] [--resume PATH]
                           [--certify off|structural|sample|full]
  seqver info   <file.cpl>
  seqver reduce <file.cpl> [--order seq|lockstep|rand:<seed>] [--dot]
  seqver serve  [--addr HOST:PORT] [--store PATH] [--max-inflight N]
                [--queue-depth N] [--request-timeout DUR] [--io-timeout DUR]
                [--idle-timeout DUR] [--retries N] [--dfs-threads N] [--no-journal]
                [--journal-max-ratio F] [--crash-at SITE:N] [--crash-after N]
                [--certify off|structural|sample|full] [--cert-fault SITE:KIND:N]
  seqver submit <file.cpl>... --addr HOST:PORT [--timeout DUR] [--steps CAT=N]
                [--retries N] [--faults SPEC] [--retry-busy N]
                [--require-durable] [--stats] [--shutdown]

  --no-qcache      disable solver-level query memoization (escape hatch and
                   measurement baseline; verdicts are identical either way)
  --solver KIND    SMT boolean search engine: cdcl (default; watched
                   literals, 1UIP learning, incremental simplex) or dpll
                   (the legacy search, kept as the ablation baseline)
  --dfs-threads N  work-stealing worker threads for each engine's
                   proof-check DFS (default 1 = the sequential path);
                   verdicts, traces and round counts are independent of N
                   (a found counterexample is re-derived sequentially, so
                   certificates stay byte-identical). Composes with
                   --portfolio/--parallel (every member gets N workers)
  --portfolio      race the five §8 preference orders sequentially
  --parallel       multi-threaded shared-proof portfolio (one engine per
                   preference order; assertions are exchanged between them)
  --deterministic  with --parallel: lockstep rounds with engine-index-ordered
                   assertion merges, reproducible across runs
  --timeout DUR    wall-clock deadline polled inside solver loops and the
                   proof-check DFS (e.g. 500ms, 1s, 2m); on expiry the run
                   ends with verdict GAVE-UP, exit code 3
  --steps CAT=N    step budget for one governor category (repeatable), e.g.
                   --steps simplex-pivots=10000 --steps dfs-states=50000
  --faults SPEC    deterministic fault injection for robustness testing:
                   comma-separated CATEGORY:N:KIND sites, KIND one of
                   unknown|timeout|panic, e.g. simplex-pivots:100:unknown
  --retries N      restart supervision: on GAVE-UP, retry up to N times with
                   escalated limits, recycling the partial proof of each
                   failed attempt into the next (single runs and --parallel)
  --escalate Fx    escalation factor per retry (default 2x): the --timeout
                   deadline and --steps budgets stretch by F each attempt
  --checkpoint P   write a crash-safe snapshot to P at every round boundary
                   (single-engine runs only); SIGINT writes a final snapshot
                   and exits 3
  --resume P       continue a killed verification from snapshot P (same
                   program and config; reaches the same verdict and
                   cumulative round count as an uninterrupted run)
  --certify MODE   self-check the run's proof certificate with the
                   independent checker before reporting: structural (replay
                   + inclusion, solver-free), sample (deterministic 1-in-8
                   obligation re-discharge), full (every obligation); a
                   rejected certificate exits 3 even on CORRECT

serve flags:
  --addr A         bind address (default 127.0.0.1:0; the chosen port is
                   printed as `listening on ADDR` at startup)
  --store P        crash-safe persistent proof store: verdicts, harvested
                   assertions and query-cache entries survive restarts and
                   kill -9 (omitted: in-memory only). Writes go to an
                   append-only journal at P.wal, fsynced before the client
                   is acknowledged, folded into P by background compaction
  --max-inflight N concurrent verification workers (default 4); admission
                   control sheds `busy` beyond max-inflight + queue-depth
  --queue-depth N  requests allowed to queue beyond the running ones
                   (default 4)
  --request-timeout DUR  per-request wall-clock ceiling (default 30s); a
                   hanging or runaway request returns GAVE-UP, its worker
                   survives
  --io-timeout DUR mid-frame stall timeout (slow-loris defense) and socket
                   write timeout (default 2s)
  --idle-timeout DUR  idle connection close (default 30s)
  --dfs-threads N  proof-check DFS worker threads per verification request
                   (default 1); verdicts and certificates are identical to
                   the sequential path
  --no-journal     revert to durably rewriting the whole snapshot per
                   request (ablation baseline; verdicts are identical)
  --journal-max-ratio F  compact once the journal outgrows F x the
                   snapshot size (default 4; 0 compacts after every batch)
  --crash-at SITE:N  test aid: abort() at the N-th arrival of a named
                   durability site, comma-separable; sites: pre-append,
                   post-append, post-fsync, compact-tmp, pre-rename,
                   post-rename (deterministic kill -9 for crash sweeps)
  --crash-after N  shorthand for --crash-at post-fsync:N (kept for
                   compatibility with older recovery drills)
  --certify MODE   certificate audit tier for warm hits (default sample):
                   a stored verdict is served only after its certificate
                   clears the independent checker; a failing certificate
                   quarantines the record and the request is re-verified
                   fresh. off disables the audit (serves any checksummed
                   record), structural replays without the solver, full
                   re-discharges every obligation
  --cert-fault S   test aid: mutate the N-th certificate crossing a trust
                   boundary, comma-separable SITE:KIND:N specs; sites:
                   engine-store, store-serve; kinds: weaken-annotation,
                   drop-obligation, rehome-assertion, truncate-trace
                   (deterministic corruption for the mutation sweep — the
                   audit must quarantine it, never serve it)

submit flags:
  --addr A         daemon address (required)
  --retry-busy N   on a `busy` shed, honor the server's retry-after hint
                   up to N times before reporting BUSY (default 0)
  --require-durable  fail (exit 5) any definitive verdict the daemon did
                   not fsync before acknowledging; without it a
                   non-durable verdict only warns on stderr
  --stats          print server counters after the batch
  --shutdown       ask the daemon to drain and exit after the batch

submit exit codes: worst across the batch of 0 CORRECT, 1 INCORRECT,
  3 GAVE-UP (category in the verdict line), 4 BUSY, 5 ERROR/non-durable";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (command, rest) = args.split_first().ok_or("missing command")?;
    match command.as_str() {
        "verify" => cmd_verify(rest),
        "info" => cmd_info(rest),
        "reduce" => cmd_reduce(rest),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load(path: &str, pool: &mut TermPool) -> Result<Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    cpl::compile(&source, pool).map_err(|e| format!("{path}:{e}"))
}

fn parse_order(spec: &str) -> Result<OrderSpec, String> {
    match spec {
        "seq" => Ok(OrderSpec::Seq),
        "lockstep" => Ok(OrderSpec::Lockstep),
        other => {
            if let Some(seed) = other.strip_prefix("rand:") {
                return seed
                    .parse()
                    .map(OrderSpec::Random)
                    .map_err(|_| format!("invalid seed in `{other}`"));
            }
            if let Some(perm) = other.strip_prefix("prio:") {
                let table: Result<Vec<u32>, _> = perm.split(',').map(str::parse).collect();
                return table
                    .map(OrderSpec::Priority)
                    .map_err(|_| format!("invalid priority table in `{other}`"));
            }
            Err(format!("unknown order `{other}`"))
        }
    }
}

struct Flags {
    file: String,
    order: Option<OrderSpec>,
    config: String,
    proof_sensitive: bool,
    qcache: bool,
    solver: SolverKind,
    max_rounds: Option<usize>,
    dfs_threads: usize,
    portfolio: bool,
    parallel: bool,
    deterministic: bool,
    dot: bool,
    govern: GovernorConfig,
    retries: u32,
    escalate: Option<u32>,
    checkpoint: Option<PathBuf>,
    resume: Option<PathBuf>,
    certify: Option<CertifyMode>,
}

/// Parses `500ms`, `1s`, `2m`, or a bare number of seconds.
fn parse_duration(spec: &str) -> Result<std::time::Duration, String> {
    let bad = || format!("invalid duration `{spec}` (expected e.g. 500ms, 1s, 2m)");
    let (digits, unit) = match spec.find(|c: char| !c.is_ascii_digit()) {
        Some(0) | None if spec.is_empty() => return Err(bad()),
        Some(split) => spec.split_at(split),
        None => (spec, "s"),
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    match unit {
        "ms" => Ok(std::time::Duration::from_millis(n)),
        "s" => Ok(std::time::Duration::from_secs(n)),
        "m" => Ok(std::time::Duration::from_secs(n * 60)),
        _ => Err(bad()),
    }
}

/// Parses a `--steps CAT=N` budget assignment into the governor config.
fn parse_steps(govern: &mut GovernorConfig, spec: &str) -> Result<(), String> {
    let (cat, n) = spec
        .split_once('=')
        .ok_or_else(|| format!("invalid --steps `{spec}` (expected CATEGORY=N)"))?;
    let category =
        Category::parse(cat).ok_or_else(|| format!("unknown budget category `{cat}`"))?;
    let budget: u64 = n
        .parse()
        .map_err(|_| format!("invalid budget in --steps `{spec}`"))?;
    let slot = match category {
        Category::SimplexPivots => &mut govern.simplex_pivot_budget,
        Category::DpllDecisions => &mut govern.dpll_decision_budget,
        Category::CdclConflicts => &mut govern.cdcl_conflict_budget,
        Category::BranchNodes => &mut govern.branch_node_budget,
        Category::DfsStates => &mut govern.dfs_state_budget,
        other => return Err(format!("category `{other}` has no step budget")),
    };
    *slot = Some(budget);
    Ok(())
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        file: String::new(),
        order: None,
        config: "gemcutter".to_owned(),
        proof_sensitive: true,
        qcache: true,
        solver: SolverKind::default(),
        max_rounds: None,
        dfs_threads: 1,
        portfolio: false,
        parallel: false,
        deterministic: false,
        dot: false,
        govern: GovernorConfig::default(),
        retries: 0,
        escalate: None,
        checkpoint: None,
        resume: None,
        certify: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--order" => {
                let v = it.next().ok_or("--order needs a value")?;
                flags.order = Some(parse_order(v)?);
            }
            "--config" => {
                flags.config = it.next().ok_or("--config needs a value")?.clone();
            }
            "--no-proof-sensitivity" => flags.proof_sensitive = false,
            "--no-qcache" => flags.qcache = false,
            "--solver" => {
                let v = it.next().ok_or("--solver needs a value")?;
                flags.solver = SolverKind::parse(v)
                    .ok_or_else(|| format!("unknown solver `{v}` (expected dpll or cdcl)"))?;
            }
            "--max-rounds" => {
                let v = it.next().ok_or("--max-rounds needs a value")?;
                flags.max_rounds = Some(v.parse().map_err(|_| "invalid --max-rounds")?);
            }
            "--dfs-threads" => {
                let v = it.next().ok_or("--dfs-threads needs a value")?;
                let n: usize = v.parse().map_err(|_| "invalid --dfs-threads")?;
                if n == 0 {
                    return Err("--dfs-threads must be at least 1".to_owned());
                }
                flags.dfs_threads = n;
            }
            "--portfolio" => flags.portfolio = true,
            "--parallel" => flags.parallel = true,
            "--deterministic" => flags.deterministic = true,
            "--dot" => flags.dot = true,
            "--timeout" => {
                let v = it.next().ok_or("--timeout needs a value")?;
                flags.govern.deadline = Some(parse_duration(v)?);
            }
            "--steps" => {
                let v = it.next().ok_or("--steps needs a value")?;
                parse_steps(&mut flags.govern, v)?;
            }
            "--faults" => {
                let v = it.next().ok_or("--faults needs a value")?;
                flags.govern.fault_plan = FaultPlan::parse(v)?;
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a value")?;
                flags.retries = v.parse().map_err(|_| "invalid --retries")?;
            }
            "--escalate" => {
                let v = it.next().ok_or("--escalate needs a value")?;
                flags.escalate = Some(RetryPolicy::parse_factor(v)?);
            }
            "--checkpoint" => {
                let v = it.next().ok_or("--checkpoint needs a value")?;
                flags.checkpoint = Some(PathBuf::from(v));
            }
            "--resume" => {
                let v = it.next().ok_or("--resume needs a value")?;
                flags.resume = Some(PathBuf::from(v));
            }
            "--certify" => {
                let v = it.next().ok_or("--certify needs a value")?;
                flags.certify = Some(CertifyMode::parse(v)?);
            }
            other if !other.starts_with("--") && flags.file.is_empty() => {
                flags.file = other.to_owned();
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if flags.file.is_empty() {
        return Err("missing input file".to_owned());
    }
    Ok(flags)
}

fn build_config(flags: &Flags) -> Result<VerifierConfig, String> {
    let mut config = match flags.config.as_str() {
        "gemcutter" => VerifierConfig::gemcutter_seq(),
        "automizer" => VerifierConfig::automizer(),
        "sleep" => VerifierConfig::sleep_only(),
        "persistent" => VerifierConfig::persistent_only(),
        other => return Err(format!("unknown config `{other}`")),
    };
    if let Some(order) = &flags.order {
        config.order = order.clone();
        config.name = format!("{}-{}", flags.config, order.name());
    }
    if !flags.proof_sensitive {
        config = config.without_proof_sensitivity();
    }
    if !flags.qcache {
        config = config.without_qcache();
    }
    config = config.with_solver(flags.solver);
    if let Some(r) = flags.max_rounds {
        config.max_rounds = r;
    }
    config = config.with_dfs_threads(flags.dfs_threads);
    config.govern = flags.govern.clone();
    Ok(config)
}

/// The portfolio members with the CLI's resource limits applied to each.
fn governed_portfolio(flags: &Flags) -> Vec<VerifierConfig> {
    let mut members = default_portfolio();
    for member in &mut members {
        member.govern = flags.govern.clone();
        member.use_qcache = flags.qcache;
        member.solver = flags.solver;
        member.dfs_threads = flags.dfs_threads;
    }
    members
}

/// SIGINT routing for checkpointed runs: the handler raises a flag the
/// supervisor polls at round boundaries (write final checkpoint, exit 3).
static INTERRUPT: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn on_sigint(_signum: i32) {
    if let Some(flag) = INTERRUPT.get() {
        flag.store(true, Ordering::Relaxed);
    }
}

/// Installs the SIGINT hook and returns the flag it raises. Uses libc's
/// `signal` directly (already linked through std) to avoid a dependency.
#[cfg(unix)]
fn install_sigint() -> Arc<AtomicBool> {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    let flag = Arc::clone(INTERRUPT.get_or_init(|| Arc::new(AtomicBool::new(false))));
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
    flag
}

#[cfg(not(unix))]
fn install_sigint() -> Arc<AtomicBool> {
    Arc::clone(INTERRUPT.get_or_init(|| Arc::new(AtomicBool::new(false))))
}

/// Routes SIGINT *and* SIGTERM to `flag` — the daemon's drain trigger
/// (stop accepting, finish in-flight requests, flush the store, exit 0).
#[cfg(unix)]
fn install_shutdown_signals(flag: Arc<AtomicBool>) {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let _ = INTERRUPT.set(flag);
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
        signal(SIGTERM, on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_shutdown_signals(flag: Arc<AtomicBool>) {
    let _ = INTERRUPT.set(flag);
}

/// Supervision counters appended to the stats line.
struct SupervisionReport {
    attempts: usize,
    recycled: usize,
    rounds_skipped: usize,
    hit_rate: f64,
    interrupted: bool,
    checkpoint_error: Option<String>,
}

fn cmd_verify(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let mut pool = TermPool::new();
    let program = load(&flags.file, &mut pool)?;
    if flags.deterministic && !flags.parallel {
        return Err("--deterministic requires --parallel".to_owned());
    }
    let supervised = flags.retries > 0
        || flags.escalate.is_some()
        || flags.checkpoint.is_some()
        || flags.resume.is_some();
    if (flags.checkpoint.is_some() || flags.resume.is_some()) && (flags.parallel || flags.portfolio)
    {
        return Err(
            "--checkpoint/--resume need a single-engine run (no --portfolio/--parallel)".to_owned(),
        );
    }
    if supervised && flags.portfolio {
        return Err("--retries is not supported with --portfolio (use --parallel)".to_owned());
    }
    let mut policy = RetryPolicy::with_retries(flags.retries);
    if let Some(f) = flags.escalate {
        policy = policy.escalating_by(f);
    }
    let mut supervision: Option<SupervisionReport> = None;
    let (verdict, stats, config_name, certificate) = if flags.parallel {
        let mut pcfg = ParallelConfig {
            deterministic: flags.deterministic,
            wall_clock_budget: flags.govern.deadline,
            ..ParallelConfig::default()
        };
        if let Some(r) = flags.max_rounds {
            pcfg.max_rounds_per_engine = r;
        }
        if supervised {
            let sup = supervised_parallel_verify(
                &pool,
                &program,
                &governed_portfolio(&flags),
                &pcfg,
                &policy,
            );
            supervision = Some(SupervisionReport {
                attempts: sup.attempts.len(),
                recycled: sup.recycled_assertions,
                rounds_skipped: sup.rounds_skipped,
                hit_rate: sup.recycle_hit_rate(),
                interrupted: false,
                checkpoint_error: None,
            });
            let name = sup
                .result
                .winner
                .clone()
                .unwrap_or_else(|| "parallel-portfolio".into());
            (
                sup.result.outcome.verdict,
                sup.result.outcome.stats,
                name,
                sup.result.outcome.certificate,
            )
        } else {
            let result = parallel_verify(&pool, &program, &governed_portfolio(&flags), &pcfg);
            let name = result
                .winner
                .clone()
                .unwrap_or_else(|| "parallel-portfolio".into());
            (
                result.outcome.verdict,
                result.outcome.stats,
                name,
                result.outcome.certificate,
            )
        }
    } else if flags.portfolio {
        let result = portfolio_verify(&mut pool, &program, &governed_portfolio(&flags), true);
        let name = result.winner.clone().unwrap_or_else(|| "portfolio".into());
        (
            result.outcome.verdict,
            result.outcome.stats,
            name,
            result.outcome.certificate,
        )
    } else if supervised {
        let config = build_config(&flags)?;
        let resume = match &flags.resume {
            Some(path) => {
                let snap = Snapshot::load(path)?;
                if !snap.matches(&pool, &program) {
                    return Err(format!(
                        "snapshot `{}` was taken for a different program",
                        path.display()
                    ));
                }
                Some(snap)
            }
            None => None,
        };
        let scfg = SuperviseConfig {
            policy,
            checkpoint: flags.checkpoint.clone(),
            resume,
            interrupt: flags.checkpoint.is_some().then(install_sigint),
        };
        let sup = supervised_verify(&mut pool, &program, &config, &scfg);
        supervision = Some(SupervisionReport {
            attempts: sup.attempts.len(),
            recycled: sup.recycled_assertions,
            rounds_skipped: sup.rounds_skipped,
            hit_rate: sup.recycle_hit_rate(),
            interrupted: sup.interrupted,
            checkpoint_error: sup.checkpoint_error.clone(),
        });
        (
            sup.outcome.verdict,
            sup.outcome.stats,
            config.name,
            sup.outcome.certificate,
        )
    } else {
        let config = build_config(&flags)?;
        let outcome = verify(&mut pool, &program, &config);
        (
            outcome.verdict,
            outcome.stats,
            config.name,
            outcome.certificate,
        )
    };
    println!(
        "{}: {} threads, {} statements (config: {config_name})",
        program.name(),
        program.num_threads(),
        program.num_letters()
    );
    let code = match &verdict {
        Verdict::Correct => {
            println!("verdict: CORRECT");
            ExitCode::SUCCESS
        }
        Verdict::Incorrect { trace } => {
            println!(
                "verdict: INCORRECT — witness interleaving ({} context switches):",
                seqver::gemcutter::trace::context_switches(&program, trace)
            );
            print!(
                "{}",
                seqver::gemcutter::trace::render_columns(&program, trace)
            );
            ExitCode::from(1)
        }
        Verdict::GaveUp(give_up) => {
            println!("verdict: GAVE-UP {give_up}");
            ExitCode::from(3)
        }
    };
    // Certificate self-check: the verdict above is only reported as
    // trustworthy if the independent checker agrees with it.
    let code = match flags.certify {
        None | Some(CertifyMode::Off) => code,
        Some(mode) => match &certificate {
            Some(cert) => {
                let report = check_certificate(&mut pool, &program, cert, mode);
                println!("certificate: {report}");
                if report.ok {
                    code
                } else {
                    eprintln!(
                        "error: the verdict's certificate failed the {} audit",
                        mode.name()
                    );
                    ExitCode::from(3)
                }
            }
            None => {
                if matches!(verdict, Verdict::GaveUp(_)) {
                    println!("certificate: none (GAVE-UP verdicts are not certified)");
                    code
                } else {
                    eprintln!("error: conclusive verdict without a certificate");
                    ExitCode::from(3)
                }
            }
        },
    };
    println!(
        "rounds={} proof_size={} visited={} hoare_checks={} qcache_hits={} qcache_misses={} qcache_hit_rate={:.2} useless_hits={} useless_probes={} useless_len={} time={:?}",
        stats.rounds,
        stats.proof_size,
        stats.visited_states,
        stats.hoare_checks,
        stats.qcache_hits,
        stats.qcache_misses,
        stats.qcache_hit_rate(),
        stats.cache_skips,
        stats.useless_probes,
        stats.useless_len,
        stats.time
    );
    if stats.dfs_tasks > 0 {
        println!(
            "dfs_tasks={} dfs_steals={} dfs_max_worker_tasks={}",
            stats.dfs_tasks, stats.dfs_steals, stats.dfs_max_worker_tasks
        );
    }
    if let Some(sup) = &supervision {
        println!(
            "attempts={} recycled={} rounds_skipped={} hit_rate={:.2}",
            sup.attempts, sup.recycled, sup.rounds_skipped, sup.hit_rate
        );
        if sup.interrupted {
            if let Some(path) = &flags.checkpoint {
                println!("interrupted: checkpoint written to {}", path.display());
            }
        }
        if let Some(e) = &sup.checkpoint_error {
            eprintln!("warning: checkpointing degraded: {e}");
        }
    }
    Ok(code)
}

fn cmd_info(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let mut pool = TermPool::new();
    let program = load(&flags.file, &mut pool)?;
    println!("name:        {}", program.name());
    println!("threads:     {}", program.num_threads());
    for (i, t) in program.threads().iter().enumerate() {
        println!(
            "  T{i} `{}`: {} locations{}",
            t.name(),
            t.size(),
            if t.has_error_locations() {
                ", has asserts"
            } else {
                ""
            }
        );
    }
    println!("statements:  {}", program.num_letters());
    println!("globals:     {}", program.globals().len());
    println!("size(P):     {}", program.size());
    println!("pre:         {}", pool.display(program.pre()));
    println!("post:        {}", pool.display(program.post()));
    Ok(ExitCode::SUCCESS)
}

fn cmd_reduce(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let mut pool = TermPool::new();
    let program = load(&flags.file, &mut pool)?;
    let order = flags.order.clone().unwrap_or(OrderSpec::Seq).build();
    let spec = match program.asserting_threads().first() {
        Some(&t) => Spec::ErrorOf(t),
        None => Spec::PrePost,
    };
    let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
    let product = program.explicit_product(spec);
    let reduction = reduction_automaton(
        &mut pool,
        &program,
        spec,
        order.as_ref(),
        &mut oracle,
        ReductionConfig::default(),
    );
    println!(
        "product:   {} states, {} transitions",
        product.num_states(),
        product.num_transitions()
    );
    println!(
        "reduction: {} states, {} transitions (order {})",
        reduction.num_states(),
        reduction.num_transitions(),
        order.name()
    );
    if flags.dot {
        println!(
            "{}",
            to_dot(&reduction, &format!("{}-reduction", program.name()))
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut config = ServeConfig::default();
    let mut crash_specs: Vec<String> = Vec::new();
    let mut cert_fault_specs: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--store" => {
                config.store_path = Some(PathBuf::from(it.next().ok_or("--store needs a value")?))
            }
            "--max-inflight" => {
                let v = it.next().ok_or("--max-inflight needs a value")?;
                config.max_inflight = v.parse().map_err(|_| "invalid --max-inflight")?;
                if config.max_inflight == 0 {
                    return Err("--max-inflight must be at least 1".to_owned());
                }
            }
            "--queue-depth" => {
                let v = it.next().ok_or("--queue-depth needs a value")?;
                config.queue_depth = v.parse().map_err(|_| "invalid --queue-depth")?;
            }
            "--request-timeout" => {
                let v = it.next().ok_or("--request-timeout needs a value")?;
                config.request_timeout = parse_duration(v)?;
            }
            "--io-timeout" => {
                let v = it.next().ok_or("--io-timeout needs a value")?;
                config.io_timeout = parse_duration(v)?;
            }
            "--idle-timeout" => {
                let v = it.next().ok_or("--idle-timeout needs a value")?;
                config.idle_timeout = parse_duration(v)?;
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a value")?;
                config.retries = v.parse().map_err(|_| "invalid --retries")?;
            }
            "--dfs-threads" => {
                let v = it.next().ok_or("--dfs-threads needs a value")?;
                let n: usize = v.parse().map_err(|_| "invalid --dfs-threads")?;
                if n == 0 {
                    return Err("--dfs-threads must be at least 1".to_owned());
                }
                config.dfs_threads = n;
            }
            "--no-journal" => config.journal = false,
            "--journal-max-ratio" => {
                let v = it.next().ok_or("--journal-max-ratio needs a value")?;
                config.journal_max_ratio = v
                    .parse::<f64>()
                    .ok()
                    .filter(|r| r.is_finite() && *r >= 0.0)
                    .ok_or("invalid --journal-max-ratio")?;
            }
            "--crash-at" => {
                crash_specs.push(it.next().ok_or("--crash-at needs a value")?.clone());
            }
            "--crash-after" => {
                let n: u64 = it
                    .next()
                    .ok_or("--crash-after needs a value")?
                    .parse()
                    .map_err(|_| "invalid --crash-after")?;
                crash_specs.push(format!("post-fsync:{n}"));
            }
            "--certify" => {
                let v = it.next().ok_or("--certify needs a value")?;
                config.certify = CertifyMode::parse(v)?;
            }
            "--cert-fault" => {
                cert_fault_specs.push(it.next().ok_or("--cert-fault needs a value")?.clone());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if !crash_specs.is_empty() {
        config.crash_plan = Arc::new(CrashPlan::parse(&crash_specs.join(","))?);
    }
    if !cert_fault_specs.is_empty() {
        config.cert_faults = Arc::new(CertFaultPlan::parse(&cert_fault_specs.join(","))?);
    }
    let server = Server::bind(config)?;
    for warning in server.store_warnings() {
        eprintln!("warning: {warning}");
    }
    install_shutdown_signals(server.shutdown_flag());
    // Port 0 resolves at bind time; tests and scripts scrape this line.
    println!("listening on {}", server.local_addr()?);
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run()?;
    println!("drained: store flushed, exiting");
    Ok(ExitCode::SUCCESS)
}

fn cmd_submit(args: &[String]) -> Result<ExitCode, String> {
    let mut files: Vec<String> = Vec::new();
    let mut addr: Option<String> = None;
    let mut opts = VerifyOpts::default();
    let mut retry_busy = 0u32;
    let mut require_durable = false;
    let mut want_stats = false;
    let mut want_shutdown = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(it.next().ok_or("--addr needs a value")?.clone()),
            "--timeout" => {
                let v = it.next().ok_or("--timeout needs a value")?;
                opts.timeout = Some(parse_duration(v)?);
            }
            "--steps" => {
                let v = it.next().ok_or("--steps needs a value")?;
                let (cat, n) = v
                    .split_once('=')
                    .ok_or_else(|| format!("invalid --steps `{v}` (expected CATEGORY=N)"))?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("invalid budget in --steps `{v}`"))?;
                opts.steps.push((cat.to_owned(), n));
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a value")?;
                opts.retries = Some(v.parse().map_err(|_| "invalid --retries")?);
            }
            "--faults" => opts.faults = Some(it.next().ok_or("--faults needs a value")?.clone()),
            "--retry-busy" => {
                let v = it.next().ok_or("--retry-busy needs a value")?;
                retry_busy = v.parse().map_err(|_| "invalid --retry-busy")?;
            }
            "--require-durable" => require_durable = true,
            "--stats" => want_stats = true,
            "--shutdown" => want_shutdown = true,
            other if !other.starts_with("--") => files.push(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let addr = addr.ok_or("submit needs --addr HOST:PORT")?;
    if files.is_empty() && !want_stats && !want_shutdown {
        return Err("missing input files".to_owned());
    }
    let mut client = Client::connect(&addr)?;
    // Worst across the batch: 0 = correct < 1 = incorrect < 3 = gave-up
    // < 4 = busy (shed, retryable) < 5 = error/non-durable.
    let mut worst = 0u8;
    for (index, file) in files.iter().enumerate() {
        let source =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
        let id = format!("{index}-{file}");
        // Sheds are retried with capped exponential backoff over the
        // server's hint; the jitter seed is derived from the request id so
        // a fleet of submitters de-synchronizes, yet reruns are bit-stable.
        let policy = BusyRetryPolicy {
            max_retries: retry_busy,
            seed: fnv1a(id.as_bytes()),
            ..BusyRetryPolicy::default()
        };
        let (response, report) = client.verify_with_retry(&id, &source, opts.clone(), &policy)?;
        if report.busy_retries > 0 || report.budget_exhausted {
            eprintln!(
                "note: `{file}` was shed {} time(s); slept {:?}{}",
                report.busy_retries,
                report.slept,
                if report.budget_exhausted {
                    " (retry budget exhausted)"
                } else {
                    ""
                }
            );
        }
        let line = response.verdict_line();
        println!("{file}: {line}");
        // The durable-acknowledgement contract: a definitive verdict the
        // daemon did not fsync before acknowledging evaporates on kill -9.
        let definitive = matches!(
            response.verdict,
            Some(WireVerdict::Correct) | Some(WireVerdict::Incorrect(_))
        );
        let durability_failed = if definitive && !response.durable {
            if require_durable {
                eprintln!("error: `{file}` verdict was not durably persisted (--require-durable)");
            } else {
                eprintln!(
                    "warning: `{file}` verdict is not durable (in-memory store or commit \
                     failure); pass --require-durable to fail on this"
                );
            }
            require_durable
        } else {
            false
        };
        worst = worst.max(match (response.status, &response.verdict) {
            _ if durability_failed => 5,
            (Some(Status::Ok), Some(WireVerdict::Correct)) => 0,
            (Some(Status::Ok), Some(WireVerdict::Incorrect(_))) => 1,
            // The category rode the frame; the verdict line above prints
            // `GAVE-UP <category>: <reason>`.
            (Some(Status::Ok), Some(WireVerdict::GaveUp)) => 3,
            (Some(Status::Busy), _) => 4,
            _ => 5,
        });
    }
    if want_stats {
        for (key, value) in client.stats()? {
            println!("stat {key}={value}");
        }
    }
    if want_shutdown {
        client.shutdown()?;
        println!("shutdown requested");
    }
    Ok(ExitCode::from(worst))
}
