//! Hash-consed, negation-free boolean formulas over linear-arithmetic atoms.
//!
//! Negation is eliminated at construction: atoms are negated exactly (using
//! integrality, see [`LinearConstraint::negate`]) and `¬` is pushed through
//! `∧`/`∨` by De Morgan. Every formula the solver sees is therefore a
//! positive combination of [`LinearConstraint`] atoms, which keeps DPLL(T)
//! and cube extraction simple.

use crate::linear::{LinExpr, LinearConstraint, NormalizedConstraint, Rel, VarId};
use crate::qcache::QueryCache;
use crate::resource::ResourceGovernor;
use crate::solver::SolverKind;
use std::collections::HashMap;
use std::fmt;

/// An interned formula. Ids are only meaningful relative to the
/// [`TermPool`] that produced them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Structure of an interned formula.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// The formula `true`.
    True,
    /// The formula `false`.
    False,
    /// A linear-constraint atom.
    Atom(LinearConstraint),
    /// Conjunction (≥ 2 children, sorted, deduplicated).
    And(Box<[TermId]>),
    /// Disjunction (≥ 2 children, sorted, deduplicated).
    Or(Box<[TermId]>),
}

/// Arena and hash-cons table for formulas, plus the variable name table.
///
/// # Example
///
/// ```
/// use smt::term::TermPool;
///
/// let mut pool = TermPool::new();
/// let x = pool.var("x");
/// let a = pool.le_const(x, 5); // x ≤ 5
/// let b = pool.ge_const(x, 1); // x ≥ 1
/// let f = pool.and([a, b]);
/// assert!(pool.eval(f, &|_| 3));
/// assert!(!pool.eval(f, &|_| 9));
/// let g = pool.not(f);
/// assert!(pool.eval(g, &|_| 9));
/// ```
#[derive(Clone, Debug, Default)]
pub struct TermPool {
    terms: Vec<Term>,
    intern: HashMap<Term, TermId>,
    var_names: Vec<String>,
    var_intern: HashMap<String, VarId>,
    negation_cache: HashMap<TermId, TermId>,
    /// The resource governor charged by every solver query routed through
    /// this pool (defaults to [`ResourceGovernor::unlimited`]).
    governor: ResourceGovernor,
    /// Optional query-result memoization consulted by the solver. Cloning
    /// the pool shares the cache (it is `Arc`-backed), which is how the
    /// parallel portfolio's workers and the supervisor's retry attempts
    /// reuse each other's verdicts.
    qcache: Option<QueryCache>,
    /// Which boolean search engine answers queries routed through this
    /// pool (defaults to [`SolverKind::Cdcl`]; `--solver=dpll` selects
    /// the legacy search for ablation).
    solver_kind: SolverKind,
}

impl TermPool {
    /// Creates an empty pool (with `true` and `false` pre-interned).
    pub fn new() -> Self {
        let mut pool = TermPool::default();
        let t = pool.intern_term(Term::True);
        let f = pool.intern_term(Term::False);
        debug_assert_eq!(t, TermPool::TRUE);
        debug_assert_eq!(f, TermPool::FALSE);
        pool.qcache = Some(QueryCache::new());
        pool
    }

    /// The interned `true` formula.
    pub const TRUE: TermId = TermId(0);
    /// The interned `false` formula.
    pub const FALSE: TermId = TermId(1);

    fn intern_term(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.intern.get(&term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.clone());
        self.intern.insert(term, id);
        id
    }

    /// The structure of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is from another pool.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of distinct interned terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    // ---- resource governance ---------------------------------------------

    /// Installs `governor`: every subsequent solver query routed through
    /// this pool charges it. Pass [`ResourceGovernor::unlimited`] to
    /// remove governance.
    pub fn set_governor(&mut self, governor: ResourceGovernor) {
        self.governor = governor;
    }

    /// The governor charged by queries through this pool.
    pub fn governor(&self) -> &ResourceGovernor {
        &self.governor
    }

    /// Selects the boolean search engine for queries through this pool.
    pub fn set_solver_kind(&mut self, kind: SolverKind) {
        self.solver_kind = kind;
    }

    /// The boolean search engine used by queries through this pool.
    pub fn solver_kind(&self) -> SolverKind {
        self.solver_kind
    }

    // ---- query memoization -----------------------------------------------

    /// The query cache consulted by solver calls through this pool, if
    /// enabled. [`TermPool::new`] enables a fresh cache; disable with
    /// [`TermPool::take_query_cache`].
    pub fn query_cache(&self) -> Option<&QueryCache> {
        self.qcache.as_ref()
    }

    /// Installs `cache` (shared storage: the handle is `Arc`-backed).
    pub fn set_query_cache(&mut self, cache: QueryCache) {
        self.qcache = Some(cache);
    }

    /// Removes and returns this pool's cache handle, disabling
    /// memoization for subsequent queries. Other clones of the handle
    /// keep working.
    pub fn take_query_cache(&mut self) -> Option<QueryCache> {
        self.qcache.take()
    }

    // ---- variables -------------------------------------------------------

    /// Interns a named integer variable.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.var_intern.get(name) {
            return v;
        }
        let v = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_owned());
        self.var_intern.insert(name.to_owned(), v);
        v
    }

    /// Creates a fresh variable with a unique, `base`-derived name.
    pub fn fresh_var(&mut self, base: &str) -> VarId {
        let mut k = self.var_names.len();
        loop {
            let name = format!("{base}#{k}");
            if !self.var_intern.contains_key(&name) {
                return self.var(&name);
            }
            k += 1;
        }
    }

    /// The name of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is from another pool.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// Number of interned variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    // ---- constructors ----------------------------------------------------

    /// Interns the atom `expr rel 0` (normalized; may collapse to ⊤/⊥).
    pub fn atom(&mut self, expr: LinExpr, rel: Rel) -> TermId {
        match LinearConstraint::new(expr, rel) {
            NormalizedConstraint::True => TermPool::TRUE,
            NormalizedConstraint::False => TermPool::FALSE,
            NormalizedConstraint::Constraint(c) => self.intern_term(Term::Atom(c)),
        }
    }

    /// `lhs ≤ rhs`.
    pub fn le(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> TermId {
        self.atom(lhs.sub(rhs), Rel::Le0)
    }

    /// `lhs < rhs` (integer-exact: `lhs + 1 ≤ rhs`).
    pub fn lt(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> TermId {
        self.atom(lhs.sub(rhs).add(&LinExpr::constant(1)), Rel::Le0)
    }

    /// `lhs ≥ rhs`.
    pub fn ge(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> TermId {
        self.le(rhs, lhs)
    }

    /// `lhs > rhs`.
    pub fn gt(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> TermId {
        self.lt(rhs, lhs)
    }

    /// `lhs = rhs`.
    pub fn eq(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> TermId {
        self.atom(lhs.sub(rhs), Rel::Eq0)
    }

    /// `lhs ≠ rhs`.
    pub fn ne(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> TermId {
        let eq = self.eq(lhs, rhs);
        self.not(eq)
    }

    /// `var ≤ k`.
    pub fn le_const(&mut self, var: VarId, k: i128) -> TermId {
        self.atom(LinExpr::var(var).sub(&LinExpr::constant(k)), Rel::Le0)
    }

    /// `var ≥ k`.
    pub fn ge_const(&mut self, var: VarId, k: i128) -> TermId {
        self.atom(LinExpr::constant(k).sub(&LinExpr::var(var)), Rel::Le0)
    }

    /// `var = k`.
    pub fn eq_const(&mut self, var: VarId, k: i128) -> TermId {
        self.atom(LinExpr::var(var).sub(&LinExpr::constant(k)), Rel::Eq0)
    }

    /// N-ary conjunction with flattening, deduplication, unit and
    /// complement simplification.
    pub fn and(&mut self, children: impl IntoIterator<Item = TermId>) -> TermId {
        let mut flat: Vec<TermId> = Vec::new();
        for c in children {
            match self.term(c) {
                Term::True => {}
                Term::False => return TermPool::FALSE,
                Term::And(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(c),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        // Complement pair ⇒ ⊥ (lookup-only: no construction, no recursion).
        for &c in &flat {
            if let Some(n) = self.known_complement(c) {
                if flat.binary_search(&n).is_ok() {
                    return TermPool::FALSE;
                }
            }
        }
        match flat.len() {
            0 => TermPool::TRUE,
            1 => flat[0],
            _ => self.intern_term(Term::And(flat.into_boxed_slice())),
        }
    }

    /// N-ary disjunction with flattening, deduplication, unit and
    /// complement simplification.
    pub fn or(&mut self, children: impl IntoIterator<Item = TermId>) -> TermId {
        let mut flat: Vec<TermId> = Vec::new();
        for c in children {
            match self.term(c) {
                Term::False => {}
                Term::True => return TermPool::TRUE,
                Term::Or(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(c),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        for &c in &flat {
            if let Some(n) = self.known_complement(c) {
                if flat.binary_search(&n).is_ok() {
                    return TermPool::TRUE;
                }
            }
        }
        match flat.len() {
            0 => TermPool::FALSE,
            1 => flat[0],
            _ => self.intern_term(Term::Or(flat.into_boxed_slice())),
        }
    }

    /// The already-interned complement of `id`, if one exists.
    ///
    /// For `≤`-atoms the complement is a single atom whose normalized form
    /// can be computed and looked up without inserting anything; for other
    /// terms only the negation cache is consulted. This is deliberately a
    /// pure lookup so that the `and`/`or` constructors can detect
    /// complement pairs without recursing through [`TermPool::not`].
    fn known_complement(&self, id: TermId) -> Option<TermId> {
        if let Term::Atom(c) = self.term(id) {
            if c.rel() == Rel::Le0 {
                let mut negs = c.negate();
                debug_assert_eq!(negs.len(), 1);
                if let NormalizedConstraint::Constraint(n) = negs.pop()? {
                    return self.intern.get(&Term::Atom(n)).copied();
                }
                return None;
            }
        }
        self.negation_cache.get(&id).copied()
    }

    /// Negation, eliminated structurally: atoms negate exactly over ℤ,
    /// `∧`/`∨` dualize (De Morgan). The result contains no negation node.
    pub fn not(&mut self, id: TermId) -> TermId {
        if let Some(&n) = self.negation_cache.get(&id) {
            return n;
        }
        let result = match self.term(id).clone() {
            Term::True => TermPool::FALSE,
            Term::False => TermPool::TRUE,
            Term::Atom(c) => {
                let parts: Vec<TermId> = c
                    .negate()
                    .into_iter()
                    .map(|n| match n {
                        NormalizedConstraint::True => TermPool::TRUE,
                        NormalizedConstraint::False => TermPool::FALSE,
                        NormalizedConstraint::Constraint(c) => self.intern_term(Term::Atom(c)),
                    })
                    .collect();
                self.or(parts)
            }
            Term::And(children) => {
                let negs: Vec<TermId> = children.iter().map(|&c| self.not(c)).collect();
                self.or(negs)
            }
            Term::Or(children) => {
                let negs: Vec<TermId> = children.iter().map(|&c| self.not(c)).collect();
                self.and(negs)
            }
        };
        self.negation_cache.insert(id, result);
        self.negation_cache.insert(result, id);
        result
    }

    /// `a → b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or([na, b])
    }

    /// `a ↔ b`.
    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        let fwd = self.implies(a, b);
        let bwd = self.implies(b, a);
        self.and([fwd, bwd])
    }

    /// `if c then a else b` as `(c ∧ a) ∨ (¬c ∧ b)`.
    pub fn ite(&mut self, c: TermId, a: TermId, b: TermId) -> TermId {
        let nc = self.not(c);
        let then_branch = self.and([c, a]);
        let else_branch = self.and([nc, b]);
        self.or([then_branch, else_branch])
    }

    // ---- queries and transformations --------------------------------------

    /// Evaluates `id` under the total integer assignment `value`.
    pub fn eval(&self, id: TermId, value: &dyn Fn(VarId) -> i128) -> bool {
        match self.term(id) {
            Term::True => true,
            Term::False => false,
            Term::Atom(c) => c.eval(value),
            Term::And(children) => children.iter().all(|&c| self.eval(c, value)),
            Term::Or(children) => children.iter().any(|&c| self.eval(c, value)),
        }
    }

    /// The free variables of `id`, sorted.
    pub fn free_vars(&self, id: TermId) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(id, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, id: TermId, out: &mut Vec<VarId>) {
        match self.term(id) {
            Term::True | Term::False => {}
            Term::Atom(c) => out.extend(c.expr().vars()),
            Term::And(children) | Term::Or(children) => {
                for &c in children.iter() {
                    self.collect_vars(c, out);
                }
            }
        }
    }

    /// All distinct atoms of `id`.
    pub fn atoms(&self, id: TermId) -> Vec<LinearConstraint> {
        let mut out = Vec::new();
        self.collect_atoms(id, &mut out);
        out
    }

    fn collect_atoms(&self, id: TermId, out: &mut Vec<LinearConstraint>) {
        match self.term(id) {
            Term::True | Term::False => {}
            Term::Atom(c) => {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
            Term::And(children) | Term::Or(children) => {
                for &c in children.iter() {
                    self.collect_atoms(c, out);
                }
            }
        }
    }

    /// Substitutes `x := e` throughout `id` (re-normalizing atoms).
    pub fn substitute(&mut self, id: TermId, x: VarId, e: &LinExpr) -> TermId {
        match self.term(id).clone() {
            Term::True | Term::False => id,
            Term::Atom(c) => {
                if !c.expr().mentions(x) {
                    id
                } else {
                    let expr = c.expr().substitute(x, e);
                    self.atom(expr, c.rel())
                }
            }
            Term::And(children) => {
                let subst: Vec<TermId> =
                    children.iter().map(|&c| self.substitute(c, x, e)).collect();
                self.and(subst)
            }
            Term::Or(children) => {
                let subst: Vec<TermId> =
                    children.iter().map(|&c| self.substitute(c, x, e)).collect();
                self.or(subst)
            }
        }
    }

    /// Renames variables through `f` (injective on the free variables).
    pub fn rename(&mut self, id: TermId, f: &dyn Fn(VarId) -> VarId) -> TermId {
        match self.term(id).clone() {
            Term::True | Term::False => id,
            Term::Atom(c) => {
                let renamed = c.rename(f);
                self.intern_term(Term::Atom(renamed))
            }
            Term::And(children) => {
                let mapped: Vec<TermId> = children.iter().map(|&c| self.rename(c, f)).collect();
                self.and(mapped)
            }
            Term::Or(children) => {
                let mapped: Vec<TermId> = children.iter().map(|&c| self.rename(c, f)).collect();
                self.or(mapped)
            }
        }
    }

    /// Pretty-prints `id` using variable names.
    pub fn display(&self, id: TermId) -> String {
        match self.term(id) {
            Term::True => "true".to_owned(),
            Term::False => "false".to_owned(),
            Term::Atom(c) => self.display_constraint(c),
            Term::And(children) => {
                let parts: Vec<String> = children.iter().map(|&c| self.display_paren(c)).collect();
                parts.join(" && ")
            }
            Term::Or(children) => {
                let parts: Vec<String> = children.iter().map(|&c| self.display_paren(c)).collect();
                parts.join(" || ")
            }
        }
    }

    fn display_paren(&self, id: TermId) -> String {
        match self.term(id) {
            Term::And(_) | Term::Or(_) => format!("({})", self.display(id)),
            _ => self.display(id),
        }
    }

    /// Pretty-prints a single constraint using variable names.
    pub fn display_constraint(&self, c: &LinearConstraint) -> String {
        let mut lhs = String::new();
        for (i, &(v, coeff)) in c.expr().terms().iter().enumerate() {
            let name = self.var_name(v);
            if i == 0 {
                match coeff {
                    1 => lhs.push_str(name),
                    -1 => lhs.push_str(&format!("-{name}")),
                    _ => lhs.push_str(&format!("{coeff}*{name}")),
                }
            } else if coeff > 0 {
                if coeff == 1 {
                    lhs.push_str(&format!(" + {name}"));
                } else {
                    lhs.push_str(&format!(" + {coeff}*{name}"));
                }
            } else if coeff == -1 {
                lhs.push_str(&format!(" - {name}"));
            } else {
                lhs.push_str(&format!(" - {}*{name}", -coeff));
            }
        }
        let rel = match c.rel() {
            Rel::Le0 => "<=",
            Rel::Eq0 => "==",
        };
        format!("{lhs} {rel} {}", -c.expr().constant_term())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a1 = p.le_const(x, 5);
        let a2 = p.le_const(x, 5);
        assert_eq!(a1, a2);
        let c1 = p.and([a1, TermPool::TRUE]);
        assert_eq!(c1, a1, "true is a neutral element");
    }

    #[test]
    fn and_or_simplifications() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a = p.le_const(x, 5);
        assert_eq!(p.and([a, TermPool::FALSE]), TermPool::FALSE);
        assert_eq!(p.or([a, TermPool::TRUE]), TermPool::TRUE);
        assert_eq!(p.and(std::iter::empty()), TermPool::TRUE);
        assert_eq!(p.or(std::iter::empty()), TermPool::FALSE);
        let na = p.not(a);
        assert_eq!(p.and([a, na]), TermPool::FALSE);
        assert_eq!(p.or([a, na]), TermPool::TRUE);
    }

    #[test]
    fn negation_is_involutive_and_exact() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let y = p.var("y");
        let a = p.le_const(x, 3);
        let b = p.eq_const(y, 1);
        let f = p.and([a, b]);
        let nf = p.not(f);
        assert_eq!(p.not(nf), f);
        // Exact complement under evaluation.
        for xv in 0..6 {
            for yv in 0..3 {
                let val = move |v: VarId| if v == x { xv } else { yv };
                assert_ne!(p.eval(f, &val), p.eval(nf, &val), "x={xv} y={yv}");
            }
        }
    }

    #[test]
    fn eval_structure() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let low = p.ge_const(x, 2);
        let high = p.le_const(x, 4);
        let range = p.and([low, high]);
        let outside = p.not(range);
        assert!(p.eval(range, &|_| 3));
        assert!(!p.eval(range, &|_| 1));
        assert!(p.eval(outside, &|_| 5));
    }

    #[test]
    fn free_vars_and_atoms() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let y = p.var("y");
        let z = p.var("z");
        let a = p.le(&LinExpr::var(x), &LinExpr::var(y));
        let b = p.eq_const(z, 0);
        let f = p.or([a, b]);
        assert_eq!(p.free_vars(f), vec![x, y, z]);
        assert_eq!(p.atoms(f).len(), 2);
    }

    #[test]
    fn substitution() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let y = p.var("y");
        // x ≤ 5 with x := y + 10  →  y ≤ -5
        let f = p.le_const(x, 5);
        let e = LinExpr::var(y).add(&LinExpr::constant(10));
        let g = p.substitute(f, x, &e);
        assert!(p.eval(g, &|_| -5));
        assert!(!p.eval(g, &|_| -4));
        assert!(!p.free_vars(g).contains(&x));
    }

    #[test]
    fn rename_vars() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let x2 = p.var("x'");
        let f = p.ge_const(x, 1);
        let g = p.rename(f, &move |v| if v == x { x2 } else { v });
        assert_eq!(p.free_vars(g), vec![x2]);
    }

    #[test]
    fn ite_and_iff() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let c = p.ge_const(x, 0);
        let a = p.le_const(x, 10);
        let b = p.ge_const(x, -10);
        let f = p.ite(c, a, b);
        assert!(p.eval(f, &|_| 5)); // c true, a true
        assert!(!p.eval(f, &|_| 20)); // c true, a false
        assert!(p.eval(f, &|_| -5)); // c false, b true
        let g = p.iff(c, a);
        assert!(p.eval(g, &|_| 5));
        assert!(!p.eval(g, &|_| 20));
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut p = TermPool::new();
        let a = p.fresh_var("tmp");
        let b = p.fresh_var("tmp");
        assert_ne!(a, b);
        assert_ne!(p.var_name(a), p.var_name(b));
    }

    #[test]
    fn display_round_trips_names() {
        let mut p = TermPool::new();
        let x = p.var("pendingIo");
        let one = p.ge_const(x, 1);
        assert_eq!(p.display(one), "-pendingIo <= -1");
    }

    #[test]
    fn strict_inequality_is_tightened() {
        let mut p = TermPool::new();
        let x = p.var("x");
        // x < 3 over ℤ means x ≤ 2.
        let f = p.lt(&LinExpr::var(x), &LinExpr::constant(3));
        let g = p.le(&LinExpr::var(x), &LinExpr::constant(2));
        assert_eq!(f, g);
    }
}
