//! Language-theoretic exploration of reductions (§4–§6): builds the
//! paper's Figure 2(a) program, computes its reduction under several
//! preference orders, and prints sizes and sample representatives.
//!
//! Run: `cargo run --release --example explore_reductions`

use seqver::automata::explore::accepted_words;
use seqver::cpl;
use seqver::program::commutativity::{CommutativityLevel, CommutativityOracle};
use seqver::program::concurrent::Spec;
use seqver::reduction::order::{LockstepOrder, PreferenceOrder, RandomOrder, SeqOrder};
use seqver::reduction::reduce::{reduction_automaton, ReductionConfig};
use seqver::smt::TermPool;

fn main() {
    // Figure 2a: two threads looping a_i b_i with exit c_i, on private
    // variables — full commutativity across threads.
    let source = r#"
        var p0: int = 0;
        var p1: int = 0;
        thread left  { while (*) { p0 := 1; p0 := 2; } p0 := 3; }
        thread right { while (*) { p1 := 1; p1 := 2; } p1 := 3; }
        spawn left;
        spawn right;
    "#;
    let mut pool = TermPool::new();
    let program = cpl::compile(source, &mut pool).expect("valid CPL");
    let product = program.explicit_product(Spec::PrePost);
    println!(
        "interleaving product: {} states, {} transitions, {} words of length ≤ 6",
        product.num_states(),
        product.num_transitions(),
        accepted_words(&product, 6).len()
    );

    let orders: Vec<Box<dyn PreferenceOrder>> = vec![
        Box::new(SeqOrder::new()),
        Box::new(LockstepOrder::new()),
        Box::new(RandomOrder::new(1)),
        Box::new(RandomOrder::new(2)),
    ];
    for order in &orders {
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
        let reduction = reduction_automaton(
            &mut pool,
            &program,
            Spec::PrePost,
            order.as_ref(),
            &mut oracle,
            ReductionConfig::default(),
        );
        let words = accepted_words(&reduction, 6);
        println!();
        println!(
            "order {:10} → reduction: {} states, {} transitions, {} words of length ≤ 6",
            order.name(),
            reduction.num_states(),
            reduction.num_transitions(),
            words.len()
        );
        for w in words.iter().take(3) {
            let rendered: Vec<String> = w
                .iter()
                .map(|&l| program.statement(l).label().to_owned())
                .collect();
            println!("  representative: {}", rendered.join(" ; "));
        }
    }
    println!();
    println!("Each order keeps exactly one representative per Mazurkiewicz class —");
    println!("which one differs, and that is what drives proof simplicity (§2, Fig 1c).");
}
