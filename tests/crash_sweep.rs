//! Crash-point injection sweep for the `seqver serve` write-ahead
//! journal: the daemon is killed (`--crash-at SITE:N` aborts, a
//! deterministic `kill -9`) at *every* named durability site in turn —
//! around the journal append, after the group-commit fsync, and at each
//! step of a snapshot compaction — then restarted on the same store.
//!
//! The contract under test is the durable-acknowledgement one: `OK` on
//! the wire means the verdict was fsynced first. So, for every site:
//! zero acknowledged verdicts may be lost (each one is re-served warm,
//! bit-identically, after restart), every verdict known durable at the
//! crash point forms a warm prefix, and a restart may only come up fully
//! cold from sites that precede the first fsync.

use serve::client::Client;
use serve::proto::{Response, VerifyOpts};
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_seqver");

/// `c <= bound` after `incs` unit increments: correct iff `bound >= incs`.
fn source(incs: u32, bound: u32) -> String {
    format!(
        "var c: int = 0;\n\
         thread inc {{ c := c + 1; }}\n\
         thread chk {{ assert c <= {bound}; }}\n\
         spawn inc * {incs};\n\
         spawn chk;\n"
    )
}

/// A small mixed batch of definitive verdicts (every one is persisted):
/// three correct programs and one with a deterministic bug whose witness
/// trace is part of the bit-exact verdict line.
fn corpus() -> Vec<String> {
    vec![source(1, 1), source(2, 2), source(1, 0), source(3, 4)]
}

struct Daemon {
    child: Child,
    addr: String,
    stderr_path: PathBuf,
}

impl Daemon {
    fn start(dir: &Path, store: &Path, extra: &[&str]) -> Daemon {
        static N: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let stderr_path = dir.join(format!(
            "daemon-{}.stderr",
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let stderr_file = std::fs::File::create(&stderr_path).expect("stderr file");
        let mut child = Command::new(BIN)
            .arg("serve")
            .arg("--store")
            .arg(store)
            .args(["--request-timeout", "30s"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::from(stderr_file))
            .spawn()
            .expect("spawn daemon");
        let stdout = child.stdout.take().expect("stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon exited before announcing its address")
                .expect("read stdout");
            if let Some(addr) = line.strip_prefix("listening on ") {
                break addr.trim().to_owned();
            }
        };
        // Keep draining stdout (batch stats lines) so the pipe never fills.
        std::thread::spawn(move || for _ in lines {});
        Daemon {
            child,
            addr,
            stderr_path,
        }
    }

    fn client(&self) -> Client {
        Client::connect_with_timeout(&self.addr, Duration::from_secs(120)).expect("connect")
    }

    fn read_stderr(&self) -> String {
        let mut stderr = String::new();
        std::fs::File::open(&self.stderr_path)
            .expect("stderr file")
            .read_to_string(&mut stderr)
            .expect("read stderr");
        stderr
    }

    /// Asks the daemon to drain, then expects a clean exit 0.
    fn shutdown_cleanly(mut self) -> String {
        self.client().shutdown().expect("shutdown ack");
        let status = self.child.wait().expect("wait");
        assert!(status.success(), "daemon exited uncleanly: {status}");
        self.read_stderr()
    }

    /// Waits for the injected abort, returning the daemon's stderr so the
    /// sweep can check *which* site fired.
    fn wait_for_crash(mut self) -> String {
        let status = self.child.wait().expect("wait");
        assert!(
            !status.success(),
            "daemon with --crash-at exited cleanly instead of aborting"
        );
        self.read_stderr()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqver-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Submits the whole corpus over one connection, stopping at the first
/// dead-connection error (the crash runs die mid-batch).
fn submit_batch(client: &mut Client, programs: &[String]) -> Vec<Result<Response, String>> {
    let mut out = Vec::new();
    for (i, program) in programs.iter().enumerate() {
        let result = client.verify_source(&format!("req-{i}"), program, VerifyOpts::default());
        let died = result.is_err();
        out.push(result);
        if died {
            break;
        }
    }
    out
}

fn stat(client: &mut Client, key: &str) -> u64 {
    let stats = client.stats().expect("stats");
    stats
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("no stat `{key}` in {stats:?}"))
        .1
        .parse()
        .expect("numeric stat")
}

/// One crash point of the sweep.
struct Site {
    /// `--crash-at` spec handed to the daemon.
    spec: &'static str,
    /// Extra daemon flags (the compaction sites force `--journal-max-ratio
    /// 0` so the very first durable verdict triggers a compaction to die
    /// in).
    extra: &'static [&'static str],
    /// Verdicts guaranteed durable when the abort fires, responses sent or
    /// not — the minimum warm prefix a restart must re-serve.
    min_warm: usize,
    /// Whether a restart from this site may (and must) come up fully cold:
    /// only sites *before* the first fsync ever qualify.
    cold: bool,
}

const SWEEP: &[Site] = &[
    // Nothing staged yet: the restart has nothing to recover.
    Site {
        spec: "pre-append:1",
        extra: &[],
        min_warm: 0,
        cold: true,
    },
    // Staged in the commit buffer but never written or fsynced: a real
    // crash loses it, so the restart must be cold — this is exactly why
    // the acknowledgement waits for the fsync.
    Site {
        spec: "post-append:1",
        extra: &[],
        min_warm: 0,
        cold: true,
    },
    // Fsynced, response unsent: the work must survive.
    Site {
        spec: "post-fsync:1",
        extra: &[],
        min_warm: 1,
        cold: false,
    },
    // One verdict acknowledged, a second fsynced: both must survive.
    Site {
        spec: "post-fsync:2",
        extra: &[],
        min_warm: 2,
        cold: false,
    },
    // Compaction sites: every durable verdict was journal-fsynced before
    // the compactor ever ran, so dying mid-fold — tmp written, before the
    // rename, after the rename but before the journal reset — must never
    // cost a record. (`--journal-max-ratio 0` makes the first commit
    // trigger compaction.)
    Site {
        spec: "compact-tmp:1",
        extra: &["--journal-max-ratio", "0"],
        min_warm: 1,
        cold: false,
    },
    Site {
        spec: "pre-rename:1",
        extra: &["--journal-max-ratio", "0"],
        min_warm: 1,
        cold: false,
    },
    Site {
        spec: "post-rename:1",
        extra: &["--journal-max-ratio", "0"],
        min_warm: 1,
        cold: false,
    },
];

#[test]
fn killing_the_daemon_at_every_durability_site_loses_no_acknowledged_verdict() {
    let dir = scratch_dir("all-sites");
    let programs = corpus();

    // Reference: one uninterrupted daemon serves the whole batch cold.
    // Every response is a definitive verdict and must carry the durable
    // acknowledgement (it was fsynced before it was sent).
    let reference_store = dir.join("reference.store");
    let daemon = Daemon::start(&dir, &reference_store, &[]);
    let mut client = daemon.client();
    let reference = submit_batch(&mut client, &programs);
    let reference_lines: Vec<String> = reference
        .iter()
        .map(|r| r.as_ref().expect("reference response").verdict_line())
        .collect();
    assert_eq!(reference_lines.len(), programs.len());
    for r in reference.iter().flatten() {
        assert!(
            r.durable,
            "a persisted definitive verdict must be acknowledged as durable: {r:?}"
        );
    }
    drop(client);
    daemon.shutdown_cleanly();

    for site in SWEEP {
        let tag = site.spec.replace(':', "-");
        let store = dir.join(format!("{tag}.store"));

        // Crash run: submit until the injected abort kills the daemon.
        let mut flags: Vec<&str> = vec!["--crash-at", site.spec];
        flags.extend_from_slice(site.extra);
        let daemon = Daemon::start(&dir, &store, &flags);
        let mut client = daemon.client();
        let interrupted = submit_batch(&mut client, &programs);
        drop(client);
        let stderr = daemon.wait_for_crash();
        let marker = format!("aborting at {}", site.spec);
        assert!(
            stderr.contains(&marker),
            "[{}] expected `{marker}` in the crash stderr, got: {stderr}",
            site.spec
        );
        assert!(
            store.exists(),
            "[{}] the snapshot file must survive any crash",
            site.spec
        );

        // Every response the client actually received before the crash is
        // an acknowledgement: it must match the reference bit for bit and
        // must have been durable when sent.
        let acked: Vec<&Response> = interrupted.iter().flatten().collect();
        for (i, resp) in acked.iter().enumerate() {
            assert_eq!(
                resp.verdict_line(),
                reference_lines[i],
                "[{}] acknowledged verdict differs from the reference",
                site.spec
            );
            assert!(
                resp.durable,
                "[{}] acknowledged verdict was not durable: {resp:?}",
                site.spec
            );
        }

        // Restart on the surviving store (no injection, stock flags) and
        // resubmit everything: bit-identical verdicts, with zero
        // acknowledged verdicts lost and the durable prefix served warm.
        let daemon = Daemon::start(&dir, &store, &[]);
        let mut client = daemon.client();
        let recovered = submit_batch(&mut client, &programs);
        let recovered_lines: Vec<String> = recovered
            .iter()
            .map(|r| r.as_ref().expect("recovered response").verdict_line())
            .collect();
        assert_eq!(
            recovered_lines, reference_lines,
            "[{}] restart changed a verdict",
            site.spec
        );
        let warm_floor = site.min_warm.max(acked.len());
        for (i, resp) in recovered.iter().flatten().enumerate().take(warm_floor) {
            assert!(
                resp.store_hit,
                "[{}] verdict {i} was durable before the crash but was \
                 re-verified instead of re-served",
                site.spec
            );
        }
        let hits = stat(&mut client, "store-hits");
        assert!(
            hits >= warm_floor as u64,
            "[{}] warm prefix too short: {hits} store hits < {warm_floor}",
            site.spec
        );
        if site.cold {
            assert_eq!(
                hits, 0,
                "[{}] a pre-fsync crash site must cold-start (nothing was \
                 durable), yet the restart found {hits} records",
                site.spec
            );
        }
        drop(client);
        daemon.shutdown_cleanly();

        // And once more: after the post-crash batch, the *whole* corpus is
        // warm — recovery left the store append-able, not just readable.
        let daemon = Daemon::start(&dir, &store, &[]);
        let mut client = daemon.client();
        let warm = submit_batch(&mut client, &programs);
        let warm_lines: Vec<String> = warm
            .iter()
            .map(|r| r.as_ref().expect("warm response").verdict_line())
            .collect();
        assert_eq!(warm_lines, reference_lines, "[{}] warm pass", site.spec);
        assert_eq!(
            stat(&mut client, "store-hits"),
            programs.len() as u64,
            "[{}] the whole corpus must be warm after recovery + rebuild",
            site.spec
        );
        drop(client);
        daemon.shutdown_cleanly();
    }

    let _ = std::fs::remove_dir_all(&dir);
}
