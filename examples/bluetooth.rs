//! The paper's §2 motivating example: the bluetooth driver.
//!
//! Verifies the corrected driver for a growing number of user threads and
//! shows the effect of the preference order and of conditional
//! commutativity on proof size and refinement rounds, then finds the bug
//! in the original (KISS) version.
//!
//! Run: `cargo run --release --example bluetooth`

use seqver::bench_suite::generators::{bluetooth, bluetooth_buggy};
use seqver::cpl;
use seqver::gemcutter::verify::{verify, Verdict, VerifierConfig};
use seqver::smt::TermPool;

fn main() {
    println!("== corrected driver: preference orders & proof sizes ==");
    for n in 1..=4usize {
        print!("users = {n}:");
        for config in [
            VerifierConfig::gemcutter_seq(),
            VerifierConfig::gemcutter_lockstep(),
            VerifierConfig::gemcutter_seq().without_proof_sensitivity(),
        ] {
            let mut pool = TermPool::new();
            let program = cpl::compile(&bluetooth(n), &mut pool).expect("valid CPL");
            let outcome = verify(&mut pool, &program, &config);
            assert!(outcome.verdict.is_correct(), "{:?}", outcome.verdict);
            print!(
                "  [{}: proof={} rounds={}]",
                config.name, outcome.stats.proof_size, outcome.stats.rounds
            );
        }
        println!();
    }

    println!();
    println!("== original (buggy) driver: bug finding ==");
    let mut pool = TermPool::new();
    let program = cpl::compile(&bluetooth_buggy(1), &mut pool).expect("valid CPL");
    let outcome = verify(&mut pool, &program, &VerifierConfig::gemcutter_seq());
    let Verdict::Incorrect { trace } = &outcome.verdict else {
        panic!("the KISS bug must be found, got {:?}", outcome.verdict);
    };
    println!(
        "assertion violation after {} refinement rounds; witness interleaving:",
        outcome.stats.rounds
    );
    for &l in trace {
        println!(
            "  [{}] {}",
            program.thread(program.thread_of(l)).name(),
            program.statement(l).label()
        );
    }
}
