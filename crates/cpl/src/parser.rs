//! Recursive-descent parser for CPL.

use crate::ast::*;
use crate::lexer::{tokenize, Spanned, Tok};
use crate::Error;

/// Parses a CPL compilation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its position.
pub fn parse(source: &str) -> Result<Ast, Error> {
    let tokens = tokenize(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    p.unit()
}

/// Maximum combined nesting depth of statements and expressions.
/// Adversarial input (`((((((…` or thousands of nested `if`s) must produce
/// a diagnostic, never overflow the parser's stack.
const MAX_NEST_DEPTH: usize = 200;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_NEST_DEPTH {
            return Err(self.error(format!("input nested deeper than {MAX_NEST_DEPTH} levels")));
        }
        Ok(())
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn here(&self) -> (usize, usize) {
        let s = &self.tokens[self.pos];
        (s.line, s.col)
    }

    fn error(&self, message: String) -> Error {
        let (line, col) = self.here();
        Error { line, col, message }
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Tok) -> Result<(), Error> {
        if self.peek() == expected {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {expected}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, Error> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn unit(&mut self) -> Result<Ast, Error> {
        let mut ast = Ast {
            name: "cpl-program".to_owned(),
            ..Ast::default()
        };
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Var => ast.globals.push(self.var_decl()?),
                Tok::Requires => {
                    self.bump();
                    ast.requires = Some(self.expr()?);
                    self.eat(&Tok::Semi)?;
                }
                Tok::Ensures => {
                    self.bump();
                    ast.ensures = Some(self.expr()?);
                    self.eat(&Tok::Semi)?;
                }
                Tok::Thread => ast.threads.push(self.thread_decl()?),
                Tok::Spawn => ast.spawns.push(self.spawn()?),
                other => {
                    return Err(self.error(format!(
                        "expected a declaration (`var`, `thread`, `spawn`, `requires`, `ensures`), found {other}"
                    )))
                }
            }
        }
        Ok(ast)
    }

    fn var_decl(&mut self) -> Result<VarDecl, Error> {
        self.eat(&Tok::Var)?;
        self.var_decl_tail()
    }

    /// `NAME : TYPE (= INIT)? ;` — shared by `var` and `local`.
    fn var_decl_tail(&mut self) -> Result<VarDecl, Error> {
        let name = self.ident()?;
        self.eat(&Tok::Colon)?;
        let ty = match self.bump() {
            Tok::IntType => Type::Int,
            Tok::BoolType => Type::Bool,
            other => return Err(self.error(format!("expected a type, found {other}"))),
        };
        let init = if self.peek() == &Tok::Eq {
            self.bump();
            match (ty, self.peek().clone()) {
                (_, Tok::Star) => {
                    self.bump();
                    Init::Nondet
                }
                (Type::Bool, Tok::True) => {
                    self.bump();
                    Init::ConstBool(true)
                }
                (Type::Bool, Tok::False) => {
                    self.bump();
                    Init::ConstBool(false)
                }
                (Type::Int, _) => {
                    let e = self.expr()?;
                    let value = e.const_int().ok_or_else(|| {
                        self.error("initializer must be a constant expression".to_owned())
                    })?;
                    Init::Const(value)
                }
                (Type::Bool, other) => {
                    return Err(
                        self.error(format!("expected `true`, `false` or `*`, found {other}"))
                    )
                }
            }
        } else {
            // Default initial values: 0 / false.
            match ty {
                Type::Int => Init::Const(0),
                Type::Bool => Init::ConstBool(false),
            }
        };
        self.eat(&Tok::Semi)?;
        Ok(VarDecl { name, ty, init })
    }

    fn thread_decl(&mut self) -> Result<ThreadDecl, Error> {
        self.eat(&Tok::Thread)?;
        let name = self.ident()?;
        self.eat(&Tok::LBrace)?;
        let mut locals = Vec::new();
        while self.peek() == &Tok::Local {
            self.bump();
            locals.push(self.var_decl_tail()?);
        }
        let body = self.block_body()?;
        Ok(ThreadDecl { name, locals, body })
    }

    fn spawn(&mut self) -> Result<Spawn, Error> {
        self.eat(&Tok::Spawn)?;
        let template = self.ident()?;
        let count = if self.peek() == &Tok::Star {
            self.bump();
            match self.bump() {
                Tok::Int(n) if n >= 1 && n <= u32::MAX as i128 => n as u32,
                other => {
                    return Err(self.error(format!("expected a positive count, found {other}")))
                }
            }
        } else {
            1
        };
        self.eat(&Tok::Semi)?;
        Ok(Spawn { template, count })
    }

    /// Statements until the closing `}` (which is consumed).
    fn block_body(&mut self) -> Result<Vec<Stmt>, Error> {
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return Err(self.error("unexpected end of input inside a block".to_owned()));
            }
            stmts.push(self.stmt()?);
        }
        self.eat(&Tok::RBrace)?;
        Ok(stmts)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, Error> {
        self.eat(&Tok::LBrace)?;
        self.block_body()
    }

    fn stmt(&mut self) -> Result<Stmt, Error> {
        self.enter()?;
        let stmt = self.stmt_inner();
        self.depth -= 1;
        stmt
    }

    fn stmt_inner(&mut self) -> Result<Stmt, Error> {
        match self.peek().clone() {
            Tok::Skip => {
                self.bump();
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Skip)
            }
            Tok::Havoc => {
                self.bump();
                let x = self.ident()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Havoc(x))
            }
            Tok::Assume => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Assume(e))
            }
            Tok::Assert => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Assert(e))
            }
            Tok::If => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let c = self.expr()?;
                self.eat(&Tok::RParen)?;
                let then_branch = self.block()?;
                let else_branch = if self.peek() == &Tok::Else {
                    self.bump();
                    if self.peek() == &Tok::If {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(c, then_branch, else_branch))
            }
            Tok::While => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let c = self.expr()?;
                self.eat(&Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While(c, body))
            }
            Tok::Atomic => {
                self.bump();
                let body = self.block()?;
                Ok(Stmt::Atomic(body))
            }
            Tok::Ident(name) if self.peek2() == &Tok::Assign => {
                self.bump();
                self.bump();
                let e = self.expr()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Assign(name, e))
            }
            other => Err(self.error(format!("expected a statement, found {other}"))),
        }
    }

    // --- expressions (precedence climbing) --------------------------------

    fn expr(&mut self) -> Result<Expr, Error> {
        self.enter()?;
        let e = self.or_expr();
        self.depth -= 1;
        e
    }

    fn or_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, Error> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::NotEq => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.unary_expr()?;
        while self.peek() == &Tok::Star {
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(BinOp::Mul, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, Error> {
        self.enter()?;
        let e = match self.peek() {
            Tok::Minus => {
                self.bump();
                self.unary_expr().map(|e| Expr::Neg(Box::new(e)))
            }
            Tok::Not => {
                self.bump();
                self.unary_expr().map(|e| Expr::Not(Box::new(e)))
            }
            _ => self.primary(),
        };
        self.depth -= 1;
        e
    }

    fn primary(&mut self) -> Result<Expr, Error> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Tok::Star => {
                self.bump();
                Ok(Expr::Nondet)
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr::Var(name))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bluetooth_skeleton() {
        let src = r#"
            var pendingIo: int = 1;
            var stoppingFlag: bool = false;
            var stoppingEvent: bool = false;
            var stopped: bool = false;

            thread user {
                while (*) {
                    atomic { assume !stoppingFlag; pendingIo := pendingIo + 1; }
                    assert !stopped;
                    atomic {
                        pendingIo := pendingIo - 1;
                        if (pendingIo == 0) { stoppingEvent := true; }
                    }
                }
            }

            thread stop {
                stoppingFlag := true;
                atomic {
                    pendingIo := pendingIo - 1;
                    if (pendingIo == 0) { stoppingEvent := true; }
                }
                assume stoppingEvent;
                stopped := true;
            }

            spawn user * 2;
            spawn stop;
        "#;
        let ast = parse(src).unwrap();
        assert_eq!(ast.globals.len(), 4);
        assert_eq!(ast.threads.len(), 2);
        assert_eq!(ast.num_instances(), 3);
        let user = ast.template("user").unwrap();
        assert_eq!(user.body.len(), 1);
        let Stmt::While(Expr::Nondet, body) = &user.body[0] else {
            panic!("expected while(*)");
        };
        assert_eq!(body.len(), 3);
    }

    #[test]
    fn operator_precedence() {
        let src = "var g: int = 0; thread t { g := 1 + 2 * 3; assume g == 7 || g < 0 && g > -10; }
                   spawn t;";
        let ast = parse(src).unwrap();
        let t = ast.template("t").unwrap();
        let Stmt::Assign(_, e) = &t.body[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        assert_eq!(e.const_int(), Some(7));
        let Stmt::Assume(cond) = &t.body[1] else {
            panic!()
        };
        // || binds weaker than &&.
        let Expr::Bin(BinOp::Or, _, rhs) = cond else {
            panic!("expected top-level ||, got {cond:?}")
        };
        assert!(matches!(**rhs, Expr::Bin(BinOp::And, _, _)));
    }

    #[test]
    fn locals_and_defaults() {
        let src = "thread t { local c: int; local f: bool = true; skip; } spawn t;";
        let ast = parse(src).unwrap();
        let t = ast.template("t").unwrap();
        assert_eq!(t.locals.len(), 2);
        assert_eq!(t.locals[0].init, Init::Const(0));
        assert_eq!(t.locals[1].init, Init::ConstBool(true));
    }

    #[test]
    fn nondet_initializer() {
        let src = "var x: int = *; thread t { skip; } spawn t;";
        let ast = parse(src).unwrap();
        assert_eq!(ast.globals[0].init, Init::Nondet);
    }

    #[test]
    fn requires_ensures() {
        let src = "var x: int; requires x >= 0; ensures x >= 1; thread t { x := x + 1; } spawn t;";
        let ast = parse(src).unwrap();
        assert!(ast.requires.is_some());
        assert!(ast.ensures.is_some());
    }

    #[test]
    fn else_if_chains() {
        let src = "var x: int; thread t { if (x == 0) { skip; } else if (x == 1) { skip; } else { skip; } }
                   spawn t;";
        let ast = parse(src).unwrap();
        let t = ast.template("t").unwrap();
        let Stmt::If(_, _, else1) = &t.body[0] else {
            panic!()
        };
        assert!(matches!(else1[0], Stmt::If(_, _, _)));
    }

    #[test]
    fn error_positions() {
        let err = parse("var x int;").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected `:`"));
        let err2 = parse("thread t { x = 3; }").unwrap_err();
        assert!(err2.message.contains("statement"), "{err2}");
    }

    #[test]
    fn spawn_count_validation() {
        assert!(parse("thread t { skip; } spawn t * 0;").is_err());
        let ast = parse("thread t { skip; } spawn t * 4;").unwrap();
        assert_eq!(ast.spawns[0].count, 4);
    }
}
