//! Crash-safe verification snapshots.
//!
//! At round boundaries the supervised refinement loop serializes its
//! resumable state — program fingerprint, cumulative round counter, the
//! proof assertions accumulated for the in-progress spec (as
//! pool-independent [`ExportedTerm`]s in their stable text form), the
//! give-up history and the attempt counter — into a versioned text file.
//! Writes go through a temp file that is fsynced, renamed into place, and
//! sealed with an fsync of the parent directory ([`write_atomic_durable`]),
//! so even a power cut mid-write leaves either the previous complete
//! snapshot or none at all, never a torn one; a `checksum` line over the
//! body (verified on load) plus a trailing `end` marker additionally
//! reject truncated or bit-rotted files.
//!
//! Resuming ([`Snapshot::load`] + `seqver --resume`) seeds a fresh engine's
//! proof automaton with the recycled assertions. This is sound by
//! construction: snapshot assertions are only ever *candidate* proof
//! components — every transition of the proof automaton built from them is
//! re-validated by a Hoare-triple solver query, so a corrupted or even
//! adversarial snapshot can cost completeness (useless candidates), never
//! soundness.

use crate::govern::{AttributedGiveUp, Category, GiveUp};
use program::concurrent::Program;
use smt::term::TermPool;
use smt::transfer::ExportedTerm;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::Path;

/// Current snapshot format version; bumped on any incompatible change
/// (v2 added the mandatory `checksum` line).
pub const SNAPSHOT_VERSION: u32 = 2;

/// The header line of a version-2 snapshot.
const HEADER: &str = "seqver-snapshot v2";
/// The trailing completeness marker.
const FOOTER: &str = "end";

/// FNV-1a (64-bit) over raw bytes: a small, build- and process-stable
/// checksum for the line-oriented persistence formats (snapshots and the
/// `seqver serve` proof store). Each step is `state ← (state ⊕ byte) × p`
/// with an odd `p`, a bijection on `u64` for a fixed byte — so two inputs
/// differing in one byte can never collide, which is exactly the
/// single-sector-corruption case crash-safety cares about.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Write-ahead-journal frames
// ---------------------------------------------------------------------------
//
// Shared between the persistence layers that append rather than rewrite
// (today: the `seqver serve` proof store's WAL). A frame is one
// self-delimiting, individually checksummed unit:
//
// ```text
// frame: <seq 016x> <checksum 016x> <len>\n<len bytes of body>
// ```
//
// `seq` is a monotonically increasing sequence number (1-based), `len` a
// decimal byte count, and `checksum` the FNV-1a of `"<seq 016x>\n<body>"`
// — covering the sequence number, so a bit flip that would re-order or
// re-home a frame is caught exactly like one in its body. The body must
// end with a newline so frames concatenate into a readable text file.

/// Hard cap on one journal frame body (16 MiB): a declared length above
/// this is treated as corruption, not an allocation request.
pub const MAX_FRAME_BODY: usize = 16 << 20;

/// Renders one journal frame for `body` under sequence number `seq`.
/// The body must be newline-terminated (debug-asserted).
pub fn journal_frame(seq: u64, body: &str) -> String {
    debug_assert!(body.ends_with('\n'), "frame bodies are newline-terminated");
    let sum = fnv1a(format!("{seq:016x}\n{body}").as_bytes());
    format!("frame: {seq:016x} {sum:016x} {}\n{body}", body.len())
}

/// One frame recovered from a journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalFrame {
    pub seq: u64,
    pub body: String,
}

/// The outcome of replaying a journal's byte stream: the longest valid
/// frame prefix, where it ends, and why scanning stopped there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalReplay {
    /// Every frame of the valid prefix, in file order (sequence-number
    /// discipline — staleness, duplication — is the caller's to apply).
    pub frames: Vec<JournalFrame>,
    /// Byte offset of the first bad frame: the truncation point that
    /// discards the torn tail while keeping every valid frame.
    pub valid_len: usize,
    /// Why the scan stopped before the end of the input, if it did.
    pub torn: Option<String>,
}

/// Scans `bytes` as a sequence of [`journal_frame`]s, stopping (without
/// panicking, whatever the input) at the first frame that is torn,
/// truncated, checksum-damaged or otherwise malformed. Everything before
/// the stop point is returned; the tail is described, not trusted.
pub fn replay_journal(bytes: &[u8]) -> JournalReplay {
    let mut frames = Vec::new();
    let mut at = 0usize;
    let torn = loop {
        if at == bytes.len() {
            break None;
        }
        let rest = &bytes[at..];
        let Some(nl) = rest.iter().take(128).position(|&b| b == b'\n') else {
            break Some("unterminated frame header".to_owned());
        };
        let Ok(header) = std::str::from_utf8(&rest[..nl]) else {
            break Some("frame header is not UTF-8".to_owned());
        };
        let Some(fields) = header.strip_prefix("frame: ") else {
            break Some(format!("not a frame header: `{header}`"));
        };
        let mut parts = fields.split(' ');
        let (Some(seq), Some(sum), Some(len), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            break Some(format!("malformed frame header `{header}`"));
        };
        let (Ok(seq), Ok(declared), Ok(len)) = (
            u64::from_str_radix(seq, 16),
            u64::from_str_radix(sum, 16),
            len.parse::<usize>(),
        ) else {
            break Some(format!("malformed frame header `{header}`"));
        };
        if len > MAX_FRAME_BODY {
            break Some(format!("frame body length {len} exceeds {MAX_FRAME_BODY}"));
        }
        let body_start = nl + 1;
        if rest.len() < body_start + len {
            break Some(format!(
                "torn frame {seq:016x}: {} of {len} body bytes present",
                rest.len() - body_start.min(rest.len())
            ));
        }
        let Ok(body) = std::str::from_utf8(&rest[body_start..body_start + len]) else {
            break Some(format!("frame {seq:016x} body is not UTF-8"));
        };
        if !body.ends_with('\n') {
            break Some(format!("frame {seq:016x} body is not newline-terminated"));
        }
        let actual = fnv1a(format!("{seq:016x}\n{body}").as_bytes());
        if actual != declared {
            break Some(format!(
                "frame {seq:016x}: checksum mismatch (declared {declared:016x}, \
                 computed {actual:016x})"
            ));
        }
        frames.push(JournalFrame {
            seq,
            body: body.to_owned(),
        });
        at += body_start + len;
    };
    JournalReplay {
        frames,
        valid_len: at,
        torn,
    }
}

/// Writes `text` to `path` atomically **and durably**: the bytes go to
/// `path.tmp`, which is fsynced before the atomic `rename`, and the parent
/// directory is fsynced after it — so after a crash (even a power cut) a
/// reader observes either the previous complete file or the new complete
/// file, never a torn or empty one. The directory fsync is best-effort on
/// platforms that cannot open directories; the file fsync is mandatory.
pub fn write_atomic_durable(path: &Path, text: &str) -> Result<(), String> {
    use std::io::Write as _;
    let tmp = path.with_extension("tmp");
    let mut file = std::fs::File::create(&tmp)
        .map_err(|e| format!("cannot create `{}`: {e}", tmp.display()))?;
    file.write_all(text.as_bytes())
        .map_err(|e| format!("cannot write `{}`: {e}", tmp.display()))?;
    file.sync_all()
        .map_err(|e| format!("cannot fsync `{}`: {e}", tmp.display()))?;
    drop(file);
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot move `{}` into place: {e}", path.display()))?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        // Make the rename itself durable. Opening a directory read-only
        // works on unix; degrade silently where it does not.
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// A resumable checkpoint of a supervised verification run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Fingerprint of the program being verified (guards against resuming
    /// a snapshot on a different input file).
    pub program_hash: u64,
    /// Name of the verifier configuration that produced the snapshot.
    pub config_name: String,
    /// Escalation-ladder attempt in progress when the snapshot was taken.
    pub attempt: u32,
    /// Number of specs (asserting threads) already proven.
    pub specs_done: usize,
    /// Refinement rounds completed so far — the work the recycled
    /// assertions represent; a resumed run continues this counter.
    pub rounds_completed: usize,
    /// Give-up history accumulated across attempts (already deduped).
    pub give_ups: Vec<AttributedGiveUp>,
    /// Proof assertions of the in-progress spec, in discovery order.
    pub assertions: Vec<ExportedTerm>,
}

/// A build-stable fingerprint of the program: name, thread structure and
/// statement labels plus the pre/postcondition. `DefaultHasher::new()`
/// uses fixed keys, so the fingerprint is identical across processes of
/// the same build — exactly the guarantee checkpoint/resume needs.
pub fn program_fingerprint(pool: &TermPool, program: &Program) -> u64 {
    let mut h = DefaultHasher::new();
    program.name().hash(&mut h);
    program.num_threads().hash(&mut h);
    for l in program.letters() {
        program.thread_of(l).0.hash(&mut h);
        program.statement(l).label().hash(&mut h);
    }
    for &v in program.globals() {
        pool.var_name(v).hash(&mut h);
    }
    pool.display(program.pre()).hash(&mut h);
    pool.display(program.post()).hash(&mut h);
    h.finish()
}

/// Replaces characters that would break the line-oriented format.
fn sanitize(s: &str) -> String {
    s.replace(['\n', '\r', '\t'], " ")
}

impl Snapshot {
    /// An empty snapshot for `program` (nothing verified yet).
    pub fn empty(pool: &TermPool, program: &Program, config_name: &str) -> Snapshot {
        Snapshot {
            program_hash: program_fingerprint(pool, program),
            config_name: config_name.to_owned(),
            attempt: 0,
            specs_done: 0,
            rounds_completed: 0,
            give_ups: Vec::new(),
            assertions: Vec::new(),
        }
    }

    /// `true` when the snapshot was taken for this exact program (same
    /// fingerprint under the same build).
    pub fn matches(&self, pool: &TermPool, program: &Program) -> bool {
        self.program_hash == program_fingerprint(pool, program)
    }

    /// Renders the versioned text form. The second line is an explicit
    /// `checksum` over everything after it (through the `end` marker),
    /// verified by [`Snapshot::parse`].
    pub fn to_text(&self) -> String {
        let body = self.body_text();
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("checksum: {:016x}\n", fnv1a(body.as_bytes())));
        out.push_str(&body);
        out
    }

    /// The checksummed part of the text form (everything after the
    /// `checksum` line, including the `end` marker).
    fn body_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("program-hash: {:016x}\n", self.program_hash));
        out.push_str(&format!("config: {}\n", sanitize(&self.config_name)));
        out.push_str(&format!("attempt: {}\n", self.attempt));
        out.push_str(&format!("specs-done: {}\n", self.specs_done));
        out.push_str(&format!("rounds: {}\n", self.rounds_completed));
        for g in &self.give_ups {
            out.push_str(&format!(
                "give-up: {}\t{}\t{}\n",
                g.give_up.category,
                sanitize(&g.engine),
                sanitize(&g.give_up.reason)
            ));
        }
        for a in &self.assertions {
            out.push_str(&format!("assertion: {}\n", a.to_text()));
        }
        out.push_str(FOOTER);
        out.push('\n');
        out
    }

    /// Parses the [`Snapshot::to_text`] form, rejecting version
    /// mismatches, checksum mismatches, malformed lines and truncated
    /// files.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim_end() == HEADER => {}
            Some(h) if h.starts_with("seqver-snapshot") => {
                return Err(format!(
                    "unsupported snapshot version `{h}` (this build reads v{SNAPSHOT_VERSION})"
                ))
            }
            other => return Err(format!("not a seqver snapshot (first line {other:?})")),
        }
        // The checksum line covers the rest of the file byte-for-byte.
        let after_header = match text.split_once('\n') {
            Some((_, rest)) => rest,
            None => return Err("truncated snapshot (missing `end` marker)".to_owned()),
        };
        let (checksum_line, body) = after_header
            .split_once('\n')
            .ok_or_else(|| "truncated snapshot (missing `end` marker)".to_owned())?;
        let declared = checksum_line
            .trim_end()
            .strip_prefix("checksum: ")
            .ok_or_else(|| format!("missing checksum line (found `{checksum_line}`)"))?;
        let declared = u64::from_str_radix(declared, 16)
            .map_err(|_| format!("invalid checksum `{declared}`"))?;
        let actual = fnv1a(body.as_bytes());
        if declared != actual {
            return Err(format!(
                "checksum mismatch (declared {declared:016x}, computed {actual:016x}) — \
                 the snapshot is corrupted"
            ));
        }
        let lines = body.lines();
        let mut snapshot = Snapshot {
            program_hash: 0,
            config_name: String::new(),
            attempt: 0,
            specs_done: 0,
            rounds_completed: 0,
            give_ups: Vec::new(),
            assertions: Vec::new(),
        };
        let mut complete = false;
        let mut seen_hash = false;
        for line in lines {
            if complete {
                return Err("content after the `end` marker".to_owned());
            }
            let line = line.trim_end();
            if line == FOOTER {
                complete = true;
                continue;
            }
            let (key, value) = line
                .split_once(": ")
                .ok_or_else(|| format!("malformed snapshot line `{line}`"))?;
            match key {
                "program-hash" => {
                    snapshot.program_hash = u64::from_str_radix(value, 16)
                        .map_err(|_| format!("invalid program hash `{value}`"))?;
                    seen_hash = true;
                }
                "config" => snapshot.config_name = value.to_owned(),
                "attempt" => {
                    snapshot.attempt = value
                        .parse()
                        .map_err(|_| format!("invalid attempt `{value}`"))?
                }
                "specs-done" => {
                    snapshot.specs_done = value
                        .parse()
                        .map_err(|_| format!("invalid specs-done `{value}`"))?
                }
                "rounds" => {
                    snapshot.rounds_completed = value
                        .parse()
                        .map_err(|_| format!("invalid rounds `{value}`"))?
                }
                "give-up" => {
                    let mut fields = value.splitn(3, '\t');
                    let (Some(cat), Some(engine), Some(reason)) =
                        (fields.next(), fields.next(), fields.next())
                    else {
                        return Err(format!("malformed give-up line `{line}`"));
                    };
                    let category = Category::parse(cat)
                        .ok_or_else(|| format!("unknown give-up category `{cat}`"))?;
                    snapshot
                        .give_ups
                        .push(AttributedGiveUp::new(engine, GiveUp::new(category, reason)));
                }
                "assertion" => snapshot.assertions.push(ExportedTerm::parse(value)?),
                other => return Err(format!("unknown snapshot key `{other}`")),
            }
        }
        if !complete {
            return Err("truncated snapshot (missing `end` marker)".to_owned());
        }
        if !seen_hash {
            return Err("snapshot has no program-hash".to_owned());
        }
        Ok(snapshot)
    }

    /// Writes the snapshot to `path` crash-safely and durably (fsynced
    /// temp file, atomic `rename`, fsynced parent directory — see
    /// [`write_atomic_durable`]), so readers only ever observe complete
    /// snapshots, even across a power cut.
    pub fn save_atomic(&self, path: &Path) -> Result<(), String> {
        write_atomic_durable(path, &self.to_text())
            .map_err(|e| format!("cannot write checkpoint: {e}"))
    }

    /// Reads and parses a snapshot file.
    pub fn load(path: &Path) -> Result<Snapshot, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read snapshot `{}`: {e}", path.display()))?;
        Snapshot::parse(&text).map_err(|e| format!("invalid snapshot `{}`: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt::linear::Rel;

    fn sample() -> Snapshot {
        Snapshot {
            program_hash: 0xdead_beef_0042_1337,
            config_name: "gemcutter-seq".to_owned(),
            attempt: 2,
            specs_done: 1,
            rounds_completed: 17,
            give_ups: vec![
                AttributedGiveUp::new(
                    "gemcutter-seq",
                    GiveUp::new(Category::Deadline, "wall-clock deadline exceeded"),
                ),
                AttributedGiveUp::new(
                    "gemcutter-seq",
                    GiveUp::new(Category::SimplexPivots, "budget exhausted after 11 steps"),
                ),
            ],
            assertions: vec![
                ExportedTerm::True,
                ExportedTerm::Atom {
                    coeffs: vec![("x".into(), 1), ("y|weird".into(), -2)],
                    constant: 3,
                    rel: Rel::Le0,
                },
                ExportedTerm::And(vec![ExportedTerm::False]),
            ],
        }
    }

    #[test]
    fn text_round_trip_is_identity() {
        let snap = sample();
        let text = snap.to_text();
        assert_eq!(Snapshot::parse(&text), Ok(snap));
    }

    #[test]
    fn journal_frames_concatenate_and_replay() {
        let mut journal = String::new();
        journal.push_str(&journal_frame(1, "alpha\n"));
        journal.push_str(&journal_frame(2, "beta\nwith two lines\n"));
        journal.push_str(&journal_frame(3, "gamma\n"));
        let replay = replay_journal(journal.as_bytes());
        assert_eq!(replay.torn, None);
        assert_eq!(replay.valid_len, journal.len());
        assert_eq!(
            replay.frames,
            vec![
                JournalFrame {
                    seq: 1,
                    body: "alpha\n".to_owned()
                },
                JournalFrame {
                    seq: 2,
                    body: "beta\nwith two lines\n".to_owned()
                },
                JournalFrame {
                    seq: 3,
                    body: "gamma\n".to_owned()
                },
            ]
        );
        // The empty journal is trivially whole.
        let empty = replay_journal(b"");
        assert_eq!(empty.frames, Vec::new());
        assert_eq!((empty.valid_len, empty.torn), (0, None));
    }

    #[test]
    fn torn_tail_stops_replay_at_the_last_whole_frame() {
        let mut journal = String::new();
        journal.push_str(&journal_frame(1, "alpha\n"));
        let keep = journal.len();
        journal.push_str(&journal_frame(2, "beta\n"));
        // Chop mid-body: frame 2 is torn, frame 1 survives.
        let cut = &journal.as_bytes()[..journal.len() - 3];
        let replay = replay_journal(cut);
        assert_eq!(replay.frames.len(), 1);
        assert_eq!(replay.valid_len, keep);
        let reason = replay.torn.expect("torn tail reported");
        assert!(reason.contains("torn frame"), "{reason}");
    }

    #[test]
    fn checksum_damage_and_reseqencing_are_caught() {
        let frame = journal_frame(7, "payload\n");
        // Flip one body byte: checksum mismatch.
        let mut flipped = frame.clone().into_bytes();
        let last = flipped.len() - 2;
        flipped[last] ^= 0x01;
        let replay = replay_journal(&flipped);
        assert_eq!(replay.frames, Vec::new());
        assert!(replay.torn.expect("reported").contains("checksum"));
        // Re-home the frame under a different sequence number: the
        // checksum covers `seq`, so this is caught like a body flip.
        let rehomed = frame.replacen("0000000000000007", "0000000000000008", 1);
        let replay = replay_journal(rehomed.as_bytes());
        assert_eq!(replay.frames, Vec::new());
        assert!(replay.torn.expect("reported").contains("checksum"));
    }

    #[test]
    fn hostile_journal_headers_never_panic() {
        for bytes in [
            &b"frame: "[..],
            b"frame: zz zz zz\nx\n",
            b"frame: 0000000000000001 0000000000000002\nx\n",
            b"frame: 0000000000000001 0000000000000002 3 4\nx\n",
            b"frame: 0000000000000001 0000000000000002 99999999999999999999\nx\n",
            b"not a frame at all\n",
            b"\xff\xfe\xfd",
            b"frame: 0000000000000001 0000000000000002 1000000000\n",
        ] {
            let replay = replay_journal(bytes);
            assert_eq!(replay.frames, Vec::new());
            assert_eq!(replay.valid_len, 0);
            assert!(replay.torn.is_some(), "input {bytes:?} must report a tear");
        }
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let text = sample().to_text();
        // Drop the `end` marker: simulates a crash mid-write without the
        // atomic rename (or a torn copy). The checksum catches it first.
        let truncated = text.trim_end().trim_end_matches(FOOTER);
        assert!(Snapshot::parse(truncated).is_err());
        // Cutting mid-assertion is also rejected.
        let cut = &text[..text.len() / 2];
        assert!(Snapshot::parse(cut).is_err());
    }

    #[test]
    fn bit_rot_fails_the_checksum() {
        let text = sample().to_text();
        // Flip one byte anywhere in the body: the checksum must catch it.
        let mut bytes = text.clone().into_bytes();
        let idx = text.find("rounds: ").unwrap() + "rounds: ".len();
        bytes[idx] = if bytes[idx] == b'9' { b'8' } else { b'9' };
        let err = Snapshot::parse(std::str::from_utf8(&bytes).unwrap()).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        // A forged checksum line is also rejected.
        let mut forged = text.clone().into_bytes();
        let c = text.find("checksum: ").unwrap() + "checksum: ".len();
        forged[c] = if forged[c] == b'0' { b'1' } else { b'0' };
        assert!(Snapshot::parse(std::str::from_utf8(&forged).unwrap()).is_err());
    }

    #[test]
    fn version_and_garbage_are_rejected() {
        assert!(Snapshot::parse("seqver-snapshot v999\nend\n")
            .unwrap_err()
            .contains("version"));
        // Old v1 snapshots (no checksum) are a version mismatch, not a
        // parse crash.
        assert!(
            Snapshot::parse("seqver-snapshot v1\nprogram-hash: 0\nend\n")
                .unwrap_err()
                .contains("version")
        );
        assert!(Snapshot::parse("not a snapshot").is_err());
        assert!(Snapshot::parse("").is_err());
        // Missing hash (with a correct checksum over the empty-ish body).
        let body = "end\n";
        let text = format!(
            "{HEADER}\nchecksum: {:016x}\n{body}",
            fnv1a(body.as_bytes())
        );
        assert!(Snapshot::parse(&text).unwrap_err().contains("program-hash"));
        // Missing checksum line entirely.
        assert!(
            Snapshot::parse(&format!("{HEADER}\nprogram-hash: 0\nend\n"))
                .unwrap_err()
                .contains("checksum")
        );
    }

    #[test]
    fn fnv1a_detects_single_byte_changes() {
        let a = b"record body line\n";
        for i in 0..a.len() {
            let mut b = a.to_vec();
            b[i] ^= 0x40;
            assert_ne!(fnv1a(a), fnv1a(&b), "flip at byte {i} collided");
        }
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn save_atomic_round_trips_and_leaves_no_tmp() {
        let snap = sample();
        let dir = std::env::temp_dir().join(format!("seqver-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        snap.save_atomic(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), snap);
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        // Overwrite with a newer snapshot: load sees the newest.
        let mut newer = snap.clone();
        newer.rounds_completed += 1;
        newer.save_atomic(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap().rounds_completed, 18);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
