//! Preference orders (§4): total orders on the statement alphabet, possibly
//! varying with a finite context.
//!
//! A *positional lexicographic preference order* (Def. 4.5) lets the
//! underlying letter order depend on the prefix read so far, tracked by a
//! finite automaton. Here the context automaton is folded into the order
//! object: an [`OrderContext`] evolves via [`PreferenceOrder::step`] and
//! determines the current letter ranking via [`PreferenceOrder::rank`].
//! Classic (non-positional) orders simply ignore the context.
//!
//! Implemented orders (matching the paper's evaluation, §8):
//!
//! * [`SeqOrder`] — thread-uniform: approximates sequential composition of
//!   threads (Thm. 4.3 guarantees a linear-size reduction under full
//!   commutativity);
//! * [`LockstepOrder`] — positional: after a step of thread `i`, thread `i`
//!   is rotated to the back, approximating lockstep scheduling
//!   (Example 4.6);
//! * [`RandomOrder`] — a pseudo-random but fixed permutation of the
//!   alphabet, seeded for reproducibility.

use program::concurrent::{LetterId, Program};

/// Finite context of a positional order; `0` is the initial context.
pub type OrderContext = u64;

/// A (possibly positional) preference order on the program alphabet.
///
/// For each context, [`PreferenceOrder::rank`] must be injective on letters
/// — it induces the total strict order `a <q b ⇔ rank(q, a) < rank(q, b)`.
///
/// Orders are consulted concurrently by the parallel proof-check workers,
/// so implementations must be plain shareable data (`Send + Sync`); every
/// method takes `&self`.
pub trait PreferenceOrder: Send + Sync {
    /// A short name for reports (e.g. `"seq"`, `"lockstep"`, `"rand(1)"`).
    fn name(&self) -> &str;

    /// `true` if the order genuinely depends on the context.
    fn is_positional(&self) -> bool;

    /// The context after reading `letter` in `ctx`.
    fn step(&self, ctx: OrderContext, letter: LetterId, program: &Program) -> OrderContext;

    /// The rank of `letter` in context `ctx` (smaller = more preferred).
    fn rank(&self, ctx: OrderContext, letter: LetterId, program: &Program) -> u64;

    /// Convenience: `a <q b` in context `ctx`.
    fn less(&self, ctx: OrderContext, a: LetterId, b: LetterId, program: &Program) -> bool {
        self.rank(ctx, a, program) < self.rank(ctx, b, program)
    }
}

/// Thread-uniform lexicographic order: letters are ranked by owning thread
/// first (lower thread id preferred), then by letter id.
///
/// Under full commutativity the induced reduction is the sequential
/// composition of the threads (Thm. 4.3), recognized by a linear-size DFA.
#[derive(Clone, Debug, Default)]
pub struct SeqOrder;

impl SeqOrder {
    /// Creates the order.
    pub fn new() -> SeqOrder {
        SeqOrder
    }
}

impl PreferenceOrder for SeqOrder {
    fn name(&self) -> &str {
        "seq"
    }

    fn is_positional(&self) -> bool {
        false
    }

    fn step(&self, ctx: OrderContext, _letter: LetterId, _program: &Program) -> OrderContext {
        ctx
    }

    fn rank(&self, _ctx: OrderContext, letter: LetterId, program: &Program) -> u64 {
        let thread = program.thread_of(letter).0 as u64;
        (thread << 32) | letter.0 as u64
    }
}

/// Positional order approximating lockstep scheduling (Example 4.6).
///
/// The context records the thread that moved last (plus one; 0 = none).
/// That thread's letters are ranked after all other threads', so minimal
/// representatives rotate through the threads.
#[derive(Clone, Debug, Default)]
pub struct LockstepOrder;

impl LockstepOrder {
    /// Creates the order.
    pub fn new() -> LockstepOrder {
        LockstepOrder
    }
}

impl PreferenceOrder for LockstepOrder {
    fn name(&self) -> &str {
        "lockstep"
    }

    fn is_positional(&self) -> bool {
        true
    }

    fn step(&self, _ctx: OrderContext, letter: LetterId, program: &Program) -> OrderContext {
        program.thread_of(letter).0 as u64 + 1
    }

    fn rank(&self, ctx: OrderContext, letter: LetterId, program: &Program) -> u64 {
        let n = program.num_threads() as u64;
        let thread = program.thread_of(letter).0 as u64;
        // Rotate so that the thread recorded in ctx comes last.
        let rotated = match ctx {
            0 => thread,
            last_plus_one => (thread + n - last_plus_one.min(n)) % n.max(1),
        };
        (rotated << 32) | letter.0 as u64
    }
}

/// A thread-uniform order with an explicit thread priority permutation:
/// `priority[t]` is the rank of thread `t` (lower = more preferred).
/// Generalizes [`SeqOrder`] (which is the identity permutation); useful
/// for steering the reduction toward a particular scheduling discipline.
#[derive(Clone, Debug)]
pub struct PriorityOrder {
    priority: Vec<u32>,
    name: String,
}

impl PriorityOrder {
    /// Creates the order from a thread-priority table.
    ///
    /// # Panics
    ///
    /// Panics if `priority` is not a permutation of `0..n`.
    pub fn new(priority: Vec<u32>) -> PriorityOrder {
        let mut sorted = priority.clone();
        sorted.sort_unstable();
        assert!(
            sorted.iter().enumerate().all(|(i, &p)| p == i as u32),
            "priority table must be a permutation of 0..n"
        );
        let name = format!(
            "priority({})",
            priority
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );
        PriorityOrder { priority, name }
    }
}

impl PreferenceOrder for PriorityOrder {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_positional(&self) -> bool {
        false
    }

    fn step(&self, ctx: OrderContext, _letter: LetterId, _program: &Program) -> OrderContext {
        ctx
    }

    fn rank(&self, _ctx: OrderContext, letter: LetterId, program: &Program) -> u64 {
        let thread = program.thread_of(letter).0 as usize;
        let rank = self.priority.get(thread).copied().unwrap_or(thread as u32) as u64;
        (rank << 32) | letter.0 as u64
    }
}

/// A fixed pseudo-random permutation of the alphabet (non-positional),
/// derived from a seed via SplitMix64 — fully deterministic and
/// reproducible across runs.
#[derive(Clone, Debug)]
pub struct RandomOrder {
    seed: u64,
    name: String,
}

impl RandomOrder {
    /// Creates the order for `seed`.
    pub fn new(seed: u64) -> RandomOrder {
        RandomOrder {
            seed,
            name: format!("rand({seed})"),
        }
    }
}

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl PreferenceOrder for RandomOrder {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_positional(&self) -> bool {
        false
    }

    fn step(&self, ctx: OrderContext, _letter: LetterId, _program: &Program) -> OrderContext {
        ctx
    }

    fn rank(&self, _ctx: OrderContext, letter: LetterId, _program: &Program) -> u64 {
        // Injective per letter: mix then append the letter id in the low
        // bits to break any (astronomically unlikely) hash collision.
        (splitmix(self.seed ^ (letter.0 as u64).wrapping_mul(0x2545f4914f6cdd1d)) << 24)
            | letter.0 as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::bitset::BitSet;
    use automata::dfa::DfaBuilder;
    use program::stmt::{SimpleStmt, Statement};
    use program::thread::{Thread, ThreadId};
    use smt::term::TermPool;

    /// Three threads with two letters each.
    fn program() -> (TermPool, Program) {
        let mut pool = TermPool::new();
        let mut b = Program::builder("p");
        let mut letters = Vec::new();
        for t in 0..3u32 {
            let v = pool.var(&format!("x{t}"));
            b.add_global(v, 0);
            for s in 0..2 {
                letters.push(b.add_statement(Statement::simple(
                    ThreadId(t),
                    &format!("t{t}s{s}"),
                    SimpleStmt::Havoc(v),
                    &pool,
                )));
            }
        }
        for t in 0..3usize {
            let mut cfg = DfaBuilder::new();
            let q0 = cfg.add_state(false);
            let q1 = cfg.add_state(false);
            let q2 = cfg.add_state(true);
            cfg.add_transition(q0, letters[2 * t], q1);
            cfg.add_transition(q1, letters[2 * t + 1], q2);
            b.add_thread(Thread::new("t", cfg.build(q0), BitSet::new(3)));
        }
        let p = b.build(&mut pool);
        (pool, p)
    }

    #[test]
    fn seq_order_is_thread_uniform() {
        let (_, p) = program();
        let o = SeqOrder::new();
        // Every letter of thread 0 precedes every letter of thread 1, etc.
        for a in 0..2u32 {
            for b in 2..6u32 {
                assert!(o.less(0, LetterId(a), LetterId(b), &p));
            }
        }
        assert!(!o.is_positional());
        assert_eq!(o.step(0, LetterId(3), &p), 0);
    }

    #[test]
    fn rank_is_injective_per_context() {
        let (_, p) = program();
        let orders: Vec<Box<dyn PreferenceOrder>> = vec![
            Box::new(SeqOrder::new()),
            Box::new(LockstepOrder::new()),
            Box::new(RandomOrder::new(7)),
        ];
        for o in &orders {
            for ctx in 0..4u64 {
                let mut ranks: Vec<u64> = (0..6u32).map(|l| o.rank(ctx, LetterId(l), &p)).collect();
                ranks.sort_unstable();
                ranks.dedup();
                assert_eq!(ranks.len(), 6, "order {} ctx {ctx}", o.name());
            }
        }
    }

    #[test]
    fn lockstep_rotates_last_thread_to_back() {
        let (_, p) = program();
        let o = LockstepOrder::new();
        // Initially thread 0 first.
        assert!(o.less(0, LetterId(0), LetterId(2), &p));
        // After a step of thread 0 (letter 0), thread 0 goes last.
        let ctx = o.step(0, LetterId(0), &p);
        assert!(
            o.less(ctx, LetterId(2), LetterId(0), &p),
            "thread 1 now preferred"
        );
        assert!(
            o.less(ctx, LetterId(4), LetterId(0), &p),
            "thread 2 now preferred"
        );
        // After a step of thread 1, thread 2 is first, thread 1 last.
        let ctx2 = o.step(ctx, LetterId(2), &p);
        assert!(o.less(ctx2, LetterId(4), LetterId(2), &p));
        assert!(o.less(ctx2, LetterId(0), LetterId(2), &p));
        assert!(o.is_positional());
    }

    #[test]
    fn random_orders_differ_by_seed_and_are_stable() {
        let (_, p) = program();
        let o1 = RandomOrder::new(1);
        let o2 = RandomOrder::new(2);
        let ranks = |o: &RandomOrder| -> Vec<u64> {
            (0..6u32).map(|l| o.rank(0, LetterId(l), &p)).collect()
        };
        assert_eq!(ranks(&o1), ranks(&o1), "deterministic");
        assert_ne!(ranks(&o1), ranks(&o2), "seeds give different permutations");
        assert_eq!(o1.name(), "rand(1)");
    }
}
