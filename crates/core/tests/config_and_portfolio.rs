//! Unit-level tests of the configuration surface and the two portfolio
//! models on a compact program family.

use automata::bitset::BitSet;
use automata::dfa::DfaBuilder;
use gemcutter::portfolio::{
    adaptive_verify, default_portfolio, parallel_verify, portfolio_verify, EngineStatus,
    ParallelConfig,
};
use gemcutter::verify::{verify, OrderSpec, Verdict, VerifierConfig};
use program::concurrent::Program;
use program::stmt::{SimpleStmt, Statement};
use program::thread::{Thread, ThreadId};
use smt::linear::LinExpr;
use smt::term::TermPool;

/// Two threads increment a shared counter; a checker asserts the total.
fn two_inc(pool: &mut TermPool, bound: i128) -> Program {
    let mut b = Program::builder("two-inc");
    let c = pool.var("c");
    let done = pool.var("done");
    b.add_global(c, 0);
    b.add_global(done, 0);
    for t in 0..2u32 {
        let l = b.add_statement(Statement::atomic(
            ThreadId(t),
            "inc",
            vec![vec![
                SimpleStmt::Assign(c, LinExpr::var(c).add(&LinExpr::constant(1))),
                SimpleStmt::Assign(done, LinExpr::var(done).add(&LinExpr::constant(1))),
            ]],
            pool,
        ));
        let mut cfg = DfaBuilder::new();
        let entry = cfg.add_state(false);
        let exit = cfg.add_state(true);
        cfg.add_transition(entry, l, exit);
        b.add_thread(Thread::new("inc", cfg.build(entry), BitSet::new(2)));
    }
    let all_done = pool.ge_const(done, 2);
    let ok_guard = pool.le_const(c, bound);
    let bad_guard = pool.not(ok_guard);
    let wait = b.add_statement(Statement::simple(
        ThreadId(2),
        "await",
        SimpleStmt::Assume(all_done),
        pool,
    ));
    let ok = b.add_statement(Statement::simple(
        ThreadId(2),
        "ok",
        SimpleStmt::Assume(ok_guard),
        pool,
    ));
    let bad = b.add_statement(Statement::simple(
        ThreadId(2),
        "bad",
        SimpleStmt::Assume(bad_guard),
        pool,
    ));
    let mut cfg = DfaBuilder::new();
    let q0 = cfg.add_state(false);
    let q1 = cfg.add_state(false);
    let exit = cfg.add_state(true);
    let err = cfg.add_state(false);
    cfg.add_transition(q0, wait, q1);
    cfg.add_transition(q1, ok, exit);
    cfg.add_transition(q1, bad, err);
    let mut errors = BitSet::new(4);
    errors.insert(err.index());
    b.add_thread(Thread::new("checker", cfg.build(q0), errors));
    b.build(pool)
}

#[test]
fn order_spec_names_and_builders() {
    assert_eq!(OrderSpec::Seq.name(), "seq");
    assert_eq!(OrderSpec::Lockstep.name(), "lockstep");
    assert_eq!(OrderSpec::Random(7).name(), "rand(7)");
    assert_eq!(OrderSpec::Priority(vec![1, 0]).name(), "priority(1,0)");
    for spec in [
        OrderSpec::Seq,
        OrderSpec::Lockstep,
        OrderSpec::Random(7),
        OrderSpec::Priority(vec![1, 0]),
    ] {
        let order = spec.build();
        assert!(!order.name().is_empty());
    }
}

#[test]
fn config_constructors_have_expected_flags() {
    let gem = VerifierConfig::gemcutter_seq();
    assert!(gem.use_sleep && gem.use_persistent && gem.proof_sensitive);
    let auto = VerifierConfig::automizer();
    assert!(!auto.use_sleep && !auto.use_persistent && !auto.proof_sensitive);
    let sleep = VerifierConfig::sleep_only();
    assert!(sleep.use_sleep && !sleep.use_persistent);
    let pers = VerifierConfig::persistent_only();
    assert!(!pers.use_sleep && pers.use_persistent && !pers.proof_sensitive);
    let nops = VerifierConfig::gemcutter_seq().without_proof_sensitivity();
    assert!(!nops.proof_sensitive);
    assert!(nops.name.ends_with("-nops"));
    let farkas = VerifierConfig::gemcutter_seq().with_farkas_interpolation();
    assert!(farkas.name.ends_with("-farkas"));
}

#[test]
fn priority_order_verifies_too() {
    let mut pool = TermPool::new();
    let p = two_inc(&mut pool, 2);
    let config = VerifierConfig {
        name: "gemcutter-prio".to_owned(),
        order: OrderSpec::Priority(vec![2, 0, 1]),
        ..VerifierConfig::gemcutter_seq()
    };
    let outcome = verify(&mut pool, &p, &config);
    assert!(outcome.verdict.is_correct(), "{:?}", outcome.verdict);
}

#[test]
fn racing_and_adaptive_portfolios_agree() {
    for bound in [2i128, 1] {
        let mut pool = TermPool::new();
        let p = two_inc(&mut pool, bound);
        let race = portfolio_verify(&mut pool, &p, &default_portfolio(), true);
        let mut pool2 = TermPool::new();
        let p2 = two_inc(&mut pool2, bound);
        let (adaptive, winner) = adaptive_verify(&mut pool2, &p2, &default_portfolio(), 200);
        assert_eq!(
            race.outcome.verdict.is_correct(),
            adaptive.verdict.is_correct(),
            "bound {bound}"
        );
        if bound == 2 {
            assert!(adaptive.verdict.is_correct());
            assert!(winner.is_some());
        } else {
            assert!(matches!(adaptive.verdict, Verdict::Incorrect { .. }));
        }
    }
}

#[test]
fn adaptive_respects_round_budget() {
    let mut pool = TermPool::new();
    let p = two_inc(&mut pool, 2);
    let (outcome, winner) = adaptive_verify(&mut pool, &p, &default_portfolio(), 1);
    // One shared round cannot finish this program.
    assert!(matches!(outcome.verdict, Verdict::GaveUp(_)));
    assert!(winner.is_none());
    assert_eq!(outcome.stats.rounds, 1);
}

#[test]
fn parallel_portfolio_agrees_with_sequential() {
    for deterministic in [false, true] {
        for bound in [2i128, 1] {
            let mut pool = TermPool::new();
            let p = two_inc(&mut pool, bound);
            let pcfg = ParallelConfig {
                deterministic,
                ..ParallelConfig::default()
            };
            let result = parallel_verify(&pool, &p, &default_portfolio(), &pcfg);
            if bound == 2 {
                assert!(
                    result.outcome.verdict.is_correct(),
                    "det={deterministic}: {:?}",
                    result.outcome.verdict
                );
            } else {
                assert!(
                    matches!(result.outcome.verdict, Verdict::Incorrect { .. }),
                    "det={deterministic}: {:?}",
                    result.outcome.verdict
                );
            }
            assert!(result.winner.is_some(), "conclusive run names a winner");
            assert_eq!(result.engines.len(), default_portfolio().len());
            let wins = result
                .engines
                .iter()
                .filter(|r| r.status == EngineStatus::Won)
                .count();
            assert_eq!(wins, 1, "exactly one winner per spec phase");
            assert!(result.outcome.stats.rounds > 0);
        }
    }
}

#[test]
fn parallel_zero_wall_clock_budget_degrades_gracefully() {
    let mut pool = TermPool::new();
    let p = two_inc(&mut pool, 2);
    let pcfg = ParallelConfig {
        wall_clock_budget: Some(std::time::Duration::ZERO),
        ..ParallelConfig::default()
    };
    let result = parallel_verify(&pool, &p, &default_portfolio(), &pcfg);
    // Every engine runs out of budget before its first round; the run
    // still terminates cleanly with a give-up instead of hanging/panicking.
    assert!(matches!(result.outcome.verdict, Verdict::GaveUp(_)));
    assert!(result.winner.is_none());
    for report in &result.engines {
        assert!(
            matches!(report.status, EngineStatus::GaveUp(_) | EngineStatus::Lost),
            "{:?}",
            report.status
        );
    }
}

#[test]
fn parallel_round_budget_degrades_gracefully() {
    let mut pool = TermPool::new();
    let p = two_inc(&mut pool, 2);
    let pcfg = ParallelConfig {
        deterministic: true,
        max_rounds_per_engine: 1,
        ..ParallelConfig::default()
    };
    let result = parallel_verify(&pool, &p, &default_portfolio(), &pcfg);
    match &result.outcome.verdict {
        Verdict::GaveUp(g) => assert_eq!(g.category, gemcutter::Category::Rounds, "{g}"),
        other => panic!("expected round-budget give-up, got {other:?}"),
    }
    for report in &result.engines {
        assert!(report.rounds <= 1, "round budget respected: {report:?}");
    }
}

#[test]
fn parallel_deterministic_runs_are_reproducible() {
    let reference: Vec<_> = (0..3)
        .map(|_| {
            let mut pool = TermPool::new();
            let p = two_inc(&mut pool, 2);
            let pcfg = ParallelConfig {
                deterministic: true,
                ..ParallelConfig::default()
            };
            let r = parallel_verify(&pool, &p, &default_portfolio(), &pcfg);
            (r.outcome.verdict.is_correct(), r.winner, r.engines)
        })
        .collect();
    assert_eq!(reference[0], reference[1]);
    assert_eq!(reference[0], reference[2]);
    assert!(reference[0].0, "two_inc(2) is safe");
}

#[test]
fn run_stats_time_per_round() {
    let mut pool = TermPool::new();
    let p = two_inc(&mut pool, 2);
    let outcome = verify(&mut pool, &p, &VerifierConfig::gemcutter_seq());
    assert!(outcome.stats.rounds > 0);
    assert!(outcome.stats.time_per_round() <= outcome.stats.time);
}
