//! CDCL internals battery: audited invariants of the two-watched-literal
//! engine over a deterministic random formula stream.
//!
//! The solver collects an [`smt::cdcl::AuditReport`] when auditing is on:
//! the watch invariant is re-checked at every conflict-free fixpoint,
//! watch-list structure after every backjump, and trail decision levels
//! after both. These tests assert all violation tallies stay zero, that
//! learned clauses are asserting (1UIP) and propositionally implied by
//! the non-learned clause database, and that a governor cancellation in
//! the middle of the search leaves the pool reusable.

use smt::cdcl::{CdclOutcome, CdclSolver, Lit};
use smt::linear::{LinExpr, VarId};
use smt::resource::{Category, FaultKind, FaultPlan, ResourceGovernor};
use smt::solver::{check_with_config, SatResult, SolverConfig, SolverKind};
use smt::term::{TermId, TermPool};

const NUM_VARS: usize = 3;
const BOX: i128 = 4;

/// Splitmix64: the same tiny deterministic generator the fuzz batteries
/// use, so failures are reproducible from the seed alone.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn int(&mut self, lo: i128, hi: i128) -> i128 {
        lo + (self.next() % ((hi - lo + 1) as u64)) as i128
    }
}

fn gen_formula(pool: &mut TermPool, vars: &[VarId], rng: &mut Rng, depth: u32) -> TermId {
    if depth == 0 || rng.below(3) == 0 {
        let k = rng.int(-6, 6);
        let coeffs: Vec<(VarId, i128)> = vars.iter().map(|&v| (v, rng.int(-3, 3))).collect();
        let e = LinExpr::from_terms(coeffs, k);
        let rel = if rng.below(4) == 0 {
            smt::Rel::Eq0
        } else {
            smt::Rel::Le0
        };
        return pool.atom(e, rel);
    }
    let a = gen_formula(pool, vars, rng, depth - 1);
    let b = gen_formula(pool, vars, rng, depth - 1);
    match rng.below(3) {
        0 => pool.and([a, b]),
        1 => pool.or([a, b]),
        _ => pool.not(a),
    }
}

/// One boxed random query: the formula for `seed` conjoined with box
/// bounds on every variable.
fn boxed_query(pool: &mut TermPool, seed: u64) -> TermId {
    let mut rng = Rng(seed);
    let vars: Vec<VarId> = (0..NUM_VARS).map(|i| pool.var(&format!("v{i}"))).collect();
    let t = gen_formula(pool, &vars, &mut rng, 3);
    let mut parts = vec![t];
    for &v in &vars {
        parts.push(pool.ge_const(v, -BOX));
        parts.push(pool.le_const(v, BOX));
    }
    pool.and(parts)
}

fn solve_audited(seed: u64) -> (CdclSolver, CdclOutcome) {
    let mut pool = TermPool::new();
    pool.take_query_cache();
    let q = boxed_query(&mut pool, seed);
    let mut s = CdclSolver::new();
    s.enable_audit();
    s.add_assertion(&pool, q, 0);
    let config = SolverConfig::default();
    let out = s.solve(
        &ResourceGovernor::unlimited(),
        config.bb_budget,
        config.dpll_budget,
    );
    (s, out)
}

/// Watch invariant at every fixpoint, watch-list structure after every
/// backjump, monotone trail levels, and 1UIP assertingness — all
/// audited in-flight by the solver; the battery requires every violation
/// tally to be zero and the interesting events to actually occur.
#[test]
fn audited_invariants_hold_across_battery() {
    let mut backjumps = 0u64;
    let mut fixpoints = 0u64;
    let mut learned = 0u64;
    let mut restarts = 0u64;
    for seed in 0..400u64 {
        let (s, _) = solve_audited(seed);
        let a = s.audit_report().expect("audit enabled").clone();
        assert_eq!(a.watch_violations, 0, "seed {seed}: watch invariant");
        assert_eq!(a.structure_violations, 0, "seed {seed}: watch lists");
        assert_eq!(a.trail_violations, 0, "seed {seed}: trail levels");
        assert_eq!(a.non_asserting_learned, 0, "seed {seed}: 1UIP");
        // The search state is reset after solve; the structural half of
        // the invariant must also hold on the quiesced solver.
        s.check_watch_invariants()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        backjumps += a.backjumps;
        fixpoints += a.fixpoint_checks;
        learned += a.learned;
        restarts += a.restarts;
    }
    // The battery must actually exercise the paths it audits.
    assert!(backjumps > 0, "no backjumps across the battery");
    assert!(fixpoints > 0, "no fixpoint checks across the battery");
    assert!(learned > 0, "no learned clauses across the battery");
    let _ = restarts; // restarts are schedule-dependent; tracked, not required
}

/// A tiny propositional DPLL over [`Lit`] clauses (unit propagation plus
/// chronological branching) used to certify learned-clause implication.
fn prop_sat(assign: &mut [Option<bool>], clauses: &[Vec<Lit>]) -> bool {
    loop {
        let mut unit: Option<Lit> = None;
        for c in clauses {
            let mut satisfied = false;
            let mut unassigned = None;
            let mut open = 0usize;
            for &l in c {
                match assign[l.var() as usize] {
                    Some(v) if v == l.is_pos() => {
                        satisfied = true;
                        break;
                    }
                    None => {
                        open += 1;
                        unassigned = Some(l);
                    }
                    _ => {}
                }
            }
            if satisfied {
                continue;
            }
            match open {
                0 => return false,
                1 => {
                    unit = unassigned;
                    break;
                }
                _ => {}
            }
        }
        match unit {
            Some(l) => assign[l.var() as usize] = Some(l.is_pos()),
            None => break,
        }
    }
    let branch = clauses
        .iter()
        .flatten()
        .map(|l| l.var())
        .find(|&v| assign[v as usize].is_none());
    match branch {
        None => true,
        Some(v) => [true, false].into_iter().any(|val| {
            let mut child = assign.to_vec();
            child[v as usize] = Some(val);
            prop_sat(&mut child, clauses)
        }),
    }
}

/// Every clause learned by conflict analysis must be propositionally
/// implied by the non-learned clauses (input gates plus theory lemmas):
/// base ∧ ¬C is unsatisfiable. Theory lemmas count as premises because
/// resolution may pass through them; they are valid outright, so the
/// certificate stays sound.
#[test]
fn learned_clauses_are_implied_by_input() {
    let mut checked = 0usize;
    for seed in 0..400u64 {
        let (s, _) = solve_audited(seed);
        let infos = s.clause_infos();
        let base: Vec<Vec<Lit>> = infos
            .iter()
            .filter(|c| !c.learned)
            .map(|c| c.lits.clone())
            .collect();
        for c in infos.iter().filter(|c| c.learned) {
            let mut query = base.clone();
            for &l in &c.lits {
                query.push(vec![l.negate()]);
            }
            let mut assign = vec![None; s.num_vars()];
            assert!(
                !prop_sat(&mut assign, &query),
                "seed {seed}: learned clause {:?} not implied by the input",
                c.lits
            );
            checked += 1;
        }
        if checked >= 200 {
            break;
        }
    }
    assert!(checked > 0, "battery produced no learned clauses");
}

/// Finds a seed whose query needs at least `want` conflicts under an
/// unlimited governor, so budget tests below have a guaranteed mid-search
/// cancellation point.
fn seed_with_conflicts(want: u64) -> (u64, u64) {
    for seed in 0..2000u64 {
        let (s, _) = solve_audited(seed);
        if s.conflicts() >= want {
            return (seed, s.conflicts());
        }
    }
    panic!("no seed with ≥{want} conflicts in range");
}

/// A [`Category::CdclConflicts`] budget trips the governor mid-search;
/// the pool (and a fresh governor) must then produce the same definitive
/// verdict the legacy engine reports — cancellation must not corrupt any
/// pool state the next query reads.
#[test]
fn governor_cancellation_mid_search_leaves_pool_reusable() {
    let (seed, conflicts) = seed_with_conflicts(3);
    assert!(conflicts >= 3);

    let mut pool = TermPool::new();
    pool.take_query_cache();
    let q = boxed_query(&mut pool, seed);
    let config = SolverConfig {
        solver: SolverKind::Cdcl,
        ..SolverConfig::default()
    };

    // Cancellation at the second conflict.
    let budgeted = ResourceGovernor::builder()
        .budget(Category::CdclConflicts, 1)
        .build();
    pool.set_governor(budgeted.clone());
    let out = check_with_config(&mut pool, &[q], &config);
    assert!(
        matches!(out, SatResult::Unknown),
        "budgeted run must stay conservative, got {out:?}"
    );
    let give_up = budgeted.give_up().expect("governor tripped");
    assert_eq!(give_up.category, Category::CdclConflicts);

    // Same pool, fresh governor: the verdict must be definitive and
    // agree with the legacy engine on an untouched pool.
    pool.set_governor(ResourceGovernor::unlimited());
    let retried = check_with_config(&mut pool, &[q], &config);

    let mut fresh = TermPool::new();
    fresh.take_query_cache();
    let q2 = boxed_query(&mut fresh, seed);
    let legacy = check_with_config(
        &mut fresh,
        &[q2],
        &SolverConfig {
            solver: SolverKind::Dpll,
            ..SolverConfig::default()
        },
    );
    match (&retried, &legacy) {
        (SatResult::Sat(_), SatResult::Sat(_)) | (SatResult::Unsat, SatResult::Unsat) => {}
        other => panic!("retry after cancellation diverged: {other:?}"),
    }
}

/// Deterministic fault injection ([`FaultKind::Unknown`]) at an exact
/// conflict count: same contract as the budget trip, through the fault
/// plan the supervisor uses for crash drills.
#[test]
fn injected_fault_mid_conflict_analysis_is_conservative() {
    let (seed, _) = seed_with_conflicts(3);
    let mut pool = TermPool::new();
    pool.take_query_cache();
    let q = boxed_query(&mut pool, seed);
    let config = SolverConfig {
        solver: SolverKind::Cdcl,
        ..SolverConfig::default()
    };

    let plan = FaultPlan::new().with(Category::CdclConflicts, 2, FaultKind::Unknown);
    let faulty = ResourceGovernor::builder().fault_plan(plan).build();
    pool.set_governor(faulty);
    let out = check_with_config(&mut pool, &[q], &config);
    assert!(
        matches!(out, SatResult::Unknown),
        "fault injection must stay conservative, got {out:?}"
    );

    pool.set_governor(ResourceGovernor::unlimited());
    let retried = check_with_config(&mut pool, &[q], &config);
    assert!(
        !matches!(retried, SatResult::Unknown),
        "pool must recover a definitive verdict after the injected fault"
    );
}
