//! Solver-level query memoization: a canonicalizing, shareable result
//! cache for [`crate::solver::check`].
//!
//! Every query is keyed by the **canonical form** of its assertion
//! conjunction: the hash-consed formula is exported into the
//! pool-independent [`ExportedTerm`] representation (variables by name,
//! atoms with name-sorted coefficient lists) and the children of every
//! `∧`/`∨` node are recursively sorted. Sorting is semantics-preserving
//! (commutativity), and because the key no longer mentions pool-relative
//! [`crate::TermId`]s, structurally equal queries from *different* pools
//! share one cache line — which is what lets the parallel portfolio's
//! workers and the restart supervisor's retry attempts reuse each other's
//! verdicts.
//!
//! Soundness rules:
//!
//! * only definitive verdicts are stored — `Sat` (with its model, exported
//!   by variable name) and `Unsat`. `Unknown` is **never** cached, so a
//!   budget- or deadline-tripped governor cannot poison the cache;
//! * `Sat` entries are re-validated on every hit by exact evaluation of
//!   the queried formula under the imported model (see
//!   [`crate::solver::check_with_config`]), so a hit can never claim more
//!   than a fresh solve would;
//! * sat/unsat of a canonical term is pool-independent, so cross-pool
//!   sharing never changes a verdict, only who computes it first.
//!
//! The same rules make the cache **cross-engine**: the CDCL and legacy
//! DPLL engines (see [`crate::solver::SolverKind`]) answer the same
//! decision problem, so a verdict computed by either is a valid hit for
//! the other — the key deliberately does not encode which engine solved
//! it. The incremental [`crate::solver::AssertionScope`] engine consults
//! the cache before each scoped solve and publishes its definitive
//! verdicts back, so warm-start state and memoization compose rather
//! than compete.
//!
//! The cache is an [`Arc`]-shared, sharded hash map with a bounded
//! per-shard capacity and atomic hit/miss/insert/evict counters. Eviction
//! is **second-chance** (a one-bit clock): every lookup sets the entry's
//! referenced bit, and when a shard is over capacity the oldest entry is
//! either evicted (bit clear) or given a second chance at the back of the
//! queue (bit set, cleared in passing). Long-running daemons therefore
//! keep their working set hot under a strict memory bound, instead of
//! either leaking (unbounded growth) or churning it (plain FIFO evicting
//! the entries that are hit every round). Cloning a [`QueryCache`] — or a
//! [`crate::TermPool`] holding one — shares the underlying storage.
//!
//! For cross-*process* reuse (the `seqver serve` proof store), definitive
//! entries can be exported as `(canonical key, verdict)` pairs
//! ([`QueryCache::export_entries`]) whose verdicts have a stable text form
//! ([`CachedVerdict::to_text`]/[`CachedVerdict::parse`]); re-importing on
//! startup pre-warms a fresh cache. The same soundness rules apply: an
//! imported `Sat` model is still re-validated on every hit, so a stale or
//! corrupted entry costs a miss, never a wrong verdict.

use crate::transfer::ExportedTerm;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards. A power of two so the shard
/// index is a cheap mask; 16 comfortably exceeds the portfolio width.
const NUM_SHARDS: usize = 16;

/// Default total capacity (entries across all shards).
const DEFAULT_CAPACITY: usize = 1 << 16;

/// A definitive cached verdict. `Unknown`/`GaveUp` outcomes are
/// deliberately unrepresentable here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CachedVerdict {
    /// Satisfiable, with the witnessing model exported by variable name
    /// (pool-independent, re-validated on import).
    Sat(Vec<(String, i128)>),
    /// Unsatisfiable.
    Unsat,
}

impl CachedVerdict {
    /// Renders the verdict as a single-line token stream, stable across
    /// processes — the on-disk form used by the `seqver serve` proof
    /// store: `unsat`, or `sat (|name| value)*` with the same
    /// `|…|`-quoting (escaping `\` and `|`) as
    /// [`crate::transfer::ExportedTerm::to_text`].
    pub fn to_text(&self) -> String {
        match self {
            CachedVerdict::Unsat => "unsat".to_owned(),
            CachedVerdict::Sat(model) => {
                let mut out = String::from("sat");
                for (name, v) in model {
                    out.push_str(" (|");
                    for c in name.chars() {
                        if c == '\\' || c == '|' {
                            out.push('\\');
                        }
                        out.push(c);
                    }
                    out.push_str(&format!("| {v})"));
                }
                out
            }
        }
    }

    /// Parses the [`CachedVerdict::to_text`] form back; inverse on every
    /// well-formed input, `Err` (never a panic) on anything else.
    pub fn parse(s: &str) -> Result<CachedVerdict, String> {
        let s = s.trim();
        if s == "unsat" {
            return Ok(CachedVerdict::Unsat);
        }
        let Some(mut rest) = s.strip_prefix("sat") else {
            return Err(format!("invalid cached verdict `{s}`"));
        };
        let mut model = Vec::new();
        loop {
            rest = rest.trim_start();
            if rest.is_empty() {
                return Ok(CachedVerdict::Sat(model));
            }
            rest = rest
                .strip_prefix("(|")
                .ok_or_else(|| format!("expected `(|` in cached model near `{rest}`"))?;
            let mut name = String::new();
            let mut escaped = false;
            let mut consumed = 0;
            let mut closed = false;
            for c in rest.chars() {
                consumed += c.len_utf8();
                if escaped {
                    name.push(c);
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '|' {
                    closed = true;
                    break;
                } else {
                    name.push(c);
                }
            }
            if !closed {
                return Err("unterminated |…| name in cached model".to_owned());
            }
            rest = &rest[consumed..];
            let close = rest
                .find(')')
                .ok_or_else(|| format!("missing `)` in cached model near `{rest}`"))?;
            let value: i128 = rest[..close]
                .trim()
                .parse()
                .map_err(|_| format!("invalid model value `{}`", rest[..close].trim()))?;
            model.push((name, value));
            rest = &rest[close + 1..];
        }
    }
}

/// A point-in-time snapshot of the cache counters. Counters are
/// monotone, so the difference of two snapshots gives the activity of an
/// interval (see `RunStats` in the core crate).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real solve.
    pub misses: u64,
    /// Definitive verdicts stored.
    pub insertions: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when no lookup happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas since `earlier` (saturating, so a stale
    /// snapshot can never underflow).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// A cached verdict plus its second-chance clock bit.
struct Entry {
    verdict: CachedVerdict,
    /// Set on every lookup; grants one round of immunity at eviction time.
    referenced: bool,
}

#[derive(Default)]
struct Shard {
    map: HashMap<ExportedTerm, Entry>,
    /// Clock order for second-chance eviction (oldest at the front).
    queue: VecDeque<ExportedTerm>,
}

struct CacheInner {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

/// The sharded concurrent query cache. Cheap to clone (an [`Arc`]);
/// clones share storage and counters.
#[derive(Clone)]
pub struct QueryCache {
    inner: Arc<CacheInner>,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache::new()
    }
}

impl QueryCache {
    /// A cache with the default capacity.
    pub fn new() -> QueryCache {
        QueryCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache bounded to roughly `capacity` entries (rounded up to a
    /// multiple of the shard count; at least one entry per shard).
    pub fn with_capacity(capacity: usize) -> QueryCache {
        let capacity_per_shard = capacity.div_ceil(NUM_SHARDS).max(1);
        QueryCache {
            inner: Arc::new(CacheInner {
                shards: (0..NUM_SHARDS)
                    .map(|_| Mutex::new(Shard::default()))
                    .collect(),
                capacity_per_shard,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                insertions: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            }),
        }
    }

    fn shard(&self, key: &ExportedTerm) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.inner.shards[hasher.finish() as usize % NUM_SHARDS]
    }

    /// Looks up a canonical key, marking the entry as recently used (its
    /// second-chance bit). Does **not** count a hit or miss — the solver
    /// calls [`QueryCache::note_hit`]/[`QueryCache::note_miss`] after
    /// deciding whether the entry is actually usable (a `Sat` model that
    /// fails re-validation is counted as a miss).
    pub fn get(&self, key: &ExportedTerm) -> Option<CachedVerdict> {
        let mut shard = self.shard(key).lock().expect("qcache shard");
        let entry = shard.map.get_mut(key)?;
        entry.referenced = true;
        Some(entry.verdict.clone())
    }

    /// Records a lookup answered from the cache.
    pub fn note_hit(&self) {
        self.inner.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a lookup that fell through to a real solve.
    pub fn note_miss(&self) {
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Stores a definitive verdict, displacing a not-recently-used entry
    /// by second chance when the shard is full. (`Unknown` is
    /// unrepresentable in [`CachedVerdict`] by construction.)
    pub fn insert(&self, key: ExportedTerm, verdict: CachedVerdict) {
        let mut shard = self.shard(&key).lock().expect("qcache shard");
        let entry = Entry {
            verdict,
            referenced: false,
        };
        if shard.map.insert(key.clone(), entry).is_none() {
            shard.queue.push_back(key);
            self.inner.insertions.fetch_add(1, Ordering::Relaxed);
            if shard.queue.len() > self.inner.capacity_per_shard {
                // Second-chance sweep: the oldest unreferenced entry goes;
                // referenced entries are recycled once with the bit
                // cleared. Terminates — every pass either evicts or clears
                // a bit, and bits are not re-set while the lock is held.
                while let Some(oldest) = shard.queue.pop_front() {
                    match shard.map.get_mut(&oldest) {
                        Some(e) if e.referenced => {
                            e.referenced = false;
                            shard.queue.push_back(oldest);
                        }
                        Some(_) => {
                            shard.map.remove(&oldest);
                            self.inner.evictions.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        // Stale queue key (should not happen): drop it and
                        // keep sweeping.
                        None => {}
                    }
                }
            }
        }
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().expect("qcache shard").map.len())
            .sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exports up to `limit` cached `(canonical key, verdict)` pairs for
    /// persistence, in shard order. The selection is a best-effort recent
    /// working set (each shard contributes its newest clock entries
    /// first), bounded so a persisted store file stays small.
    pub fn export_entries(&self, limit: usize) -> Vec<(ExportedTerm, CachedVerdict)> {
        let mut out = Vec::new();
        let per_shard = limit.div_ceil(NUM_SHARDS).max(1);
        for shard in &self.inner.shards {
            let shard = shard.lock().expect("qcache shard");
            for key in shard.queue.iter().rev().take(per_shard) {
                if let Some(e) = shard.map.get(key) {
                    out.push((key.clone(), e.verdict.clone()));
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
        }
        out
    }

    /// A snapshot of the monotone counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            insertions: self.inner.insertions.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Sorts the children of every `∧`/`∨` node recursively, producing the
/// canonical pool-independent form used as the cache key. Atom
/// coefficient lists are already name-sorted by the export; conjunction
/// and disjunction are commutative, so reordering children preserves
/// satisfiability exactly.
pub fn canonicalize(term: &mut ExportedTerm) {
    if let ExportedTerm::And(children) | ExportedTerm::Or(children) = term {
        for c in children.iter_mut() {
            canonicalize(c);
        }
        children.sort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Rel;

    fn atom(name: &str, k: i128) -> ExportedTerm {
        ExportedTerm::Atom {
            coeffs: vec![(name.to_owned(), 1)],
            constant: k,
            rel: Rel::Le0,
        }
    }

    #[test]
    fn canonicalize_sorts_nested_children() {
        let mut a = ExportedTerm::And(vec![atom("y", -1), atom("x", -2)]);
        let mut b = ExportedTerm::And(vec![atom("x", -2), atom("y", -1)]);
        canonicalize(&mut a);
        canonicalize(&mut b);
        assert_eq!(a, b);
        let mut nested = ExportedTerm::Or(vec![
            ExportedTerm::And(vec![atom("b", 0), atom("a", 0)]),
            atom("c", 0),
        ]);
        let mut nested2 = ExportedTerm::Or(vec![
            atom("c", 0),
            ExportedTerm::And(vec![atom("a", 0), atom("b", 0)]),
        ]);
        canonicalize(&mut nested);
        canonicalize(&mut nested2);
        assert_eq!(nested, nested2);
    }

    #[test]
    fn insert_get_and_counters() {
        let cache = QueryCache::new();
        let key = atom("x", -5);
        assert_eq!(cache.get(&key), None);
        cache.note_miss();
        cache.insert(key.clone(), CachedVerdict::Unsat);
        assert_eq!(cache.get(&key), Some(CachedVerdict::Unsat));
        cache.note_hit();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clones_share_storage() {
        let a = QueryCache::new();
        let b = a.clone();
        a.insert(atom("x", 0), CachedVerdict::Unsat);
        assert_eq!(b.get(&atom("x", 0)), Some(CachedVerdict::Unsat));
        b.note_hit();
        assert_eq!(a.stats().hits, 1);
    }

    #[test]
    fn eviction_bounds_size() {
        let cache = QueryCache::with_capacity(NUM_SHARDS); // one entry per shard
        for i in 0..200 {
            cache.insert(atom("x", i), CachedVerdict::Unsat);
        }
        assert!(
            cache.len() <= 2 * NUM_SHARDS,
            "len {} unbounded",
            cache.len()
        );
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn second_chance_protects_the_working_set() {
        // One entry per shard; hammer one shard with inserts while a "hot"
        // entry in it is looked up between inserts — second chance must
        // keep the hot entry alive while cold entries churn.
        let cache = QueryCache::with_capacity(NUM_SHARDS);
        let hot = atom("hot", 0);
        cache.insert(hot.clone(), CachedVerdict::Unsat);
        let mut survivals = 0;
        for i in 1..100 {
            // Touch the hot entry (sets its referenced bit)…
            if cache.get(&hot).is_some() {
                survivals += 1;
            }
            // …then insert a cold entry; whatever shard it lands in may
            // evict, but a referenced `hot` is recycled, not evicted.
            cache.insert(atom("cold", i), CachedVerdict::Unsat);
        }
        assert_eq!(survivals, 99, "hot entry must survive the churn");
        assert!(cache.get(&hot).is_some());
        assert!(cache.stats().evictions > 0, "cold entries must churn");
    }

    #[test]
    fn cached_verdict_text_round_trips() {
        for v in [
            CachedVerdict::Unsat,
            CachedVerdict::Sat(vec![]),
            CachedVerdict::Sat(vec![("x".into(), 3), ("y".into(), -12)]),
            CachedVerdict::Sat(vec![
                ("pipe|name".into(), 1),
                ("back\\slash".into(), i128::MAX),
            ]),
        ] {
            assert_eq!(CachedVerdict::parse(&v.to_text()), Ok(v));
        }
        for bad in [
            "",
            "satx",
            "sat (|x| )",
            "sat (|x 1)",
            "sat (|x| 1",
            "maybe",
        ] {
            assert!(CachedVerdict::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn export_entries_is_bounded_and_reimportable() {
        let cache = QueryCache::new();
        for i in 0..50 {
            cache.insert(atom("x", i), CachedVerdict::Sat(vec![("x".into(), -i)]));
        }
        let exported = cache.export_entries(16);
        assert!(exported.len() <= 16, "limit respected: {}", exported.len());
        assert!(!exported.is_empty());
        let fresh = QueryCache::new();
        for (k, v) in &exported {
            fresh.insert(k.clone(), v.clone());
        }
        for (k, v) in &exported {
            assert_eq!(fresh.get(k).as_ref(), Some(v));
        }
    }

    #[test]
    fn reinsert_does_not_duplicate_queue() {
        let cache = QueryCache::with_capacity(NUM_SHARDS);
        for _ in 0..100 {
            cache.insert(atom("x", 1), CachedVerdict::Unsat);
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
        assert_eq!(cache.stats().evictions, 0);
    }
}
