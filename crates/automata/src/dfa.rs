//! Deterministic finite automata with partial transition functions.
//!
//! The paper (§3) models each thread, the interleaving product, and every
//! reduction as a DFA whose transition function `δ` is *partial*: a missing
//! transition simply rejects. This module provides that representation plus
//! the basic queries (`accepts`, `run`, reachability, trimming).

use crate::bitset::BitSet;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// Index of a state inside a [`Dfa`] or [`crate::Nfa`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The state's index as a `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A deterministic finite automaton over letters of type `L`.
///
/// Transitions are partial: [`Dfa::step`] returns `None` when `δ(q, a)` is
/// undefined, and a word is rejected as soon as it falls off the automaton.
///
/// Build one with [`DfaBuilder`]:
///
/// ```
/// use automata::dfa::DfaBuilder;
///
/// let mut b = DfaBuilder::new();
/// let q0 = b.add_state(true);
/// b.add_transition(q0, 0u8, q0);
/// let dfa = b.build(q0);
/// assert!(dfa.accepts([0u8, 0, 0].iter().copied()));
/// ```
#[derive(Clone, Debug)]
pub struct Dfa<L> {
    /// `transitions[q]` lists `(letter, target)` pairs sorted by letter.
    transitions: Vec<Vec<(L, StateId)>>,
    accepting: BitSet,
    initial: StateId,
}

impl<L: Copy + Eq + Ord + Hash> Dfa<L> {
    /// Number of states (including unreachable ones).
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Total number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `q` is accepting.
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting.contains(q.index())
    }

    /// `δ(q, a)`, or `None` if undefined.
    pub fn step(&self, q: StateId, letter: L) -> Option<StateId> {
        let row = &self.transitions[q.index()];
        row.binary_search_by(|(l, _)| l.cmp(&letter))
            .ok()
            .map(|i| row[i].1)
    }

    /// The letters enabled at `q` (those with a defined transition), in
    /// increasing letter order.
    pub fn enabled(&self, q: StateId) -> impl Iterator<Item = L> + '_ {
        self.transitions[q.index()].iter().map(|&(l, _)| l)
    }

    /// The outgoing `(letter, target)` edges of `q` in letter order.
    pub fn edges(&self, q: StateId) -> impl Iterator<Item = (L, StateId)> + '_ {
        self.transitions[q.index()].iter().copied()
    }

    /// Runs the automaton on `word` from the initial state.
    ///
    /// Returns the reached state, or `None` if the run falls off a missing
    /// transition (the paper's `δ*` restricted to complete runs).
    pub fn run(&self, word: impl IntoIterator<Item = L>) -> Option<StateId> {
        let mut q = self.initial;
        for a in word {
            q = self.step(q, a)?;
        }
        Some(q)
    }

    /// Runs the automaton on the longest prefix of `word` for which a run
    /// exists, returning the reached state (the paper's `δ*₊`).
    pub fn run_longest_prefix(&self, word: impl IntoIterator<Item = L>) -> StateId {
        let mut q = self.initial;
        for a in word {
            match self.step(q, a) {
                Some(next) => q = next,
                None => break,
            }
        }
        q
    }

    /// Language membership.
    pub fn accepts(&self, word: impl IntoIterator<Item = L>) -> bool {
        self.run(word).is_some_and(|q| self.is_accepting(q))
    }

    /// The set of states reachable from the initial state.
    pub fn reachable_states(&self) -> BitSet {
        let mut seen = BitSet::new(self.num_states());
        let mut stack = vec![self.initial];
        seen.insert(self.initial.index());
        while let Some(q) = stack.pop() {
            for &(_, t) in &self.transitions[q.index()] {
                if seen.insert(t.index()) {
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// The set of states from which some accepting state is reachable.
    pub fn coreachable_states(&self) -> BitSet {
        // Reverse adjacency, then BFS from accepting states.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); self.num_states()];
        for (q, row) in self.transitions.iter().enumerate() {
            for &(_, t) in row {
                rev[t.index()].push(StateId(q as u32));
            }
        }
        let mut seen = BitSet::new(self.num_states());
        let mut stack: Vec<StateId> = self.accepting.iter().map(|i| StateId(i as u32)).collect();
        for q in &stack {
            seen.insert(q.index());
        }
        while let Some(q) = stack.pop() {
            for &p in &rev[q.index()] {
                if seen.insert(p.index()) {
                    stack.push(p);
                }
            }
        }
        seen
    }

    /// `true` iff the recognized language is empty.
    pub fn is_empty(&self) -> bool {
        let reach = self.reachable_states();
        !self.accepting.iter().any(|i| reach.contains(i))
    }

    /// Returns the automaton restricted to states that are both reachable and
    /// co-reachable, renumbering states. The language is unchanged.
    ///
    /// If the initial state is pruned (empty language), the result is a
    /// single non-accepting initial state with no transitions.
    pub fn trim(&self) -> Dfa<L> {
        let mut keep = self.reachable_states();
        keep.intersect_with(&self.coreachable_states());
        if !keep.contains(self.initial.index()) {
            let mut b = DfaBuilder::new();
            let q0 = b.add_state(false);
            return b.build(q0);
        }
        let mut rename: HashMap<StateId, StateId> = HashMap::new();
        let mut b = DfaBuilder::new();
        for i in keep.iter() {
            let q = StateId(i as u32);
            let nq = b.add_state(self.is_accepting(q));
            rename.insert(q, nq);
        }
        for i in keep.iter() {
            let q = StateId(i as u32);
            for &(l, t) in &self.transitions[q.index()] {
                if keep.contains(t.index()) {
                    b.add_transition(rename[&q], l, rename[&t]);
                }
            }
        }
        b.build(rename[&self.initial])
    }

    /// All distinct letters appearing on some transition, sorted.
    pub fn alphabet(&self) -> Vec<L> {
        let mut letters: Vec<L> = self
            .transitions
            .iter()
            .flat_map(|row| row.iter().map(|&(l, _)| l))
            .collect();
        letters.sort_unstable();
        letters.dedup();
        letters
    }

    /// Iterator over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.num_states() as u32).map(StateId)
    }
}

/// Incremental constructor for [`Dfa`].
///
/// # Example
///
/// ```
/// use automata::dfa::DfaBuilder;
///
/// let mut b = DfaBuilder::new();
/// let q0 = b.add_state(false);
/// let q1 = b.add_state(true);
/// b.add_transition(q0, 'x', q1);
/// let dfa = b.build(q0);
/// assert_eq!(dfa.num_states(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DfaBuilder<L> {
    transitions: Vec<Vec<(L, StateId)>>,
    accepting: Vec<bool>,
}

impl<L: Copy + Eq + Ord + Hash> DfaBuilder<L> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DfaBuilder {
            transitions: Vec::new(),
            accepting: Vec::new(),
        }
    }

    /// Adds a state and returns its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        self.transitions.push(Vec::new());
        self.accepting.push(accepting);
        StateId(self.transitions.len() as u32 - 1)
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Marks `q` accepting or not.
    pub fn set_accepting(&mut self, q: StateId, accepting: bool) {
        self.accepting[q.index()] = accepting;
    }

    /// Adds the transition `δ(from, letter) = to`.
    ///
    /// # Panics
    ///
    /// Panics if a *different* transition on the same letter already exists
    /// from `from` (determinism violation). Re-adding the identical
    /// transition is a no-op.
    pub fn add_transition(&mut self, from: StateId, letter: L, to: StateId) {
        let row = &mut self.transitions[from.index()];
        match row.binary_search_by(|(l, _)| l.cmp(&letter)) {
            Ok(i) => assert_eq!(
                row[i].1, to,
                "determinism violation: duplicate transition on the same letter"
            ),
            Err(i) => row.insert(i, (letter, to)),
        }
    }

    /// Finalizes the automaton with `initial` as the initial state.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is not a state of this builder.
    pub fn build(self, initial: StateId) -> Dfa<L> {
        assert!(
            initial.index() < self.transitions.len(),
            "initial state out of range"
        );
        let mut accepting = BitSet::new(self.accepting.len().max(1));
        for (i, &acc) in self.accepting.iter().enumerate() {
            if acc {
                accepting.insert(i);
            }
        }
        Dfa {
            transitions: self.transitions,
            accepting,
            initial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `(ab)*` over {a, b}.
    fn ab_star() -> Dfa<char> {
        let mut b = DfaBuilder::new();
        let q0 = b.add_state(true);
        let q1 = b.add_state(false);
        b.add_transition(q0, 'a', q1);
        b.add_transition(q1, 'b', q0);
        b.build(q0)
    }

    #[test]
    fn accepts_and_rejects() {
        let d = ab_star();
        assert!(d.accepts("".chars()));
        assert!(d.accepts("ab".chars()));
        assert!(d.accepts("abab".chars()));
        assert!(!d.accepts("a".chars()));
        assert!(!d.accepts("ba".chars()));
        assert!(!d.accepts("abz".chars()));
    }

    #[test]
    fn run_longest_prefix_stops_at_missing_edge() {
        let d = ab_star();
        assert_eq!(d.run_longest_prefix("aX".chars()), StateId(1));
        assert_eq!(d.run_longest_prefix("abab".chars()), StateId(0));
    }

    #[test]
    fn enabled_letters() {
        let d = ab_star();
        assert_eq!(d.enabled(StateId(0)).collect::<Vec<_>>(), vec!['a']);
        assert_eq!(d.enabled(StateId(1)).collect::<Vec<_>>(), vec!['b']);
    }

    #[test]
    fn reachability_and_trim() {
        let mut b = DfaBuilder::new();
        let q0 = b.add_state(false);
        let q1 = b.add_state(true);
        let dead = b.add_state(false); // reachable but not co-reachable
        let unreach = b.add_state(true); // accepting but unreachable
        b.add_transition(q0, 'a', q1);
        b.add_transition(q0, 'd', dead);
        b.add_transition(unreach, 'a', q1);
        let d = b.build(q0);
        assert_eq!(d.reachable_states().len(), 3);
        assert!(d.coreachable_states().contains(q0.index()));
        assert!(!d.coreachable_states().contains(dead.index()));
        let t = d.trim();
        assert_eq!(t.num_states(), 2);
        assert!(t.accepts("a".chars()));
        assert!(!t.accepts("d".chars()));
    }

    #[test]
    fn trim_empty_language() {
        let mut b = DfaBuilder::new();
        let q0 = b.add_state(false);
        b.add_transition(q0, 'a', q0);
        let d = b.build(q0);
        assert!(d.is_empty());
        let t = d.trim();
        assert_eq!(t.num_states(), 1);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "determinism violation")]
    fn duplicate_transition_panics() {
        let mut b = DfaBuilder::new();
        let q0 = b.add_state(false);
        let q1 = b.add_state(true);
        b.add_transition(q0, 'a', q0);
        b.add_transition(q0, 'a', q1);
    }

    #[test]
    fn alphabet_is_sorted_and_deduped() {
        let d = ab_star();
        assert_eq!(d.alphabet(), vec!['a', 'b']);
    }

    #[test]
    fn idempotent_duplicate_transition_ok() {
        let mut b = DfaBuilder::new();
        let q0 = b.add_state(true);
        b.add_transition(q0, 'a', q0);
        b.add_transition(q0, 'a', q0);
        let d = b.build(q0);
        assert_eq!(d.num_transitions(), 1);
    }
}
