//! Checkpoint round-trip property battery: a snapshot written at a round
//! boundary survives serialize → parse **bit-identically**, and resuming
//! verification from the parsed copy reaches the same verdict, the same
//! cumulative round count and the same proof size as an uninterrupted
//! run of the same program.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use seqver::gemcutter::govern::{FaultPlan, GovernorConfig};
use seqver::gemcutter::snapshot::Snapshot;
use seqver::gemcutter::supervise::{supervised_verify, RetryPolicy, SuperviseConfig};
use seqver::gemcutter::verify::VerifierConfig;
use seqver::program::concurrent::Program;
use seqver::smt::TermPool;

/// `workers` increment threads of `iters` iterations plus a checker; safe
/// iff `bound >= workers * iters`.
fn chain_source(workers: usize, iters: usize, bound: i64) -> String {
    format!(
        r#"
        var c: int = 0;
        var done: int = 0;
        thread inc {{
            local i: int = 0;
            while (i < {iters}) {{
                c := c + 1;
                i := i + 1;
            }}
            done := done + 1;
        }}
        thread checker {{
            assume done >= {workers};
            assert c <= {bound};
        }}
        spawn inc * {workers};
        spawn checker;
        "#
    )
}

fn compile(source: &str) -> (TermPool, Program) {
    let mut pool = TermPool::new();
    let p = seqver::cpl::compile(source, &mut pool).unwrap();
    (pool, p)
}

/// A fresh checkpoint path per case (proptest reuses the process).
fn scratch_path() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("seqver-roundtrip-{}-{n}.ckpt", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn snapshot_roundtrips_and_resume_matches_uninterrupted(
        workers in 2usize..=3,
        iters in 1usize..=2,
        safe_flag in 0u8..2,
        abort_round in 2u64..=6,
    ) {
        let bound = (workers * iters) as i64 - if safe_flag == 1 { 0 } else { 1 };
        let source = chain_source(workers, iters, bound);

        // Reference: uninterrupted, unlimited run.
        let (mut pool, p) = compile(&source);
        let reference = supervised_verify(
            &mut pool,
            &p,
            &VerifierConfig::gemcutter_seq(),
            &SuperviseConfig::default(),
        );

        // Kill: abort deterministically at `abort_round` while writing
        // round-boundary checkpoints.
        let ckpt = scratch_path();
        let faulty = VerifierConfig {
            govern: GovernorConfig {
                fault_plan: FaultPlan::parse(&format!("rounds:{abort_round}:unknown")).unwrap(),
                ..GovernorConfig::default()
            },
            ..VerifierConfig::gemcutter_seq()
        };
        let (mut pool2, p2) = compile(&source);
        let killed = supervised_verify(
            &mut pool2,
            &p2,
            &faulty,
            &SuperviseConfig {
                checkpoint: Some(ckpt.clone()),
                ..SuperviseConfig::default()
            },
        );
        prop_assert!(killed.checkpoint_error.is_none(), "{:?}", killed.checkpoint_error);

        // Only resume when the fault actually fired mid-proof and a
        // checkpoint was written (tiny programs may conclude first).
        if killed.outcome.verdict.give_up().is_some() && ckpt.exists() {
            // Serialize → parse is bit-identical.
            let snap = Snapshot::load(&ckpt).unwrap();
            let reparsed = Snapshot::parse(&snap.to_text()).unwrap();
            prop_assert_eq!(snap.to_text(), reparsed.to_text(), "snapshot text not stable");

            // Re-verify from the parsed copy.
            let (mut pool3, p3) = compile(&source);
            let resumed = supervised_verify(
                &mut pool3,
                &p3,
                &VerifierConfig::gemcutter_seq(),
                &SuperviseConfig {
                    policy: RetryPolicy::default(),
                    resume: Some(reparsed),
                    ..SuperviseConfig::default()
                },
            );
            prop_assert_eq!(
                format!("{:?}", resumed.outcome.verdict),
                format!("{:?}", reference.outcome.verdict),
                "resumed verdict diverged"
            );
            prop_assert_eq!(
                resumed.outcome.stats.rounds,
                reference.outcome.stats.rounds,
                "cumulative round count diverged"
            );
            prop_assert_eq!(
                resumed.outcome.stats.proof_size,
                reference.outcome.stats.proof_size,
                "proof size diverged"
            );
        }
        let _ = std::fs::remove_file(&ckpt);
    }
}
