//! Cross-pool term translation.
//!
//! [`TermId`]s are indices into one [`TermPool`]'s hash-cons table, so they
//! are meaningless in any other pool. To ship assertions between engines that
//! run on separate threads — each with its own pool — a term is *exported*
//! into the pool-independent [`ExportedTerm`] representation (variables are
//! identified by name, constraints by their coefficient lists) and
//! *imported* on the receiving side, re-interning variables and re-running
//! the pool's normalizing constructors.
//!
//! The representation is plain data (`String`/`i128`/`Vec`), hence `Send`,
//! which is what lets assertion chains cross an `mpsc` channel in the
//! parallel portfolio.

use crate::linear::{LinExpr, Rel};
use crate::term::{Term, TermId, TermPool};

/// A pool-independent serialization of a term.
///
/// Structurally mirrors [`Term`], but atoms carry variable *names* instead of
/// pool-relative [`crate::VarId`]s, and connectives own their children
/// instead of referencing interned ids.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ExportedTerm {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A linear constraint `sum(coeff * var) + constant REL 0`.
    Atom {
        /// Named variables with their coefficients, in the exporting pool's
        /// normalized order.
        coeffs: Vec<(String, i128)>,
        /// The constant term of the linear expression.
        constant: i128,
        /// The constraint relation (`≤ 0` or `= 0`).
        rel: Rel,
    },
    /// Conjunction of the children.
    And(Vec<ExportedTerm>),
    /// Disjunction of the children.
    Or(Vec<ExportedTerm>),
}

impl TermPool {
    /// Serializes `id` into a pool-independent [`ExportedTerm`].
    pub fn export(&self, id: TermId) -> ExportedTerm {
        match self.term(id) {
            Term::True => ExportedTerm::True,
            Term::False => ExportedTerm::False,
            Term::Atom(c) => {
                // Pool-internal coefficient order follows VarId numbering,
                // which differs between pools; sort by name so structurally
                // equal terms export identically from any pool.
                let mut coeffs: Vec<_> = c
                    .expr()
                    .terms()
                    .iter()
                    .map(|&(v, k)| (self.var_name(v).to_owned(), k))
                    .collect();
                coeffs.sort();
                ExportedTerm::Atom {
                    coeffs,
                    constant: c.expr().constant_term(),
                    rel: c.rel(),
                }
            }
            Term::And(children) => {
                ExportedTerm::And(children.iter().map(|&c| self.export(c)).collect())
            }
            Term::Or(children) => {
                ExportedTerm::Or(children.iter().map(|&c| self.export(c)).collect())
            }
        }
    }

    /// Re-interns an [`ExportedTerm`] in this pool.
    ///
    /// Variables are resolved by name (created on first sight), and the
    /// normalizing `atom`/`and`/`or` constructors run again, so the result is
    /// hash-consed exactly as if the term had been built here natively. In
    /// particular `import(export(t)) == t` within one pool.
    pub fn import(&mut self, term: &ExportedTerm) -> TermId {
        match term {
            ExportedTerm::True => TermPool::TRUE,
            ExportedTerm::False => TermPool::FALSE,
            ExportedTerm::Atom {
                coeffs,
                constant,
                rel,
            } => {
                let resolved: Vec<_> = coeffs
                    .iter()
                    .map(|(name, k)| (self.var(name), *k))
                    .collect();
                self.atom(LinExpr::from_terms(resolved, *constant), *rel)
            }
            ExportedTerm::And(children) => {
                let ids: Vec<_> = children.iter().map(|c| self.import(c)).collect();
                self.and(ids)
            }
            ExportedTerm::Or(children) => {
                let ids: Vec<_> = children.iter().map(|c| self.import(c)).collect();
                self.or(ids)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{check, SatResult};

    fn sample_term(pool: &mut TermPool) -> TermId {
        let x = pool.var("x");
        let y = pool.var("y");
        let a = pool.le(&LinExpr::var(x), &LinExpr::constant(5));
        let b = pool.ge(
            &LinExpr::var(y),
            &LinExpr::var(x).add(&LinExpr::constant(1)),
        );
        let c = pool.eq_const(x, 3);
        let ab = pool.and([a, b]);
        pool.or([ab, c])
    }

    #[test]
    fn exported_term_is_send_and_static() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<ExportedTerm>();
    }

    #[test]
    fn round_trip_same_pool_is_identity() {
        let mut pool = TermPool::new();
        let t = sample_term(&mut pool);
        let exported = pool.export(t);
        assert_eq!(pool.import(&exported), t);
        assert_eq!(pool.import(&ExportedTerm::True), TermPool::TRUE);
        assert_eq!(pool.import(&ExportedTerm::False), TermPool::FALSE);
    }

    #[test]
    fn round_trip_across_pools_preserves_structure() {
        let mut a = TermPool::new();
        let t = sample_term(&mut a);
        let exported = a.export(t);

        // A pool with a different variable numbering: interning unrelated
        // variables first shifts every VarId the import will allocate.
        let mut b = TermPool::new();
        b.var("unrelated");
        b.var("y"); // note: y before x, opposite of pool `a`
        let imported = b.import(&exported);

        assert_eq!(b.export(imported), exported);
        // Shipping the term back into the original pool reproduces `t`
        // exactly (hash-consing makes this an id-level identity).
        assert_eq!(a.import(&b.export(imported)), t);
    }

    #[test]
    fn round_trip_preserves_satisfiability() {
        let mut a = TermPool::new();
        let x = a.var("x");
        let y = a.var("y");

        // Satisfiable: x <= 5 && y = x + 1.
        let sat1 = a.le(&LinExpr::var(x), &LinExpr::constant(5));
        let sat2 = a.eq(
            &LinExpr::var(y),
            &LinExpr::var(x).add(&LinExpr::constant(1)),
        );
        // Unsatisfiable: x <= 2 && x >= 4.
        let unsat1 = a.le(&LinExpr::var(x), &LinExpr::constant(2));
        let unsat2 = a.ge(&LinExpr::var(x), &LinExpr::constant(4));

        let mut b = TermPool::new();
        b.var("z"); // shift variable numbering
        let (s1, s2, u1, u2) = (
            b.import(&a.export(sat1)),
            b.import(&a.export(sat2)),
            b.import(&a.export(unsat1)),
            b.import(&a.export(unsat2)),
        );

        assert!(matches!(check(&mut b, &[s1, s2]), SatResult::Sat(_)));
        assert!(matches!(check(&mut b, &[u1, u2]), SatResult::Unsat));
        // Same verdicts as in the original pool.
        assert!(matches!(check(&mut a, &[sat1, sat2]), SatResult::Sat(_)));
        assert!(matches!(check(&mut a, &[unsat1, unsat2]), SatResult::Unsat));
    }

    #[test]
    fn import_rebuilds_through_normalizing_constructors() {
        // A hand-built ExportedTerm whose atom is not normalized (gcd 2) and
        // whose conjunction contains `true`: import must normalize both.
        let raw = ExportedTerm::And(vec![
            ExportedTerm::True,
            ExportedTerm::Atom {
                coeffs: vec![("v".into(), 2)],
                constant: -4,
                rel: Rel::Le0,
            },
        ]);
        let mut pool = TermPool::new();
        let id = pool.import(&raw);
        // 2v - 4 <= 0 normalizes to v - 2 <= 0, and the `true` conjunct drops.
        assert_eq!(pool.display(id), {
            let v = pool.var("v");
            let expect = pool.le_const(v, 2);
            pool.display(expect)
        });
    }
}
