//! Property test: `parse ∘ to_source` is the identity on random ASTs, and
//! every well-typed random program compiles.

use cpl::ast::*;
use cpl::parser::parse;
use cpl::print::to_source;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Avoid keywords: prefix with 'v'.
    "[a-z]{0,6}".prop_map(|s| format!("v{s}"))
}

fn int_expr(vars: Vec<String>) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i128..100).prop_map(Expr::Int),
        proptest::sample::select(vars).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Sub, a, b)),
            (0i128..5, inner.clone()).prop_map(|(k, e)| Expr::bin(BinOp::Mul, Expr::Int(k), e)),
            inner.prop_map(|e| Expr::Neg(Box::new(e))),
        ]
    })
}

fn bool_expr(vars: Vec<String>) -> impl Strategy<Value = Expr> {
    let cmp = prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ];
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Bool),
        (cmp, int_expr(vars.clone()), int_expr(vars)).prop_map(|(op, a, b)| Expr::bin(op, a, b)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::And, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Or, a, b)),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn statement(vars: Vec<String>) -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        Just(Stmt::Skip),
        proptest::sample::select(vars.clone()).prop_map(Stmt::Havoc),
        (
            proptest::sample::select(vars.clone()),
            int_expr(vars.clone())
        )
            .prop_map(|(x, e)| Stmt::Assign(x, e)),
        bool_expr(vars.clone()).prop_map(Stmt::Assume),
        bool_expr(vars.clone()).prop_map(Stmt::Assert),
    ];
    let vars2 = vars.clone();
    leaf.prop_recursive(2, 12, 3, move |inner| {
        let body = proptest::collection::vec(inner.clone(), 0..3);
        prop_oneof![
            (bool_expr(vars2.clone()), body.clone(), body.clone())
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            (bool_expr(vars2.clone()), body.clone()).prop_map(|(c, b)| Stmt::While(c, b)),
        ]
    })
}

fn program() -> impl Strategy<Value = Ast> {
    let vars: Vec<String> = (0..3).map(|i| format!("g{i}")).collect();
    let globals: Vec<VarDecl> = vars
        .iter()
        .map(|name| VarDecl {
            name: name.clone(),
            ty: Type::Int,
            init: Init::Const(0),
        })
        .collect();
    (
        proptest::collection::vec(statement(vars.clone()), 1..4),
        1u32..3,
        ident(),
    )
        .prop_map(move |(body, count, tname)| Ast {
            name: "cpl-program".to_owned(),
            globals: globals.clone(),
            requires: None,
            ensures: None,
            threads: vec![ThreadDecl {
                name: tname.clone(),
                locals: vec![],
                body,
            }],
            spawns: vec![Spawn {
                template: tname,
                count,
            }],
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_round_trip(ast in program()) {
        let printed = to_source(&ast);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed source does not parse: {e}\n{printed}"));
        prop_assert_eq!(&ast, &reparsed, "\n{}", printed);
    }

    #[test]
    fn well_typed_random_programs_compile(ast in program()) {
        let printed = to_source(&ast);
        let mut pool = smt::term::TermPool::new();
        // All generated programs are well-typed by construction.
        let program = cpl::compile(&printed, &mut pool)
            .unwrap_or_else(|e| panic!("{e}\n{printed}"));
        prop_assert!(program.num_threads() >= 1);
        prop_assert_eq!(program.size() >= 1, true);
    }
}
