//! Quickstart: compile a small concurrent program and verify it.
//!
//! Run: `cargo run --release --example quickstart`

use seqver::cpl;
use seqver::gemcutter::verify::{verify, Verdict, VerifierConfig};
use seqver::smt::TermPool;

fn main() {
    let source = r#"
        // Two workers increment a shared counter behind a spinlock; a
        // checker asserts the final value once both are done.
        var lock: int = 0;
        var counter: int = 0;
        var done: int = 0;

        thread worker {
            atomic { assume lock == 0; lock := 1; }
            counter := counter + 1;
            lock := 0;
            atomic { done := done + 1; }
        }

        thread checker {
            assume done == 2;
            assert counter == 2;
        }

        spawn worker * 2;
        spawn checker;
    "#;

    let mut pool = TermPool::new();
    let program = cpl::compile(source, &mut pool).expect("valid CPL");
    println!(
        "program `{}`: {} threads, {} statements, size(P) = {}",
        program.name(),
        program.num_threads(),
        program.num_letters(),
        program.size()
    );

    let config = VerifierConfig::gemcutter_seq();
    let outcome = verify(&mut pool, &program, &config);
    match &outcome.verdict {
        Verdict::Correct => println!("verdict: CORRECT"),
        Verdict::Incorrect { trace } => {
            println!("verdict: INCORRECT — witness:");
            for &l in trace {
                println!("  {}", program.statement(l).label());
            }
        }
        Verdict::GaveUp(give_up) => println!("verdict: GAVE-UP {give_up}"),
    }
    println!(
        "stats: {} refinement rounds, proof size {}, {} visited states, {:?}",
        outcome.stats.rounds,
        outcome.stats.proof_size,
        outcome.stats.visited_states,
        outcome.stats.time
    );
}
