//! Incremental-simplex regression battery.
//!
//! The CDCL engine keeps one warm [`IncrementalSimplex`] across decision
//! levels, scope pushes/pops, and whole `AssertionScope` batteries. These
//! tests pin the contract that makes that reuse sound:
//!
//! * asserting a battery after arbitrary mark/undo churn yields the same
//!   verdict as a fresh solver and as the batch rational check;
//! * a warm basis left over from a *different* battery never changes a
//!   verdict;
//! * `AssertionScope` batteries under the CDCL engine agree with
//!   one-shot legacy checks on every extra.
//!
//! Corpus-level identity (same verdicts *and* same per-benchmark round
//! counts for `--solver=cdcl` vs `--solver=dpll`) is enforced end-to-end
//! by the `table2` bench harness, which panics on any drift.

use smt::linear::{LinExpr, LinearConstraint, NormalizedConstraint, Rel, VarId};
use smt::rational::Rat;
use smt::resource::ResourceGovernor;
use smt::simplex::{check_rational, IncrementalSimplex, SimplexResult, TheoryResult};
use smt::solver::{check, AssertionScope, SatResult, SolverKind};
use smt::term::{TermId, TermPool};

const NUM_VARS: usize = 3;

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn int(&mut self, lo: i128, hi: i128) -> i128 {
        lo + (self.next() % ((hi - lo + 1) as u64)) as i128
    }
}

fn gen_constraint(rng: &mut Rng) -> Option<LinearConstraint> {
    let k = rng.int(-6, 6);
    let coeffs: Vec<(VarId, i128)> = (0..NUM_VARS)
        .map(|i| (VarId(i as u32), rng.int(-3, 3)))
        .collect();
    let e = LinExpr::from_terms(coeffs, k);
    let rel = if rng.below(4) == 0 {
        Rel::Eq0
    } else {
        Rel::Le0
    };
    match LinearConstraint::new(e, rel) {
        NormalizedConstraint::Constraint(c) => Some(c),
        _ => None,
    }
}

fn gen_battery(rng: &mut Rng, max: usize) -> Vec<LinearConstraint> {
    let n = 1 + rng.below(max as u64) as usize;
    (0..n * 2)
        .filter_map(|_| gen_constraint(rng))
        .take(n)
        .collect()
}

/// `Some(feasible)` or `None` when the check was inconclusive (overflow
/// or governor) and the seed should be skipped.
fn assert_all(
    inc: &mut IncrementalSimplex,
    cs: &[LinearConstraint],
    governor: &ResourceGovernor,
) -> Option<bool> {
    for (i, c) in cs.iter().enumerate() {
        match inc.assert_constraint(c, i as u32) {
            TheoryResult::Conflict(_) => return Some(false),
            TheoryResult::Unknown => return None,
            TheoryResult::Ok => {}
        }
    }
    match inc.check(governor) {
        TheoryResult::Ok => Some(true),
        TheoryResult::Conflict(_) => Some(false),
        TheoryResult::Unknown => None,
    }
}

/// Exact rational evaluation of the incremental model against every
/// constraint (the model must witness its own `Ok`).
fn model_satisfies(inc: &IncrementalSimplex, cs: &[LinearConstraint]) -> bool {
    let vals = inc.values();
    let value = |v: VarId| {
        vals.iter()
            .find(|(w, _)| *w == v)
            .map(|(_, r)| *r)
            .unwrap_or(Rat::ZERO)
    };
    cs.iter().all(|c| {
        let mut acc = Rat::from_int(c.expr().constant_term());
        for &(v, k) in c.expr().terms() {
            acc = acc.add(Rat::from_int(k).mul(value(v)).unwrap()).unwrap();
        }
        match c.rel() {
            Rel::Le0 => acc <= Rat::ZERO,
            Rel::Eq0 => acc == Rat::ZERO,
        }
    })
}

/// Random nested mark/undo churn, then the real battery: the verdict must
/// match the batch rational check, and feasible models must evaluate.
/// (Promoted from the scratch differential that found the original
/// warm-basis bugs.)
#[test]
fn churned_assertions_match_batch_check() {
    let gov = ResourceGovernor::unlimited();
    for seed in 0..4000u64 {
        let mut rng = Rng(seed ^ 0xabcdef);
        let cs = gen_battery(&mut rng, 6);
        if cs.is_empty() {
            continue;
        }
        let mut inc = IncrementalSimplex::new();
        // Two nested levels of churn: assert a prefix, mark, assert
        // another prefix, undo both levels in order.
        let m0 = inc.mark();
        for (i, c) in cs
            .iter()
            .take(rng.below(cs.len() as u64 + 1) as usize)
            .enumerate()
        {
            let _ = inc.assert_constraint(c, i as u32);
        }
        let m1 = inc.mark();
        for (i, c) in cs
            .iter()
            .rev()
            .take(rng.below(cs.len() as u64 + 1) as usize)
            .enumerate()
        {
            let _ = inc.assert_constraint(c, i as u32);
        }
        let _ = inc.check(&gov);
        inc.undo_to(m1);
        let _ = inc.check(&gov);
        inc.undo_to(m0);

        let Some(inc_sat) = assert_all(&mut inc, &cs, &gov) else {
            continue;
        };
        let batch_sat = match check_rational(&cs) {
            SimplexResult::Sat(_) => true,
            SimplexResult::Unsat => false,
            SimplexResult::Unknown => continue,
        };
        assert_eq!(
            inc_sat, batch_sat,
            "seed {seed}: churned incremental vs batch on {cs:?}"
        );
        if inc_sat {
            assert!(
                model_satisfies(&inc, &cs),
                "seed {seed}: model violates a constraint in {cs:?}"
            );
        }
    }
}

/// Push/pop N levels, then re-assert the same battery: verdict identical
/// to a fresh solver on the same constraints.
#[test]
fn push_pop_reassert_matches_fresh() {
    let gov = ResourceGovernor::unlimited();
    for seed in 0..2000u64 {
        let mut rng = Rng(seed ^ 0x5caffe);
        let cs = gen_battery(&mut rng, 5);
        if cs.is_empty() {
            continue;
        }
        let mut inc = IncrementalSimplex::new();
        // N nested levels, one constraint each, then unwind them all.
        let levels: Vec<_> = (0..cs.len())
            .map(|i| {
                let m = inc.mark();
                let _ = inc.assert_constraint(&cs[i], i as u32);
                let _ = inc.check(&gov);
                m
            })
            .collect();
        for &m in levels.iter().rev() {
            inc.undo_to(m);
        }
        let warm = assert_all(&mut inc, &cs, &gov);
        let fresh = assert_all(&mut IncrementalSimplex::new(), &cs, &gov);
        if let (Some(w), Some(f)) = (warm, fresh) {
            assert_eq!(w, f, "seed {seed}: push/pop changed the verdict on {cs:?}");
        }
    }
}

/// A warm basis left by solving an unrelated battery (then retracting
/// it) never changes the verdict of the next battery.
#[test]
fn warm_basis_never_changes_verdict() {
    let gov = ResourceGovernor::unlimited();
    for seed in 0..2000u64 {
        let mut rng = Rng(seed ^ 0xfeed5);
        let warmup = gen_battery(&mut rng, 5);
        let cs = gen_battery(&mut rng, 5);
        if cs.is_empty() {
            continue;
        }
        let mut inc = IncrementalSimplex::new();
        let m = inc.mark();
        let _ = assert_all(&mut inc, &warmup, &gov);
        inc.undo_to(m);
        let warm = assert_all(&mut inc, &cs, &gov);
        let fresh = assert_all(&mut IncrementalSimplex::new(), &cs, &gov);
        if let (Some(w), Some(f)) = (warm, fresh) {
            assert_eq!(
                w, f,
                "seed {seed}: warm basis from {warmup:?} changed the verdict on {cs:?}"
            );
        }
    }
}

fn lower_atoms(pool: &mut TermPool, rng: &mut Rng, n: usize) -> Vec<TermId> {
    (0..n)
        .map(|_| {
            let k = rng.int(-6, 6);
            let coeffs: Vec<(VarId, i128)> = (0..NUM_VARS)
                .map(|i| (pool.var(&format!("v{i}")), rng.int(-3, 3)))
                .collect();
            let e = LinExpr::from_terms(coeffs, k);
            let rel = if rng.below(4) == 0 {
                Rel::Eq0
            } else {
                Rel::Le0
            };
            pool.atom(e, rel)
        })
        .collect()
}

/// `AssertionScope` batteries (the warm CDCL scope engine used by the
/// Hoare-check loop) agree with one-shot legacy checks on every extra.
#[test]
fn scope_battery_matches_oneshot_legacy() {
    for seed in 0..300u64 {
        let mut rng = Rng(seed ^ 0xba77e);
        // CDCL pool with the query cache left on: that is what arms the
        // incremental scope engine.
        let mut pool = TermPool::new();
        pool.set_solver_kind(SolverKind::Cdcl);
        let n_prefix = 1 + rng.below(3) as usize;
        let prefix = lower_atoms(&mut pool, &mut rng, n_prefix);
        let extras = lower_atoms(&mut pool, &mut rng, 4);
        let mut scope = AssertionScope::new(&mut pool, &prefix);

        // Legacy pool, memoization off, same term stream.
        let mut legacy = TermPool::new();
        legacy.take_query_cache();
        legacy.set_solver_kind(SolverKind::Dpll);
        let mut lrng = Rng(seed ^ 0xba77e);
        let ln_prefix = 1 + lrng.below(3) as usize;
        let lprefix = lower_atoms(&mut legacy, &mut lrng, ln_prefix);
        let lextras = lower_atoms(&mut legacy, &mut lrng, 4);

        for (i, (&e, &le)) in extras.iter().zip(lextras.iter()).enumerate() {
            let warm = scope.check(&mut pool, e);
            let mut batch: Vec<TermId> = lprefix.clone();
            batch.push(le);
            let oneshot = check(&mut legacy, &batch);
            match (&warm, &oneshot) {
                (SatResult::Sat(_), SatResult::Sat(_)) | (SatResult::Unsat, SatResult::Unsat) => {}
                (SatResult::Unknown, _) | (_, SatResult::Unknown) => {}
                other => panic!("seed {seed} extra {i}: scope vs one-shot diverged: {other:?}"),
            }
        }
    }
}
