//! The wire protocol of `seqver serve`: length-prefixed UTF-8 text frames
//! carrying line-oriented request/response payloads.
//!
//! A frame is an ASCII decimal byte length, a newline, and exactly that
//! many bytes of UTF-8 payload. The framing layer is where the daemon's
//! first robustness line runs: declared lengths above [`MAX_FRAME`] are
//! rejected before any allocation of that size, malformed length lines
//! and non-UTF-8 payloads produce structured errors instead of panics,
//! and [`FrameReader`] distinguishes a clean close at a frame boundary
//! (an ordinary end of batch) from a mid-frame disconnect or a
//! slow-loris stall (a peer trickling bytes to pin a connection —
//! detected by a no-progress timeout and dropped).
//!
//! Payload grammars ([`Request`]/[`Response`]) are line-oriented
//! `key: value` forms in the same family as the snapshot and store
//! formats: trivially greppable on the wire, no external serializer, and
//! every parse failure is an `Err`, never a panic.

use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};

/// Hard cap on a frame payload (1 MiB). Larger CPL sources do not exist
/// in practice; anything above this is load, not work.
pub const MAX_FRAME: usize = 1 << 20;

/// First line of every request payload.
pub const REQUEST_HEADER: &str = "seqver-request v1";
/// First line of every response payload.
pub const RESPONSE_HEADER: &str = "seqver-response v1";

/// Longest accepted length line (digits + newline); `MAX_FRAME` needs 7.
const MAX_LENGTH_LINE: usize = 20;

/// How reading a frame failed. Every variant maps to "drop or error the
/// connection" — none of them can take the daemon down.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Unparseable length line or non-UTF-8 payload.
    Malformed(String),
    /// Declared payload length exceeds the reader's cap.
    Oversized(usize),
    /// The peer disconnected mid-frame (a clean close *between* frames is
    /// `Ok(None)`, not an error).
    Disconnected,
    /// Slow-loris defense: a frame was started but no byte arrived within
    /// the stall timeout.
    Stalled,
    /// Any other socket error.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
            FrameError::Oversized(n) => write!(f, "oversized frame ({n} bytes > {MAX_FRAME})"),
            FrameError::Disconnected => write!(f, "peer disconnected mid-frame"),
            FrameError::Stalled => write!(f, "frame stalled (no progress within the timeout)"),
            FrameError::Io(m) => write!(f, "socket error: {m}"),
        }
    }
}

/// Writes one frame: decimal length, newline, payload — as a single
/// write, so a frame never straddles two TCP segments by construction
/// (two small writes would trigger the Nagle/delayed-ACK stall on every
/// request).
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(format!("{}\n", payload.len()).as_bytes());
    frame.extend_from_slice(payload.as_bytes());
    w.write_all(&frame)?;
    w.flush()
}

/// What one [`FrameReader::read_frame`] call produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete frame payload.
    Frame(String),
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// No frame started within the idle timeout; the caller decides
    /// whether to keep waiting (call again) or close the connection.
    Idle,
}

/// Incremental frame reader over any byte stream.
///
/// The reader never blocks indefinitely *if the underlying stream has a
/// read timeout* (the server sets a short `set_read_timeout` tick on
/// every accepted socket): timeout ticks surface as
/// `WouldBlock`/`TimedOut`, which the reader uses to enforce its own
/// idle and stall clocks instead of trusting the peer to make progress.
pub struct FrameReader {
    /// Received-but-unconsumed bytes (at most one length line plus one
    /// payload's worth).
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameReader {
    /// A reader enforcing `max_frame` as its payload cap.
    pub fn new(max_frame: usize) -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// A reader with the protocol-default [`MAX_FRAME`] cap.
    pub fn with_default_cap() -> FrameReader {
        FrameReader::new(MAX_FRAME)
    }

    /// Tries to extract one complete frame from the buffer. `Ok(None)`
    /// means "need more bytes".
    fn take_buffered(&mut self) -> Result<Option<String>, FrameError> {
        let newline = self.buf.iter().position(|&b| b == b'\n');
        let Some(nl) = newline else {
            if self.buf.len() > MAX_LENGTH_LINE {
                return Err(FrameError::Malformed(
                    "length line exceeds 20 bytes without a newline".to_owned(),
                ));
            }
            return Ok(None);
        };
        let digits = &self.buf[..nl];
        if digits.is_empty() || !digits.iter().all(u8::is_ascii_digit) {
            return Err(FrameError::Malformed(format!(
                "invalid length line `{}`",
                String::from_utf8_lossy(digits)
            )));
        }
        let len: usize = std::str::from_utf8(digits)
            .expect("ascii digits")
            .parse()
            .map_err(|_| FrameError::Malformed("length overflows usize".to_owned()))?;
        if len > self.max_frame {
            return Err(FrameError::Oversized(len));
        }
        if self.buf.len() < nl + 1 + len {
            return Ok(None);
        }
        let payload: Vec<u8> = self.buf[nl + 1..nl + 1 + len].to_vec();
        self.buf.drain(..nl + 1 + len);
        String::from_utf8(payload)
            .map(Some)
            .map_err(|_| FrameError::Malformed("payload is not UTF-8".to_owned()))
    }

    /// `true` when bytes of an unfinished frame are pending.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Reads the next frame. A clean close or an idle expiry at a frame
    /// boundary is an event, not an error; every anomaly is typed.
    ///
    /// `idle_timeout` bounds the wait for the *first* byte of the next
    /// frame (expiry yields [`FrameEvent::Idle`], letting the caller poll
    /// a shutdown flag between ticks); `stall_timeout` bounds the gap
    /// between bytes once a frame has started (the slow-loris clock).
    pub fn read_frame(
        &mut self,
        r: &mut impl Read,
        idle_timeout: Duration,
        stall_timeout: Duration,
    ) -> Result<FrameEvent, FrameError> {
        let mut last_progress = Instant::now();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(frame) = self.take_buffered()? {
                return Ok(FrameEvent::Frame(frame));
            }
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(FrameEvent::Closed)
                    } else {
                        Err(FrameError::Disconnected)
                    };
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    last_progress = Instant::now();
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    let waited = last_progress.elapsed();
                    if self.buf.is_empty() {
                        if waited >= idle_timeout {
                            return Ok(FrameEvent::Idle);
                        }
                    } else if waited >= stall_timeout {
                        return Err(FrameError::Stalled);
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e.to_string())),
            }
        }
    }
}

/// Strips characters that would break the line-oriented payload forms.
fn sanitize(s: &str) -> String {
    s.replace(['\n', '\r', '\t'], " ")
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Per-request verification options (the request-level analogue of the
/// CLI's `--timeout/--steps/--retries/--faults` flags).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerifyOpts {
    /// Per-request wall-clock deadline (bounded by the server's own
    /// request timeout; serialized in milliseconds).
    pub timeout: Option<Duration>,
    /// Escalation-ladder retries for this request.
    pub retries: Option<u32>,
    /// Per-category step budgets, as `category=N` specs.
    pub steps: Vec<(String, u64)>,
    /// Deterministic fault-injection plan (`CAT:N:KIND` spec) — the
    /// isolation tests' way of making one request panic or hang on cue.
    pub faults: Option<String>,
}

/// What a request asks the daemon to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Verify one CPL program.
    Verify { source: String, opts: VerifyOpts },
    /// Liveness probe.
    Ping,
    /// Server counter snapshot.
    Stats,
    /// Begin draining: stop accepting, finish in-flight work, flush the
    /// store and exit 0.
    Shutdown,
}

/// One request frame's payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: String,
    pub cmd: Command,
}

impl Request {
    /// A verify request with default options.
    pub fn verify(id: &str, source: &str) -> Request {
        Request {
            id: id.to_owned(),
            cmd: Command::Verify {
                source: source.to_owned(),
                opts: VerifyOpts::default(),
            },
        }
    }

    /// A control request (`ping`/`stats`/`shutdown`).
    pub fn control(id: &str, cmd: Command) -> Request {
        Request {
            id: id.to_owned(),
            cmd,
        }
    }

    /// Renders the payload text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(REQUEST_HEADER);
        out.push('\n');
        out.push_str(&format!("id: {}\n", sanitize(&self.id)));
        match &self.cmd {
            Command::Ping => out.push_str("cmd: ping\n"),
            Command::Stats => out.push_str("cmd: stats\n"),
            Command::Shutdown => out.push_str("cmd: shutdown\n"),
            Command::Verify { source, opts } => {
                out.push_str("cmd: verify\n");
                if let Some(t) = opts.timeout {
                    out.push_str(&format!("timeout-ms: {}\n", t.as_millis()));
                }
                if let Some(r) = opts.retries {
                    out.push_str(&format!("retries: {r}\n"));
                }
                for (cat, n) in &opts.steps {
                    out.push_str(&format!("steps: {}={n}\n", sanitize(cat)));
                }
                if let Some(f) = &opts.faults {
                    out.push_str(&format!("faults: {}\n", sanitize(f)));
                }
                // `program:` switches the grammar to raw source — it must
                // be the last key.
                out.push_str("program:\n");
                out.push_str(source);
            }
        }
        out
    }

    /// Parses the [`Request::to_text`] form. `Err` (never a panic) on
    /// anything malformed.
    pub fn parse(text: &str) -> Result<Request, String> {
        let rest = text
            .strip_prefix(REQUEST_HEADER)
            .and_then(|r| r.strip_prefix('\n'))
            .ok_or_else(|| format!("not a seqver request (expected `{REQUEST_HEADER}`)"))?;
        let mut id = String::new();
        let mut cmd_name = "verify".to_owned();
        let mut opts = VerifyOpts::default();
        let mut source: Option<String> = None;
        let mut remaining = rest;
        while !remaining.is_empty() {
            if let Some(src) = remaining.strip_prefix("program:\n") {
                source = Some(src.to_owned());
                break;
            }
            let (line, tail) = remaining.split_once('\n').unwrap_or((remaining, ""));
            remaining = tail;
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(": ")
                .ok_or_else(|| format!("malformed request line `{line}`"))?;
            match key {
                "id" => id = value.to_owned(),
                "cmd" => cmd_name = value.to_owned(),
                "timeout-ms" => {
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| format!("invalid timeout-ms `{value}`"))?;
                    opts.timeout = Some(Duration::from_millis(ms));
                }
                "retries" => {
                    opts.retries = Some(
                        value
                            .parse()
                            .map_err(|_| format!("invalid retries `{value}`"))?,
                    );
                }
                "steps" => {
                    let (cat, n) = value
                        .split_once('=')
                        .ok_or_else(|| format!("invalid steps spec `{value}`"))?;
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("invalid steps budget `{value}`"))?;
                    opts.steps.push((cat.to_owned(), n));
                }
                "faults" => opts.faults = Some(value.to_owned()),
                other => return Err(format!("unknown request key `{other}`")),
            }
        }
        let cmd = match cmd_name.as_str() {
            "ping" => Command::Ping,
            "stats" => Command::Stats,
            "shutdown" => Command::Shutdown,
            "verify" => Command::Verify {
                source: source.ok_or("verify request has no `program:` section")?,
                opts,
            },
            other => return Err(format!("unknown command `{other}`")),
        };
        Ok(Request { id, cmd })
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Overall request status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// The request was served (its verdict may still be `GaveUp`).
    Ok,
    /// Load-shed at admission; retry after the hinted backoff.
    Busy,
    /// The request itself was defective (parse error, compile error,
    /// contained panic) — siblings are unaffected.
    Error,
}

/// A verification verdict in wire form. `Incorrect` carries the witness
/// interleaving as statement letter indices so batch comparisons are
/// bit-exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireVerdict {
    Correct,
    Incorrect(Vec<u32>),
    GaveUp,
}

/// One response frame's payload.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request id.
    pub id: String,
    pub status: Option<Status>,
    pub verdict: Option<WireVerdict>,
    /// Give-up category (as its display name) when the verdict gave up.
    pub category: Option<String>,
    /// Give-up reason or error message.
    pub reason: Option<String>,
    /// Refinement rounds the request took (stored rounds on a store hit).
    pub rounds: u64,
    /// Assertions seeded from the proof store into this run.
    pub warm_assertions: u64,
    /// The verdict was served directly from the persistent store.
    pub store_hit: bool,
    /// The verdict was fsynced (journal or snapshot) before this response
    /// was sent: the durable-acknowledgement contract. `false` for
    /// in-memory stores, give-ups, and non-verify responses.
    pub durable: bool,
    /// Wall-clock service time.
    pub time_ms: u64,
    /// Backoff hint accompanying a `busy` status.
    pub retry_after_ms: Option<u64>,
    /// Free-form `key=value` payload for `stats`/`ping` responses.
    pub info: Vec<(String, String)>,
}

impl Response {
    /// A `busy` shed response with a backoff hint. The hint is floored at
    /// 1 ms: a zero hint would make well-behaved clients hot-spin on an
    /// already overloaded daemon.
    pub fn busy(id: &str, retry_after: Duration) -> Response {
        Response {
            id: id.to_owned(),
            status: Some(Status::Busy),
            retry_after_ms: Some((retry_after.as_millis() as u64).max(1)),
            ..Response::default()
        }
    }

    /// An `error` response with a reason.
    pub fn error(id: &str, reason: impl Into<String>) -> Response {
        Response {
            id: id.to_owned(),
            status: Some(Status::Error),
            reason: Some(reason.into()),
            ..Response::default()
        }
    }

    /// The canonical one-line rendering used by `seqver submit` and the
    /// batch-comparison tests: stable, bit-exact per verdict.
    pub fn verdict_line(&self) -> String {
        match (self.status, &self.verdict) {
            (Some(Status::Busy), _) => {
                // Same ≥1 ms floor as construction and parsing: a zero
                // hint must be unrepresentable end to end.
                format!(
                    "BUSY retry-after-ms={}",
                    self.retry_after_ms.unwrap_or(1).max(1)
                )
            }
            (Some(Status::Error), _) => {
                format!("ERROR: {}", self.reason.as_deref().unwrap_or("unknown"))
            }
            (_, Some(WireVerdict::Correct)) => "CORRECT".to_owned(),
            (_, Some(WireVerdict::Incorrect(trace))) => {
                let letters: Vec<String> = trace.iter().map(u32::to_string).collect();
                format!("INCORRECT trace={}", letters.join(","))
            }
            (_, Some(WireVerdict::GaveUp)) => format!(
                "GAVE-UP {}: {}",
                self.category.as_deref().unwrap_or("?"),
                self.reason.as_deref().unwrap_or("?")
            ),
            _ => "ERROR: empty response".to_owned(),
        }
    }

    /// Renders the payload text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(RESPONSE_HEADER);
        out.push('\n');
        out.push_str(&format!("id: {}\n", sanitize(&self.id)));
        let status = match self.status {
            Some(Status::Busy) => "busy",
            Some(Status::Error) => "error",
            _ => "ok",
        };
        out.push_str(&format!("status: {status}\n"));
        match &self.verdict {
            Some(WireVerdict::Correct) => out.push_str("verdict: correct\n"),
            Some(WireVerdict::Incorrect(trace)) => {
                let letters: Vec<String> = trace.iter().map(u32::to_string).collect();
                out.push_str(&format!("verdict: incorrect {}\n", letters.join(" ")));
            }
            Some(WireVerdict::GaveUp) => out.push_str("verdict: gave-up\n"),
            None => {}
        }
        if let Some(c) = &self.category {
            out.push_str(&format!("category: {}\n", sanitize(c)));
        }
        if let Some(r) = &self.reason {
            out.push_str(&format!("reason: {}\n", sanitize(r)));
        }
        out.push_str(&format!("rounds: {}\n", self.rounds));
        out.push_str(&format!("warm-assertions: {}\n", self.warm_assertions));
        out.push_str(&format!("store-hit: {}\n", self.store_hit));
        out.push_str(&format!("durable: {}\n", self.durable));
        out.push_str(&format!("time-ms: {}\n", self.time_ms));
        if let Some(ms) = self.retry_after_ms {
            out.push_str(&format!("retry-after-ms: {ms}\n"));
        }
        for (k, v) in &self.info {
            out.push_str(&format!("info: {}={}\n", sanitize(k), sanitize(v)));
        }
        out
    }

    /// Parses the [`Response::to_text`] form.
    pub fn parse(text: &str) -> Result<Response, String> {
        let rest = text
            .strip_prefix(RESPONSE_HEADER)
            .and_then(|r| r.strip_prefix('\n'))
            .ok_or_else(|| format!("not a seqver response (expected `{RESPONSE_HEADER}`)"))?;
        let mut resp = Response::default();
        for line in rest.lines() {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(": ")
                .ok_or_else(|| format!("malformed response line `{line}`"))?;
            match key {
                "id" => resp.id = value.to_owned(),
                "status" => {
                    resp.status = Some(match value {
                        "ok" => Status::Ok,
                        "busy" => Status::Busy,
                        "error" => Status::Error,
                        other => return Err(format!("unknown status `{other}`")),
                    })
                }
                "verdict" => {
                    resp.verdict = Some(if value == "correct" {
                        WireVerdict::Correct
                    } else if value == "gave-up" {
                        WireVerdict::GaveUp
                    } else if let Some(trace) = value.strip_prefix("incorrect") {
                        let letters: Result<Vec<u32>, _> =
                            trace.split_whitespace().map(str::parse).collect();
                        WireVerdict::Incorrect(
                            letters.map_err(|_| format!("invalid trace in `{value}`"))?,
                        )
                    } else {
                        return Err(format!("unknown verdict `{value}`"));
                    });
                }
                "category" => resp.category = Some(value.to_owned()),
                "reason" => resp.reason = Some(value.to_owned()),
                "rounds" => {
                    resp.rounds = value
                        .parse()
                        .map_err(|_| format!("invalid rounds `{value}`"))?
                }
                "warm-assertions" => {
                    resp.warm_assertions = value
                        .parse()
                        .map_err(|_| format!("invalid warm-assertions `{value}`"))?
                }
                "store-hit" => {
                    resp.store_hit = value
                        .parse()
                        .map_err(|_| format!("invalid store-hit `{value}`"))?
                }
                "durable" => {
                    resp.durable = value
                        .parse()
                        .map_err(|_| format!("invalid durable `{value}`"))?
                }
                "time-ms" => {
                    resp.time_ms = value
                        .parse()
                        .map_err(|_| format!("invalid time-ms `{value}`"))?
                }
                "retry-after-ms" => {
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| format!("invalid retry-after-ms `{value}`"))?;
                    if ms == 0 {
                        return Err("retry-after-ms must be >= 1 (0 would hot-spin)".to_owned());
                    }
                    resp.retry_after_ms = Some(ms);
                }
                "info" => {
                    let (k, v) = value
                        .split_once('=')
                        .ok_or_else(|| format!("malformed info line `{line}`"))?;
                    resp.info.push((k.to_owned(), v.to_owned()));
                }
                other => return Err(format!("unknown response key `{other}`")),
            }
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const FAST: Duration = Duration::from_millis(50);

    #[test]
    fn frame_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "hello").unwrap();
        write_frame(&mut wire, "").unwrap();
        write_frame(&mut wire, "κόσμος").unwrap();
        let mut r = Cursor::new(wire);
        let mut fr = FrameReader::with_default_cap();
        for expected in ["hello", "", "κόσμος"] {
            assert_eq!(
                fr.read_frame(&mut r, FAST, FAST).unwrap(),
                FrameEvent::Frame(expected.to_owned())
            );
        }
        assert_eq!(
            fr.read_frame(&mut r, FAST, FAST).unwrap(),
            FrameEvent::Closed
        );
    }

    #[test]
    fn malformed_oversized_and_truncated_frames_error() {
        let mut fr = FrameReader::with_default_cap();
        let mut r = Cursor::new(b"abc\nxxxx".to_vec());
        assert!(matches!(
            fr.read_frame(&mut r, FAST, FAST),
            Err(FrameError::Malformed(_))
        ));
        let mut fr = FrameReader::with_default_cap();
        let mut r = Cursor::new(format!("{}\n", MAX_FRAME + 1).into_bytes());
        assert_eq!(
            fr.read_frame(&mut r, FAST, FAST),
            Err(FrameError::Oversized(MAX_FRAME + 1))
        );
        // EOF mid-payload: disconnected, not a clean close.
        let mut fr = FrameReader::with_default_cap();
        let mut r = Cursor::new(b"10\nabc".to_vec());
        assert_eq!(
            fr.read_frame(&mut r, FAST, FAST),
            Err(FrameError::Disconnected)
        );
        // A length line that never ends.
        let mut fr = FrameReader::with_default_cap();
        let mut r = Cursor::new(vec![b'1'; 64]);
        assert!(matches!(
            fr.read_frame(&mut r, FAST, FAST),
            Err(FrameError::Malformed(_))
        ));
        // Non-UTF-8 payload.
        let mut fr = FrameReader::with_default_cap();
        let mut r = Cursor::new(b"2\n\xff\xfe".to_vec());
        assert!(matches!(
            fr.read_frame(&mut r, FAST, FAST),
            Err(FrameError::Malformed(_))
        ));
    }

    /// A reader that yields its chunks then reports `WouldBlock` forever —
    /// the shape of a slow-loris peer behind a socket read timeout.
    struct Stalling {
        chunks: Vec<Vec<u8>>,
    }

    impl Read for Stalling {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if let Some(chunk) = self.chunks.pop() {
                buf[..chunk.len()].copy_from_slice(&chunk);
                Ok(chunk.len())
            } else {
                std::thread::sleep(Duration::from_millis(1));
                Err(std::io::Error::from(ErrorKind::WouldBlock))
            }
        }
    }

    #[test]
    fn slow_loris_stalls_out_and_idle_closes_cleanly() {
        // Mid-frame stall: frame started, never finished.
        let mut fr = FrameReader::with_default_cap();
        let mut r = Stalling {
            chunks: vec![b"20\npartial".to_vec()],
        };
        assert_eq!(
            fr.read_frame(&mut r, Duration::from_millis(30), Duration::from_millis(30)),
            Err(FrameError::Stalled)
        );
        // Pure idleness at a frame boundary is an event the caller can
        // act on (poll shutdown, enforce its own idle budget), not an
        // error.
        let mut fr = FrameReader::with_default_cap();
        let mut r = Stalling { chunks: vec![] };
        assert_eq!(
            fr.read_frame(&mut r, Duration::from_millis(30), Duration::from_millis(30)),
            Ok(FrameEvent::Idle)
        );
    }

    #[test]
    fn request_text_round_trips() {
        let reqs = [
            Request::verify(
                "r-1",
                "var x: int = 0;\nthread t { assert x >= 0; }\nspawn t;\n",
            ),
            Request {
                id: "r-2".into(),
                cmd: Command::Verify {
                    source: "src".into(),
                    opts: VerifyOpts {
                        timeout: Some(Duration::from_millis(750)),
                        retries: Some(2),
                        steps: vec![("dfs-states".into(), 400), ("simplex-pivots".into(), 9)],
                        faults: Some("simplex-pivots:3:panic".into()),
                    },
                },
            },
            Request::control("p", Command::Ping),
            Request::control("s", Command::Stats),
            Request::control("q", Command::Shutdown),
        ];
        for req in reqs {
            assert_eq!(Request::parse(&req.to_text()), Ok(req));
        }
        for bad in [
            "",
            "nonsense",
            "seqver-request v2\nid: x\ncmd: ping\n",
            "seqver-request v1\nid: x\ncmd: verify\n", // no program
            "seqver-request v1\nbadline\n",
            "seqver-request v1\ncmd: explode\nprogram:\nx",
        ] {
            assert!(Request::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn response_text_round_trips() {
        let resps = [
            Response {
                id: "r-1".into(),
                status: Some(Status::Ok),
                verdict: Some(WireVerdict::Correct),
                rounds: 12,
                warm_assertions: 3,
                store_hit: true,
                durable: true,
                time_ms: 18,
                ..Response::default()
            },
            Response {
                id: "r-2".into(),
                status: Some(Status::Ok),
                verdict: Some(WireVerdict::Incorrect(vec![0, 4, 2])),
                ..Response::default()
            },
            Response {
                id: "r-3".into(),
                status: Some(Status::Ok),
                verdict: Some(WireVerdict::GaveUp),
                category: Some("deadline".into()),
                reason: Some("wall-clock deadline exceeded".into()),
                ..Response::default()
            },
            Response::busy("r-4", Duration::from_millis(50)),
            Response::error("r-5", "no such program"),
            Response {
                id: "r-6".into(),
                status: Some(Status::Ok),
                info: vec![("requests".into(), "7".into()), ("shed".into(), "1".into())],
                ..Response::default()
            },
        ];
        for resp in resps {
            assert_eq!(Response::parse(&resp.to_text()), Ok(resp));
        }
        assert!(Response::parse("garbage").is_err());
        assert!(Response::parse("seqver-response v1\nstatus: odd\n").is_err());
    }

    #[test]
    fn verdict_lines_are_stable() {
        let mut r = Response {
            id: "x".into(),
            status: Some(Status::Ok),
            verdict: Some(WireVerdict::Incorrect(vec![1, 4, 2])),
            ..Response::default()
        };
        assert_eq!(r.verdict_line(), "INCORRECT trace=1,4,2");
        r.verdict = Some(WireVerdict::Correct);
        assert_eq!(r.verdict_line(), "CORRECT");
        assert_eq!(
            Response::busy("x", Duration::from_millis(75)).verdict_line(),
            "BUSY retry-after-ms=75"
        );
    }

    #[test]
    fn retry_after_zero_is_unrepresentable() {
        // Construction floors a zero hint to 1 ms...
        let busy = Response::busy("x", Duration::ZERO);
        assert_eq!(busy.retry_after_ms, Some(1));
        assert_eq!(busy.verdict_line(), "BUSY retry-after-ms=1");
        // ... rendering a hand-built zero still floors it...
        let hand_built = Response {
            id: "x".into(),
            status: Some(Status::Busy),
            retry_after_ms: Some(0),
            ..Response::default()
        };
        assert_eq!(hand_built.verdict_line(), "BUSY retry-after-ms=1");
        // ... and parsing rejects a zero on the wire outright.
        let err = Response::parse("seqver-response v1\nid: x\nstatus: busy\nretry-after-ms: 0\n")
            .unwrap_err();
        assert!(err.contains("retry-after-ms"), "{err}");
    }

    #[test]
    fn durable_bit_defaults_false_and_round_trips() {
        let without = "seqver-response v1\nid: x\nstatus: ok\nverdict: correct\n";
        assert!(!Response::parse(without).unwrap().durable);
        let durable = Response {
            id: "x".into(),
            status: Some(Status::Ok),
            verdict: Some(WireVerdict::Correct),
            durable: true,
            ..Response::default()
        };
        assert_eq!(Response::parse(&durable.to_text()), Ok(durable));
    }
}
