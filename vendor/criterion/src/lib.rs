//! A small, dependency-free stand-in for the [`criterion`] crate.
//!
//! The workspace's registry mirror is not reachable from the build
//! environment, so this crate vendors the API subset the bench targets
//! use: `Criterion`, `BenchmarkGroup` (`sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Instead of statistical
//! analysis it runs a warmup pass plus `sample_size` timed samples and
//! prints mean/min/max per benchmark.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id labeled by the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warmup).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id.label, &bencher.samples);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(&self.name, &id.label, &bencher.samples);
        self
    }

    /// Ends the group (formatting no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn report(group: &str, label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{label}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("nonempty");
    let max = samples.iter().max().expect("nonempty");
    println!(
        "{group}/{label}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
        samples.len()
    );
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// CLI-argument handling no-op (kept for API compatibility).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut bencher);
        report("bench", &id.label, &bencher.samples);
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
