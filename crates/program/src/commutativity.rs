//! The three-level commutativity oracle.
//!
//! The paper's tool (§8) determines commutativity of two statements by
//! combining a cheap syntactic check — neither statement writes a variable
//! accessed by the other — with a more precise SMT-based check, optionally
//! *proof-sensitive* (Def. 7.3: `a ↷↷_φ b` iff `a;b` and `b;a` have the
//! same semantics from states satisfying φ). Whenever the SMT solver cannot
//! settle a query, statements are conservatively declared non-commutative
//! — always sound.
//!
//! Results are cached per (letter, letter) and per (letter, letter, φ);
//! conditional commutativity is monotone in φ, so the unconditional cache
//! doubles as a fast path for every condition.

use crate::concurrent::{LetterId, Program};
use crate::stmt::compose_relation;
use smt::cube::Dnf;
use smt::linear::VarId;
use smt::solver::check;
use smt::term::{TermId, TermPool};
use std::collections::HashMap;

/// How much work the oracle may do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommutativityLevel {
    /// Disjoint write/access sets only.
    Syntactic,
    /// Syntactic, then SMT equivalence of `a;b` and `b;a`.
    Semantic,
}

/// Counters exposed for the evaluation harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommutativityStats {
    /// Queries answered by the syntactic check.
    pub syntactic_hits: usize,
    /// SMT equivalence checks performed.
    pub semantic_checks: usize,
    /// Queries answered from a cache.
    pub cache_hits: usize,
}

/// Caching commutativity oracle for a fixed program.
///
/// # Example
///
/// ```no_run
/// use program::commutativity::{CommutativityLevel, CommutativityOracle};
/// # fn demo(pool: &mut smt::TermPool, program: &program::Program,
/// #         a: program::LetterId, b: program::LetterId) {
/// let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
/// let commute = oracle.commute(pool, program, a, b);
/// # let _ = commute;
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CommutativityOracle {
    level: CommutativityLevel,
    unconditional: HashMap<(LetterId, LetterId), bool>,
    conditional: HashMap<(LetterId, LetterId, TermId), bool>,
    primed: HashMap<VarId, VarId>,
    stats: CommutativityStats,
}

impl CommutativityOracle {
    /// Creates an oracle at the given level.
    pub fn new(level: CommutativityLevel) -> CommutativityOracle {
        CommutativityOracle {
            level,
            unconditional: HashMap::new(),
            conditional: HashMap::new(),
            primed: HashMap::new(),
            stats: CommutativityStats::default(),
        }
    }

    /// The configured level.
    pub fn level(&self) -> CommutativityLevel {
        self.level
    }

    /// Query counters.
    pub fn stats(&self) -> CommutativityStats {
        self.stats
    }

    /// Unconditional commutativity `a ↷↷ b`.
    ///
    /// Statements of the same thread never commute (§4's standing
    /// assumption, needed for closedness of `L(P)`).
    pub fn commute(
        &mut self,
        pool: &mut TermPool,
        program: &Program,
        a: LetterId,
        b: LetterId,
    ) -> bool {
        self.commute_under(pool, program, TermPool::TRUE, a, b)
    }

    /// Conditional commutativity `a ↷↷_φ b` (Def. 7.3). Monotone: anything
    /// commuting under `true` commutes under every φ.
    pub fn commute_under(
        &mut self,
        pool: &mut TermPool,
        program: &Program,
        phi: TermId,
        a: LetterId,
        b: LetterId,
    ) -> bool {
        if program.thread_of(a) == program.thread_of(b) {
            return false;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&r) = self.unconditional.get(&key) {
            self.stats.cache_hits += 1;
            if r {
                return true; // monotone in φ
            }
            if phi == TermPool::TRUE {
                return false;
            }
        }
        // Syntactic check (condition-independent).
        let sa = program.statement(a);
        let sb = program.statement(b);
        let disjoint = sa.writes().iter().all(|w| !sb.accesses().contains(w))
            && sb.writes().iter().all(|w| !sa.accesses().contains(w));
        if disjoint {
            self.stats.syntactic_hits += 1;
            self.unconditional.insert(key, true);
            return true;
        }
        if self.level == CommutativityLevel::Syntactic {
            self.unconditional.insert(key, false);
            return false;
        }
        // Semantic check, possibly conditional.
        let ckey = (key.0, key.1, phi);
        if let Some(&r) = self.conditional.get(&ckey) {
            self.stats.cache_hits += 1;
            return r;
        }
        let result = self.semantic_check(pool, program, phi, key.0, key.1);
        if phi == TermPool::TRUE {
            self.unconditional.insert(key, result);
        }
        self.conditional.insert(ckey, result);
        result
    }

    fn primed_var(&mut self, pool: &mut TermPool, v: VarId) -> VarId {
        if let Some(&p) = self.primed.get(&v) {
            return p;
        }
        let base = pool.var_name(v).to_owned();
        let p = pool.fresh_var(&format!("{base}!post"));
        self.primed.insert(v, p);
        p
    }

    fn semantic_check(
        &mut self,
        pool: &mut TermPool,
        program: &Program,
        phi: TermId,
        a: LetterId,
        b: LetterId,
    ) -> bool {
        self.stats.semantic_checks += 1;
        let sa = program.statement(a).clone();
        let sb = program.statement(b).clone();
        let mut writes: Vec<VarId> = sa.writes().union(sb.writes()).copied().collect();
        writes.dedup();
        let primed: HashMap<VarId, VarId> = writes
            .iter()
            .map(|&w| (w, self.primed_var(pool, w)))
            .collect();
        let (rel_ab, aux_ab) = compose_relation(pool, &sa, &sb, &primed);
        let (rel_ba, aux_ba) = compose_relation(pool, &sb, &sa, &primed);
        // Eliminate auxiliary havoc values (existential); give up on
        // inexact projection.
        let Some(rel_ab) = eliminate_aux(pool, rel_ab, &aux_ab) else {
            return false;
        };
        let Some(rel_ba) = eliminate_aux(pool, rel_ba, &aux_ba) else {
            return false;
        };
        // φ → (rel_ab ↔ rel_ba): two unsat checks, conservative on Unknown.
        let not_ba = pool.not(rel_ba);
        if !check(pool, &[phi, rel_ab, not_ba]).is_unsat() {
            return false;
        }
        let not_ab = pool.not(rel_ab);
        check(pool, &[phi, rel_ba, not_ab]).is_unsat()
    }
}

/// Existentially eliminates `aux` from `t`; `None` if any projection step
/// is inexact over ℤ.
fn eliminate_aux(pool: &mut TermPool, t: TermId, aux: &[VarId]) -> Option<TermId> {
    if aux.is_empty() {
        return Some(t);
    }
    let mut dnf = Dnf::from_term(pool, t);
    for &v in aux {
        dnf = dnf.eliminate(v);
    }
    dnf.is_exact().then(|| dnf.to_term(pool))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::{SimpleStmt, Statement};
    use crate::thread::{Thread, ThreadId};
    use automata::bitset::BitSet;
    use automata::dfa::DfaBuilder;
    use smt::linear::LinExpr;

    /// Builds a two-thread program from one statement per thread.
    fn two_stmt_program(
        pool: &mut TermPool,
        mk: impl Fn(&mut TermPool, ThreadId) -> Statement,
    ) -> Program {
        let mut b = Program::builder("test");
        let p = pool.var("pendingIo");
        b.add_global(p, 1);
        let s0 = mk(pool, ThreadId(0));
        let s1 = mk(pool, ThreadId(1));
        let l0 = b.add_statement(s0);
        let l1 = b.add_statement(s1);
        for l in [l0, l1] {
            let mut cfg = DfaBuilder::new();
            let entry = cfg.add_state(false);
            let exit = cfg.add_state(true);
            cfg.add_transition(entry, l, exit);
            b.add_thread(Thread::new("t", cfg.build(entry), BitSet::new(2)));
        }
        b.build(pool)
    }

    #[test]
    fn same_thread_never_commutes() {
        let mut pool = TermPool::new();
        let x = pool.var("x");
        let program = {
            let mut b = Program::builder("p");
            b.add_global(x, 0);
            let s1 = b.add_statement(Statement::simple(
                ThreadId(0),
                "a",
                SimpleStmt::Havoc(x),
                &pool,
            ));
            let s2 = b.add_statement(Statement::simple(
                ThreadId(0),
                "b",
                SimpleStmt::Havoc(pool.var("y")),
                &pool,
            ));
            let mut cfg = DfaBuilder::new();
            let q0 = cfg.add_state(false);
            let q1 = cfg.add_state(false);
            let q2 = cfg.add_state(true);
            cfg.add_transition(q0, s1, q1);
            cfg.add_transition(q1, s2, q2);
            b.add_thread(Thread::new("t", cfg.build(q0), BitSet::new(3)));
            b.build(&mut pool)
        };
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
        assert!(!oracle.commute(&mut pool, &program, LetterId(0), LetterId(1)));
    }

    #[test]
    fn disjoint_variables_commute_syntactically() {
        let mut pool = TermPool::new();
        let program = {
            let mut b = Program::builder("p");
            let x = pool.var("x");
            let y = pool.var("y");
            b.add_global(x, 0);
            b.add_global(y, 0);
            let lx = b.add_statement(Statement::simple(
                ThreadId(0),
                "x := 1",
                SimpleStmt::Assign(x, LinExpr::constant(1)),
                &pool,
            ));
            let ly = b.add_statement(Statement::simple(
                ThreadId(1),
                "y := 1",
                SimpleStmt::Assign(y, LinExpr::constant(1)),
                &pool,
            ));
            for l in [lx, ly] {
                let mut cfg = DfaBuilder::new();
                let entry = cfg.add_state(false);
                let exit = cfg.add_state(true);
                cfg.add_transition(entry, l, exit);
                b.add_thread(Thread::new("t", cfg.build(entry), BitSet::new(2)));
            }
            b.build(&mut pool)
        };
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Syntactic);
        assert!(oracle.commute(&mut pool, &program, LetterId(0), LetterId(1)));
        assert_eq!(oracle.stats().syntactic_hits, 1);
        // Cached on repeat.
        assert!(oracle.commute(&mut pool, &program, LetterId(1), LetterId(0)));
        assert_eq!(oracle.stats().cache_hits, 1);
    }

    #[test]
    fn increments_commute_semantically_but_not_syntactically() {
        // pendingIo := pendingIo + 1 in two threads: same variable, but the
        // compositions agree.
        let mut pool = TermPool::new();
        let program = two_stmt_program(&mut pool, |pool, t| {
            let p = pool.var("pendingIo");
            Statement::simple(
                t,
                "enter",
                SimpleStmt::Assign(p, LinExpr::var(p).add(&LinExpr::constant(1))),
                pool,
            )
        });
        let mut syn = CommutativityOracle::new(CommutativityLevel::Syntactic);
        assert!(!syn.commute(&mut pool, &program, LetterId(0), LetterId(1)));
        let mut sem = CommutativityOracle::new(CommutativityLevel::Semantic);
        assert!(sem.commute(&mut pool, &program, LetterId(0), LetterId(1)));
        assert_eq!(sem.stats().semantic_checks, 1);
    }

    #[test]
    fn write_write_conflict_does_not_commute() {
        let mut pool = TermPool::new();
        let program = {
            let mut b = Program::builder("p");
            let x = pool.var("x");
            b.add_global(x, 0);
            let l0 = b.add_statement(Statement::simple(
                ThreadId(0),
                "x := 1",
                SimpleStmt::Assign(x, LinExpr::constant(1)),
                &pool,
            ));
            let l1 = b.add_statement(Statement::simple(
                ThreadId(1),
                "x := 2",
                SimpleStmt::Assign(x, LinExpr::constant(2)),
                &pool,
            ));
            for l in [l0, l1] {
                let mut cfg = DfaBuilder::new();
                let entry = cfg.add_state(false);
                let exit = cfg.add_state(true);
                cfg.add_transition(entry, l, exit);
                b.add_thread(Thread::new("t", cfg.build(entry), BitSet::new(2)));
            }
            b.build(&mut pool)
        };
        let mut sem = CommutativityOracle::new(CommutativityLevel::Semantic);
        assert!(!sem.commute(&mut pool, &program, LetterId(0), LetterId(1)));
    }

    #[test]
    fn conditional_commutativity_enter_vs_exit() {
        // The §2 example: enter (pendingIo += 1) vs the exit block
        // (pendingIo -= 1; if pendingIo == 0 then stoppingEvent := true).
        // They do NOT commute unconditionally (the exit may or may not set
        // the event depending on order), but they DO commute under
        // pendingIo > 1.
        let mut pool = TermPool::new();
        let p = pool.var("pendingIo");
        let ev = pool.var("stoppingEvent");
        let program = {
            let mut b = Program::builder("bt");
            b.add_global(p, 1);
            b.add_global(ev, 0);
            let enter = b.add_statement(Statement::simple(
                ThreadId(0),
                "enter",
                SimpleStmt::Assign(p, LinExpr::var(p).add(&LinExpr::constant(1))),
                &pool,
            ));
            let p_zero = pool.eq_const(p, 0);
            let p_nonzero = pool.not(p_zero);
            let dec = LinExpr::var(p).sub(&LinExpr::constant(1));
            let exit = b.add_statement(Statement::atomic(
                ThreadId(1),
                "exit",
                vec![
                    vec![
                        SimpleStmt::Assign(p, dec.clone()),
                        SimpleStmt::Assume(p_zero),
                        SimpleStmt::Assign(ev, LinExpr::constant(1)),
                    ],
                    vec![SimpleStmt::Assign(p, dec), SimpleStmt::Assume(p_nonzero)],
                ],
                &pool,
            ));
            for l in [enter, exit] {
                let mut cfg = DfaBuilder::new();
                let e0 = cfg.add_state(false);
                let e1 = cfg.add_state(true);
                cfg.add_transition(e0, l, e1);
                b.add_thread(Thread::new("t", cfg.build(e0), BitSet::new(2)));
            }
            b.build(&mut pool)
        };
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
        assert!(
            !oracle.commute(&mut pool, &program, LetterId(0), LetterId(1)),
            "enter and exit must not commute unconditionally"
        );
        let gt1 = pool.ge_const(p, 2);
        assert!(
            oracle.commute_under(&mut pool, &program, gt1, LetterId(0), LetterId(1)),
            "enter and exit commute under pendingIo > 1"
        );
        // Monotonicity fast path: commuting pairs stay commuting under φ.
        let stats_before = oracle.stats();
        assert!(oracle.commute_under(&mut pool, &program, gt1, LetterId(0), LetterId(1)));
        assert!(oracle.stats().cache_hits > stats_before.cache_hits);
    }
}
