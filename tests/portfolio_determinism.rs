//! Determinism of the parallel portfolio's lockstep mode: with
//! `deterministic: true`, [`parallel_verify`] must be a pure function of
//! the program and the engine list — verdict, winner, per-engine round
//! counts and proof sizes identical across repeated runs, regardless of
//! thread scheduling.

use seqver::bench_suite;
use seqver::gemcutter::portfolio::{parallel_verify, ParallelConfig};
use seqver::gemcutter::verify::VerifierConfig;
use seqver::smt::TermPool;

/// The four-engine portfolio the determinism contract is tested with:
/// three fixed orders plus two seeded random orders.
fn engines() -> Vec<VerifierConfig> {
    vec![
        VerifierConfig::gemcutter_seq(),
        VerifierConfig::gemcutter_lockstep(),
        VerifierConfig::gemcutter_random(1),
        VerifierConfig::gemcutter_random(2),
    ]
}

/// Runs the deterministic parallel portfolio 5 times on `name` and
/// asserts every run reproduces the first one exactly.
fn assert_reproducible(name: &str) {
    let bench = bench_suite::all()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("benchmark {name} not in the suite"));
    let configs = engines();
    let pcfg = ParallelConfig {
        deterministic: true,
        ..ParallelConfig::default()
    };

    let mut reference = None;
    for run in 0..5 {
        let mut pool = TermPool::new();
        let p = bench.compile(&mut pool);
        let result = parallel_verify(&pool, &p, &configs, &pcfg);
        let fingerprint = (
            result.outcome.verdict.clone(),
            result.winner.clone(),
            result.engines.clone(),
        );
        match &reference {
            None => reference = Some(fingerprint),
            Some(first) => assert_eq!(*first, fingerprint, "{name}: run {run} diverged from run 0"),
        }
    }
}

#[test]
fn deterministic_parallel_is_reproducible_on_peterson() {
    assert_reproducible("peterson");
}

#[test]
fn deterministic_parallel_is_reproducible_on_dekker() {
    assert_reproducible("dekker");
}
