//! End-to-end verification benchmarks: GemCutter configurations vs. the
//! Automizer baseline on representative corpus programs — the per-program
//! counterpart of Tables 1–2.

use bench_suite::generators::{bluetooth, count_up_down, peterson, shared_counter};
use criterion::{criterion_group, criterion_main, Criterion};
use gemcutter::verify::{verify, VerifierConfig};
use smt::term::TermPool;
use std::hint::black_box;

fn bench_program(c: &mut Criterion, name: &str, source: &str) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    for config in [
        VerifierConfig::gemcutter_seq(),
        VerifierConfig::gemcutter_lockstep(),
        VerifierConfig::sleep_only(),
        VerifierConfig::persistent_only(),
        VerifierConfig::automizer(),
    ] {
        g.bench_function(config.name.clone(), |b| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let p = cpl::compile(source, &mut pool).expect("benchmark compiles");
                black_box(verify(&mut pool, &p, &config))
            })
        });
    }
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_program(c, "bluetooth-2", &bluetooth(2));
    bench_program(c, "peterson", &peterson(true));
    bench_program(c, "counter-2x2", &shared_counter(2, 2, 4));
    bench_program(c, "count-up-down-2", &count_up_down(2));
}

criterion_group!(verify_benches, benches);
criterion_main!(verify_benches);
