//! Deletion-based unsat cores.
//!
//! The refinement loop slices counterexample traces to the statements that
//! actually participate in the infeasibility (treating the rest as havoc),
//! which is what makes the generated Floyd/Hoare assertions small — the
//! `pendingIo ≥ C ∧ ¬stoppingEvent` family of the paper's §2 arises from
//! exactly this slicing. The core is computed by deletion: drop each
//! assertion in turn and keep it only if the rest becomes satisfiable.
//!
//! Under the CDCL engine the deletion loop is accelerated by the
//! refutation's own antecedent set: every clause carries the assertion
//! indices it derives from (unioned through learned-clause resolutions),
//! so the final conflict names a proven-unsat subset that certifies most
//! deletion probes without a solver call. The certificate only skips
//! probes whose outcome it decides, so the computed core is *identical*
//! to the legacy loop's — trace slicing does not depend on the engine.

use crate::cdcl::{self, CdclOutcome};
use crate::solver::{check, SatResult, SolverConfig, SolverKind};
use crate::term::{TermId, TermPool};

/// Computes a (locally minimal) unsat core of `assertions`.
///
/// Returns the *indices* of a subset whose conjunction is still
/// unsatisfiable, or `None` if the input is not proven unsatisfiable in the
/// first place (including `Unknown` verdicts).
///
/// The result is subset-minimal with respect to single deletions: removing
/// any one returned index makes the conjunction satisfiable or unknown.
///
/// # Example
///
/// ```
/// use smt::term::TermPool;
/// use smt::unsat_core::unsat_core;
///
/// let mut pool = TermPool::new();
/// let x = pool.var("x");
/// let y = pool.var("y");
/// let a = pool.ge_const(x, 5);   // relevant
/// let b = pool.le_const(y, 100); // irrelevant
/// let c = pool.le_const(x, 2);   // relevant
/// let core = unsat_core(&mut pool, &[a, b, c]).unwrap();
/// assert_eq!(core, vec![0, 2]);
/// ```
pub fn unsat_core(pool: &mut TermPool, assertions: &[TermId]) -> Option<Vec<usize>> {
    if pool.solver_kind() == SolverKind::Cdcl {
        return cdcl_core(pool, assertions);
    }
    if !check(pool, assertions).is_unsat() {
        return None;
    }
    let mut kept: Vec<usize> = (0..assertions.len()).collect();
    let mut i = 0;
    while i < kept.len() {
        let candidate: Vec<TermId> = kept
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &k)| assertions[k])
            .collect();
        if matches!(check(pool, &candidate), SatResult::Unsat) {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    Some(kept)
}

/// Refutes `terms` with the CDCL engine, returning the antecedent
/// origins of the refutation — a sound (unsat) subset of `0..terms.len()`
/// — or `None` on `Sat`/`Unknown`.
fn cdcl_refute(pool: &TermPool, terms: &[TermId]) -> Option<Vec<u32>> {
    let config = SolverConfig::default();
    let governor = pool.governor().clone();
    match cdcl::check_with_core(pool, terms, config.bb_budget, config.dpll_budget, &governor) {
        CdclOutcome::Unsat { origins } => Some(origins),
        _ => None,
    }
}

/// The CDCL-engine core: produces **exactly** the same core as the
/// legacy deletion loop (so the refinement trajectory is engine-
/// independent), but uses the refutation's antecedent origins as an
/// unsatisfiability certificate to skip most deletion probes.
///
/// Invariant: `seed` is a proven-unsat subset of `kept`. Probing an
/// index outside `seed` must come back unsat (the certificate survives
/// the deletion), so those indices are removed without a solver call —
/// the decision matches what the legacy probe would conclude. Indices
/// inside `seed` are genuinely probed; a successful probe refreshes the
/// certificate from the probe's own refutation, keeping the invariant.
fn cdcl_core(pool: &mut TermPool, assertions: &[TermId]) -> Option<Vec<usize>> {
    let mut seed: Vec<usize> = cdcl_refute(pool, assertions)?
        .into_iter()
        .map(|o| o as usize)
        .collect();
    let mut kept: Vec<usize> = (0..assertions.len()).collect();
    let mut i = 0;
    while i < kept.len() {
        let idx = kept[i];
        if !seed.contains(&idx) {
            kept.remove(i);
            continue;
        }
        let rest: Vec<usize> = kept.iter().copied().filter(|&k| k != idx).collect();
        let terms: Vec<TermId> = rest.iter().map(|&k| assertions[k]).collect();
        match cdcl_refute(pool, &terms) {
            Some(origins) => {
                seed = origins.into_iter().map(|o| rest[o as usize]).collect();
                kept.remove(i);
            }
            None => i += 1,
        }
    }
    Some(kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_drops_irrelevant_assertions() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let noise: Vec<TermId> = (0..5)
            .map(|i| {
                let v = p.var(&format!("n{i}"));
                p.ge_const(v, i)
            })
            .collect();
        let mut assertions = noise.clone();
        assertions.push(p.eq_const(x, 1)); // index 5
        assertions.push(p.eq_const(x, 2)); // index 6
        let core = unsat_core(&mut p, &assertions).unwrap();
        assert_eq!(core, vec![5, 6]);
    }

    #[test]
    fn sat_input_has_no_core() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a = p.ge_const(x, 0);
        assert_eq!(unsat_core(&mut p, &[a]), None);
    }

    #[test]
    fn core_of_false_is_single() {
        let mut p = TermPool::new();
        let x = p.var("x");
        let a = p.ge_const(x, 0);
        let core = unsat_core(&mut p, &[a, TermPool::FALSE]).unwrap();
        assert_eq!(core, vec![1]);
    }

    /// The CDCL seeding must not change observable behaviour: the core
    /// is unsat on its own (cross-checked under the legacy engine) and
    /// locally minimal — dropping any single member makes it sat.
    #[test]
    fn cdcl_core_is_sound_and_minimal() {
        let mut p = TermPool::new();
        assert_eq!(p.solver_kind(), SolverKind::Cdcl);
        let x = p.var("x");
        let y = p.var("y");
        let mut assertions: Vec<TermId> = (0..8)
            .map(|i| {
                let v = p.var(&format!("n{i}"));
                p.le_const(v, 10 + i)
            })
            .collect();
        let low = p.le_const(x, 0);
        let high = p.ge_const(x, 10);
        assertions.push(p.or([low, high])); // 8
        assertions.push(p.ge_const(x, 1)); // 9
        assertions.push(p.le_const(x, 9)); // 10
        assertions.push(p.ge_const(y, 3)); // 11: irrelevant
        let core = unsat_core(&mut p, &assertions).unwrap();
        assert_eq!(core, vec![8, 9, 10]);

        let core_terms: Vec<TermId> = core.iter().map(|&i| assertions[i]).collect();
        p.set_solver_kind(SolverKind::Dpll);
        assert!(check(&mut p, &core_terms).is_unsat());
        for skip in 0..core_terms.len() {
            let rest: Vec<TermId> = core_terms
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != skip)
                .map(|(_, &t)| t)
                .collect();
            assert!(check(&mut p, &rest).is_sat(), "core not minimal at {skip}");
        }
    }

    /// Both engines agree on the final core for the same input.
    #[test]
    fn engines_agree_on_core() {
        for kind in [SolverKind::Dpll, SolverKind::Cdcl] {
            let mut p = TermPool::new();
            p.set_solver_kind(kind);
            let x = p.var("x");
            let a = p.ge_const(x, 5);
            let b = p.le_const(x, 2);
            let noise = p.var("z");
            let c = p.ge_const(noise, 0);
            assert_eq!(unsat_core(&mut p, &[c, a, b]).unwrap(), vec![1, 2]);
        }
    }

    /// With *redundant* assertions (two different formulas both implying
    /// `x ≤ 0`) several minimal cores exist; the greedy deletion order —
    /// not the CDCL refutation's antecedent choice — must decide which
    /// survives, so the engines stay trajectory-identical.
    #[test]
    fn engines_agree_on_core_with_redundancy() {
        let mut expected = None;
        for kind in [SolverKind::Dpll, SolverKind::Cdcl] {
            let mut p = TermPool::new();
            p.set_solver_kind(kind);
            let x = p.var("x");
            let a = p.le_const(x, 0);
            let tight = p.le_const(x, -5);
            let b = p.or([a, tight]); // semantically x ≤ 0, distinct term
            let c = p.ge_const(x, 1);
            let core = unsat_core(&mut p, &[a, b, c]).unwrap();
            match &expected {
                None => expected = Some(core),
                Some(e) => assert_eq!(&core, e, "core differs between engines"),
            }
        }
        assert_eq!(expected.unwrap(), vec![1, 2], "greedy drops index 0 first");
    }

    #[test]
    fn core_through_disjunction() {
        let mut p = TermPool::new();
        let x = p.var("x");
        // (x ≤ 0 ∨ x ≥ 10), x ≥ 1, x ≤ 9: all three are needed.
        let low = p.le_const(x, 0);
        let high = p.ge_const(x, 10);
        let disj = p.or([low, high]);
        let a = p.ge_const(x, 1);
        let b = p.le_const(x, 9);
        let core = unsat_core(&mut p, &[disj, a, b]).unwrap();
        assert_eq!(core, vec![0, 1, 2]);
    }
}
