//! **Table 1**: number of successfully analysed benchmarks, CPU time,
//! memory (proxy: visited proof-check states) and refinement rounds —
//! Automizer baseline vs. GemCutter portfolio, per suite, split into
//! correct/incorrect programs.
//!
//! Run: `cargo run --release -p bench --bin table1`

use bench::{fmt_time, run_config, run_portfolio, Aggregate, Run};
use bench_suite::{Expected, Suite};
use gemcutter::verify::VerifierConfig;

fn print_block(title: &str, runs: &[Run], suite: Suite) {
    println!("{title}");
    for (label, keep) in [
        ("successful", None),
        ("- correct", Some(Expected::Safe)),
        ("- incorrect", Some(Expected::Unsafe)),
    ] {
        let agg = Aggregate::of(runs.iter(), |r| {
            r.suite == suite && keep.is_none_or(|e| r.expected == e)
        });
        println!(
            "  {label:14} #={:3}  time={:>9}  mem={:>9}  rounds={:>5}",
            agg.count,
            fmt_time(agg.time_s),
            agg.memory,
            agg.rounds
        );
    }
}

fn main() {
    let corpus = bench::corpus();
    println!("Table 1: Automizer vs GemCutter (portfolio) — paper's Table 1");
    println!("(memory is the visited-state proxy; see DESIGN.md)\n");

    let automizer = run_config(&corpus, &VerifierConfig::automizer());
    let gemcutter: Vec<Run> = run_portfolio(&corpus, false)
        .into_iter()
        .map(|(r, _)| r)
        .collect();

    for (suite, suite_name) in [
        (Suite::SvComp, "SV-COMP-like"),
        (Suite::Weaver, "Weaver-like"),
    ] {
        println!("== {suite_name} benchmarks ==");
        print_block("Automizer", &automizer, suite);
        print_block("GemCutter", &gemcutter, suite);
        println!();
    }

    // Headline comparison.
    let a_total = Aggregate::of(automizer.iter(), |_| true);
    let g_total = Aggregate::of(gemcutter.iter(), |_| true);
    println!(
        "Overall: Automizer solves {}, GemCutter solves {} (of {})",
        a_total.count,
        g_total.count,
        corpus.len()
    );
    assert!(
        g_total.count >= a_total.count,
        "paper shape: GemCutter solves at least as many programs"
    );
    println!("Paper shape holds: GemCutter ≥ Automizer in solved programs.");
}
