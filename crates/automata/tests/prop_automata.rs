//! Property tests for the automata substrate: determinization,
//! minimization and the boolean language operations are validated against
//! bounded language enumeration on random automata.

use automata::dfa::{Dfa, DfaBuilder, StateId};
use automata::explore::{accepted_words, bounded_equal, enumerate_words};
use automata::minimize::minimize;
use automata::nfa::{Nfa, NfaBuilder};
use automata::ops::{are_equivalent, complement, difference, intersection, is_subset_of};
use proptest::prelude::*;

const ALPHABET: [u8; 2] = [0, 1];
const BOUND: usize = 6;

/// Random DFA description: per state, an accepting flag and one optional
/// successor per letter.
#[derive(Clone, Debug)]
struct DfaDesc {
    accepting: Vec<bool>,
    // edges[state][letter] = Some(target)
    edges: Vec<Vec<Option<usize>>>,
}

fn dfa_desc(max_states: usize) -> impl Strategy<Value = DfaDesc> {
    (2..=max_states).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(
                proptest::collection::vec(proptest::option::of(0..n), ALPHABET.len()),
                n,
            ),
        )
            .prop_map(|(accepting, edges)| DfaDesc { accepting, edges })
    })
}

fn build(desc: &DfaDesc) -> Dfa<u8> {
    let mut b = DfaBuilder::new();
    let states: Vec<StateId> = desc.accepting.iter().map(|&a| b.add_state(a)).collect();
    for (s, row) in desc.edges.iter().enumerate() {
        for (l, target) in row.iter().enumerate() {
            if let Some(t) = target {
                b.add_transition(states[s], ALPHABET[l], states[*t]);
            }
        }
    }
    b.build(states[0])
}

/// Random NFA: like the DFA but with up to 2 successors per letter.
fn nfa_desc(max_states: usize) -> impl Strategy<Value = Vec<(bool, Vec<Vec<usize>>)>> {
    (2..=max_states).prop_flat_map(|n| {
        proptest::collection::vec(
            (
                any::<bool>(),
                proptest::collection::vec(proptest::collection::vec(0..n, 0..=2), ALPHABET.len()),
            ),
            n,
        )
    })
}

fn build_nfa(desc: &[(bool, Vec<Vec<usize>>)]) -> Nfa<u8> {
    let mut b = NfaBuilder::new();
    let states: Vec<StateId> = desc.iter().map(|(a, _)| b.add_state(*a)).collect();
    for (s, (_, rows)) in desc.iter().enumerate() {
        for (l, targets) in rows.iter().enumerate() {
            for &t in targets {
                b.add_transition(states[s], ALPHABET[l], states[t]);
            }
        }
    }
    b.add_initial(states[0]);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn minimization_preserves_language(desc in dfa_desc(6)) {
        let d = build(&desc);
        let m = minimize(&d);
        prop_assert!(bounded_equal(&d, &m, BOUND));
        prop_assert!(are_equivalent(&d, &m));
        prop_assert!(m.num_states() <= d.num_states().max(1));
        // Idempotence.
        let mm = minimize(&m);
        prop_assert_eq!(m.num_states(), mm.num_states());
    }

    #[test]
    fn determinization_preserves_language(desc in nfa_desc(5)) {
        let n = build_nfa(&desc);
        let d = n.determinize();
        for w in enumerate_words(&ALPHABET, BOUND) {
            prop_assert_eq!(
                n.accepts(w.iter().copied()),
                d.accepts(w.iter().copied()),
                "word {:?}", w
            );
        }
    }

    #[test]
    fn boolean_ops_respect_semantics(a in dfa_desc(5), b in dfa_desc(5)) {
        let da = build(&a);
        let db = build(&b);
        let inter = intersection(&da, &db);
        let diff = difference(&da, &db);
        let comp = complement(&da, &ALPHABET);
        for w in enumerate_words(&ALPHABET, 5) {
            let wa = da.accepts(w.iter().copied());
            let wb = db.accepts(w.iter().copied());
            prop_assert_eq!(inter.accepts(w.iter().copied()), wa && wb);
            prop_assert_eq!(diff.accepts(w.iter().copied()), wa && !wb);
            prop_assert_eq!(comp.accepts(w.iter().copied()), !wa);
        }
    }

    #[test]
    fn inclusion_matches_enumeration(a in dfa_desc(5), b in dfa_desc(5)) {
        let da = build(&a);
        let db = build(&b);
        let included = is_subset_of(&da, &db);
        // Over the bound, inclusion must at least hold directionally.
        let wa = accepted_words(&da, BOUND);
        let all_in = wa.iter().all(|w| db.accepts(w.iter().copied()));
        if included {
            prop_assert!(all_in, "claimed ⊆ but a short word escapes");
        }
        // (all_in without `included` is possible: a longer word may escape.)
    }

    #[test]
    fn trim_preserves_language(desc in dfa_desc(6)) {
        let d = build(&desc);
        let t = d.trim();
        prop_assert!(bounded_equal(&d, &t, BOUND));
        prop_assert!(t.num_states() <= d.num_states().max(1));
    }
}
