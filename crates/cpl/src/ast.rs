//! Abstract syntax of CPL, plus a pretty-printer (used by round-trip
//! tests and benchmark-program generators).

use std::fmt;

/// Variable types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Type {
    /// Mathematical integer.
    Int,
    /// Boolean (represented as `{0, 1}` integers after lowering).
    Bool,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
        }
    }
}

/// Initializer of a variable declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Init {
    /// A compile-time constant.
    Const(i128),
    /// `true`/`false` (bool variables).
    ConstBool(bool),
    /// `*`: nondeterministic initial value.
    Nondet,
}

/// A global or thread-local variable declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Initial value.
    pub init: Init,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*` (one operand must be constant — linearity)
    Mul,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Source syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i128),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Var(String),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `*`: nondeterministic boolean (conditions / bool assignments only).
    Nondet,
}

impl Expr {
    /// Convenience constructor for binary expressions.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Constant-folds the expression to an integer, if possible.
    pub fn const_int(&self) -> Option<i128> {
        match self {
            Expr::Int(n) => Some(*n),
            Expr::Neg(e) => e.const_int().map(|n| -n),
            Expr::Bin(BinOp::Add, a, b) => Some(a.const_int()? + b.const_int()?),
            Expr::Bin(BinOp::Sub, a, b) => Some(a.const_int()? - b.const_int()?),
            Expr::Bin(BinOp::Mul, a, b) => Some(a.const_int()? * b.const_int()?),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(n) => write!(f, "{n}"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Not(e) => write!(f, "(!{e})"),
            Expr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Nondet => write!(f, "*"),
        }
    }
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `x := e;`
    Assign(String, Expr),
    /// `havoc x;`
    Havoc(String),
    /// `assume e;`
    Assume(Expr),
    /// `assert e;`
    Assert(Expr),
    /// `skip;`
    Skip,
    /// `if (c) { … } else { … }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { … }`
    While(Expr, Vec<Stmt>),
    /// `atomic { … }` — one indivisible statement.
    Atomic(Vec<Stmt>),
}

impl Stmt {
    /// A compact single-line rendering, used as the statement label in
    /// traces and DOT dumps.
    pub fn label(&self) -> String {
        match self {
            Stmt::Assign(x, e) => format!("{x} := {e}"),
            Stmt::Havoc(x) => format!("havoc {x}"),
            Stmt::Assume(e) => format!("assume {e}"),
            Stmt::Assert(e) => format!("assert {e}"),
            Stmt::Skip => "skip".to_owned(),
            Stmt::If(c, _, _) => format!("if ({c}) …"),
            Stmt::While(c, _) => format!("while ({c}) …"),
            Stmt::Atomic(body) => {
                let inner: Vec<String> = body.iter().map(Stmt::label).collect();
                format!("atomic {{ {} }}", inner.join("; "))
            }
        }
    }
}

/// A thread template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadDecl {
    /// Template name.
    pub name: String,
    /// Thread-local variables.
    pub locals: Vec<VarDecl>,
    /// The body.
    pub body: Vec<Stmt>,
}

/// A spawn directive: `spawn user;` or `spawn user * 3;`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spawn {
    /// Template name.
    pub template: String,
    /// Number of instances (≥ 1).
    pub count: u32,
}

/// A complete CPL compilation unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ast {
    /// Program name (derived from the source or set by the caller).
    pub name: String,
    /// Global variable declarations.
    pub globals: Vec<VarDecl>,
    /// Optional precondition.
    pub requires: Option<Expr>,
    /// Optional postcondition.
    pub ensures: Option<Expr>,
    /// Thread templates.
    pub threads: Vec<ThreadDecl>,
    /// Spawn directives, in order.
    pub spawns: Vec<Spawn>,
}

impl Ast {
    /// Looks up a thread template by name.
    pub fn template(&self, name: &str) -> Option<&ThreadDecl> {
        self.threads.iter().find(|t| t.name == name)
    }

    /// Total number of spawned thread instances.
    pub fn num_instances(&self) -> usize {
        self.spawns.iter().map(|s| s.count as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_folding() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::Int(3),
            Expr::bin(BinOp::Add, Expr::Int(2), Expr::Int(5)),
        );
        assert_eq!(e.const_int(), Some(21));
        assert_eq!(Expr::Var("x".into()).const_int(), None);
        assert_eq!(Expr::Neg(Box::new(Expr::Int(4))).const_int(), Some(-4));
    }

    #[test]
    fn labels() {
        let s = Stmt::Atomic(vec![
            Stmt::Assume(Expr::Not(Box::new(Expr::Var("f".into())))),
            Stmt::Assign(
                "p".into(),
                Expr::bin(BinOp::Add, Expr::Var("p".into()), Expr::Int(1)),
            ),
        ]);
        assert_eq!(s.label(), "atomic { assume (!f); p := (p + 1) }");
    }

    #[test]
    fn template_lookup() {
        let ast = Ast {
            threads: vec![ThreadDecl {
                name: "user".into(),
                locals: vec![],
                body: vec![],
            }],
            spawns: vec![Spawn {
                template: "user".into(),
                count: 3,
            }],
            ..Ast::default()
        };
        assert!(ast.template("user").is_some());
        assert!(ast.template("nope").is_none());
        assert_eq!(ast.num_instances(), 3);
    }
}
