//! Soundness of the solver-level query cache (`smt::qcache`).
//!
//! The cache may only change *who computes* a verdict, never the verdict:
//! cached checks must agree with fresh cache-free solves on random term
//! batteries, `Unknown` results must never be cached (so a tripped
//! governor cannot poison the cache), cross-pool hits must survive the
//! pool-independent canonicalization, and the incremental
//! [`AssertionScope`] must agree with cold per-assertion checks.

use proptest::prelude::*;
use seqver::smt::solver::{check, AssertionScope, SatResult};
use seqver::smt::term::TermId;
use seqver::smt::{Category, ResourceGovernor, TermPool};
use std::time::Duration;

/// `(variable index, relation, constant)` — one atom over `x0..x2`.
type AtomDesc = (usize, u8, i128);

fn atom_desc() -> impl Strategy<Value = AtomDesc> {
    (0usize..3, 0u8..3, -4i128..5)
}

/// A random formula in DNF shape: an `∨` of small `∧`s of atoms.
fn formula_desc() -> impl Strategy<Value = Vec<Vec<AtomDesc>>> {
    proptest::collection::vec(proptest::collection::vec(atom_desc(), 1..=3), 1..=3)
}

/// A battery of 1–3 assertions checked as a conjunction.
fn battery_desc() -> impl Strategy<Value = Vec<Vec<Vec<AtomDesc>>>> {
    proptest::collection::vec(formula_desc(), 1..=3)
}

fn build_atom(pool: &mut TermPool, (v, op, k): AtomDesc) -> TermId {
    let x = pool.var(&format!("x{v}"));
    match op {
        0 => pool.ge_const(x, k),
        1 => pool.le_const(x, k),
        _ => pool.eq_const(x, k),
    }
}

fn build_formula(pool: &mut TermPool, desc: &[Vec<AtomDesc>]) -> TermId {
    let disjuncts: Vec<TermId> = desc
        .iter()
        .map(|conj| {
            let atoms: Vec<TermId> = conj.iter().map(|&a| build_atom(pool, a)).collect();
            pool.and(atoms)
        })
        .collect();
    pool.or(disjuncts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cached checks (first run = misses, second run = hits, cross-pool
    /// run = canonical-key hits) all agree with a cache-free fresh solve,
    /// and every Sat model exactly satisfies the queried conjunction.
    #[test]
    fn cached_checks_agree_with_fresh_solves(battery in battery_desc()) {
        // Cache-free baseline.
        let mut base_pool = TermPool::new();
        base_pool.take_query_cache();
        let base_terms: Vec<TermId> =
            battery.iter().map(|f| build_formula(&mut base_pool, f)).collect();
        let base = check(&mut base_pool, &base_terms);

        // Cached pool: miss pass, then hit pass.
        let mut pool = TermPool::new();
        let terms: Vec<TermId> = battery.iter().map(|f| build_formula(&mut pool, f)).collect();
        let first = check(&mut pool, &terms);
        let second = check(&mut pool, &terms);
        prop_assert_eq!(first.is_sat(), base.is_sat());
        prop_assert_eq!(first.is_unsat(), base.is_unsat());
        prop_assert_eq!(second.is_sat(), base.is_sat());
        prop_assert_eq!(second.is_unsat(), base.is_unsat());
        let conj = pool.and(terms.iter().copied());
        for result in [&first, &second] {
            if let SatResult::Sat(m) = result {
                prop_assert!(
                    pool.eval(conj, &|v| m.value(v)),
                    "returned model does not satisfy the formula"
                );
            }
        }

        // Cross-pool: a second pool sharing the cache, interning the
        // battery in reverse order (different TermIds/VarIds), must agree.
        let mut other = TermPool::new();
        if let Some(cache) = pool.query_cache() {
            other.set_query_cache(cache.clone());
        }
        let other_terms: Vec<TermId> =
            battery.iter().rev().map(|f| build_formula(&mut other, f)).collect();
        let third = check(&mut other, &other_terms);
        prop_assert_eq!(third.is_sat(), base.is_sat());
        prop_assert_eq!(third.is_unsat(), base.is_unsat());
        let other_conj = other.and(other_terms.iter().copied());
        if let SatResult::Sat(m) = &third {
            prop_assert!(other.eval(other_conj, &|v| m.value(v)));
        }
    }

    /// The incremental assertion scope answers exactly like a cold
    /// cache-free check of `prefix ∧ extra` for every extra assertion.
    #[test]
    fn scope_agrees_with_cold_checks(
        prefix in formula_desc(),
        extras in proptest::collection::vec(formula_desc(), 1..=4),
    ) {
        let mut pool = TermPool::new();
        let p = build_formula(&mut pool, &prefix);
        let mut scope = AssertionScope::new(&mut pool, &[p]);
        for e in &extras {
            let extra = build_formula(&mut pool, e);
            let scoped = scope.check(&mut pool, extra);
            let mut fresh = TermPool::new();
            fresh.take_query_cache();
            let fp = build_formula(&mut fresh, &prefix);
            let fe = build_formula(&mut fresh, e);
            let cold = check(&mut fresh, &[fp, fe]);
            prop_assert_eq!(scoped.is_sat(), cold.is_sat(), "scope/cold sat mismatch");
            prop_assert_eq!(scoped.is_unsat(), cold.is_unsat(), "scope/cold unsat mismatch");
        }
    }
}

/// `Unknown` (here: a tripped step budget) is never inserted; once the
/// governor is lifted the same query solves for real and only then is it
/// cached.
#[test]
fn unknown_is_never_cached() {
    let mut pool = TermPool::new();
    let x = pool.var("x");
    let a = pool.ge_const(x, 0);
    let b = pool.le_const(x, 10);
    pool.set_governor(
        ResourceGovernor::builder()
            .budget(Category::DpllDecisions, 0)
            .build(),
    );
    assert_eq!(check(&mut pool, &[a, b]), SatResult::Unknown);
    let stats = pool.query_cache().expect("cache enabled").stats();
    assert_eq!(stats.insertions, 0, "Unknown must not be cached");
    assert!(pool.query_cache().unwrap().is_empty());

    pool.set_governor(ResourceGovernor::unlimited());
    assert!(check(&mut pool, &[a, b]).is_sat());
    assert_eq!(pool.query_cache().unwrap().stats().insertions, 1);
}

/// A hit under an expired deadline degrades to `Unknown` — the lookup
/// charge still observes the governor, so deadlines fire on the hit path.
#[test]
fn hits_observe_the_deadline() {
    let mut pool = TermPool::new();
    let x = pool.var("x");
    let a = pool.ge_const(x, 0);
    let b = pool.le_const(x, 10);
    assert!(check(&mut pool, &[a, b]).is_sat()); // warm the cache
    pool.set_governor(ResourceGovernor::builder().deadline(Duration::ZERO).build());
    std::thread::sleep(Duration::from_millis(2));
    assert_eq!(
        check(&mut pool, &[a, b]),
        SatResult::Unknown,
        "a cached verdict must not outrun an expired deadline"
    );
}

/// Structurally equal queries from pools that interned variables and
/// terms in different orders share one cache line (Sat and Unsat).
#[test]
fn cross_pool_sharing_is_a_hit() {
    let mut a = TermPool::new();
    let x = a.var("x");
    let y = a.var("y");
    let f1 = a.ge_const(x, 3);
    let f2 = a.le_const(y, 7);
    assert!(check(&mut a, &[f1, f2]).is_sat());
    let u1 = a.le_const(x, 1);
    assert!(check(&mut a, &[f1, u1]).is_unsat());
    let warm = a.query_cache().unwrap().stats();
    assert_eq!(warm.hits, 0);
    assert_eq!(warm.insertions, 2);

    // Second pool, opposite interning order, shared cache handle.
    let mut b = TermPool::new();
    b.set_query_cache(a.query_cache().unwrap().clone());
    let y2 = b.var("y");
    let x2 = b.var("x");
    let g2 = b.le_const(y2, 7);
    let g1 = b.ge_const(x2, 3);
    assert!(check(&mut b, &[g2, g1]).is_sat());
    let v1 = b.le_const(x2, 1);
    assert!(check(&mut b, &[v1, g1]).is_unsat());
    let shared = b.query_cache().unwrap().stats();
    assert_eq!(
        shared.hits, 2,
        "pool-independent canonical keys must hit across pools"
    );
    assert_eq!(shared.insertions, 2, "hits must not re-insert");
}

/// `--no-qcache` semantics: a pool whose cache handle was taken never
/// consults or fills the shared storage.
#[test]
fn removed_handle_disables_memoization() {
    let mut pool = TermPool::new();
    let cache = pool.query_cache().unwrap().clone();
    pool.take_query_cache();
    let x = pool.var("x");
    let f = pool.ge_const(x, 3);
    let g = pool.le_const(x, 1);
    assert!(check(&mut pool, &[f, g]).is_unsat());
    assert!(check(&mut pool, &[f, g]).is_unsat());
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.insertions), (0, 0, 0));
    assert!(cache.is_empty());
}
