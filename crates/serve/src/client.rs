//! A small blocking client for the `seqver serve` protocol — what
//! `seqver submit`, the recovery tests and the warm-start bench speak.
//!
//! Busy-shed handling lives here too: [`BusyRetryPolicy`] turns the
//! daemon's `retry-after-ms` hint into capped exponential backoff with
//! deterministic seeded jitter and a total retry budget, so a fleet of
//! clients retrying the same overload neither hot-spins nor stampedes in
//! lockstep — and two runs with the same seed sleep the same schedule.

use crate::proto::{
    write_frame, Command, FrameEvent, FrameReader, Request, Response, Status, VerifyOpts, MAX_FRAME,
};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Socket read-timeout tick driving the response wait loop.
const TICK: Duration = Duration::from_millis(25);

/// How `busy` responses are retried: exponential backoff over the
/// server's hint, capped per sleep, jittered deterministically from a
/// seed, and bounded by a total sleep budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusyRetryPolicy {
    /// Maximum retry attempts (0 = return the first `busy` as-is).
    pub max_retries: u32,
    /// Per-sleep ceiling for the exponential curve.
    pub cap: Duration,
    /// Total sleep budget across all retries of one request: once spent,
    /// the last `busy` response is returned instead of sleeping again.
    pub budget: Duration,
    /// Jitter seed. Two clients with different seeds de-synchronize;
    /// the same seed replays the same schedule bit for bit.
    pub seed: u64,
}

impl Default for BusyRetryPolicy {
    fn default() -> BusyRetryPolicy {
        BusyRetryPolicy {
            max_retries: 0,
            cap: Duration::from_secs(2),
            budget: Duration::from_secs(60),
            seed: 0,
        }
    }
}

/// SplitMix64 — the standard 64-bit finalizer, used as a tiny
/// deterministic PRNG for jitter (no `rand` dependency, no global state).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl BusyRetryPolicy {
    /// The sleep before retry number `attempt` (0-based), given the
    /// server's hint: `min(cap, hint * 2^attempt)` plus deterministic
    /// jitter in `[0, delay/2]` derived from `(seed, attempt)`. Pure —
    /// the whole schedule is testable without a clock.
    pub fn backoff(&self, attempt: u32, hint: Duration) -> Duration {
        // The protocol floors hints at 1 ms; floor again here so even a
        // hand-built zero hint cannot produce a zero sleep.
        let hint_ms = (hint.as_millis() as u64).max(1);
        let exp = hint_ms.saturating_mul(1u64 << attempt.min(20));
        let capped = exp.min((self.cap.as_millis() as u64).max(1));
        let span = capped / 2;
        let jitter = if span == 0 {
            0
        } else {
            splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9e3779b97f4a7c15)) % (span + 1)
        };
        Duration::from_millis(capped + jitter)
    }
}

/// What one retried request went through, for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryReport {
    /// `busy` responses absorbed before the final response.
    pub busy_retries: u32,
    /// Total time slept across retries.
    pub slept: Duration,
    /// The retry budget ran out while the daemon was still busy.
    pub budget_exhausted: bool,
}

/// One connection to a daemon. Requests are strictly
/// send-one/receive-one, which is all the batch workloads need.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    /// How long to wait for each response before giving up.
    timeout: Duration,
}

impl Client {
    /// Connects with a 60 s response timeout.
    pub fn connect(addr: &str) -> Result<Client, String> {
        Client::connect_with_timeout(addr, Duration::from_secs(60))
    }

    /// Connects with an explicit per-response timeout.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
        stream
            .set_read_timeout(Some(TICK))
            .map_err(|e| format!("cannot set read timeout: {e}"))?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            reader: FrameReader::new(MAX_FRAME),
            timeout,
        })
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        write_frame(&mut self.stream, &request.to_text())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let start = Instant::now();
        loop {
            match self
                .reader
                .read_frame(
                    &mut self.stream,
                    TICK.max(Duration::from_millis(100)),
                    self.timeout,
                )
                .map_err(|e| format!("cannot read response: {e}"))?
            {
                FrameEvent::Frame(payload) => return Response::parse(&payload),
                FrameEvent::Closed => {
                    return Err("server closed the connection before responding".to_owned())
                }
                FrameEvent::Idle => {
                    if start.elapsed() >= self.timeout {
                        return Err(format!(
                            "no response within {:?} (request `{}`)",
                            self.timeout, request.id
                        ));
                    }
                }
            }
        }
    }

    /// Verifies one CPL source.
    pub fn verify_source(
        &mut self,
        id: &str,
        source: &str,
        opts: VerifyOpts,
    ) -> Result<Response, String> {
        self.request(&Request {
            id: id.to_owned(),
            cmd: Command::Verify {
                source: source.to_owned(),
                opts,
            },
        })
    }

    /// Verifies one CPL source, absorbing `busy` sheds under `policy`:
    /// each `busy` response is followed by a capped, jittered exponential
    /// sleep seeded from the hint, until the daemon admits the request or
    /// the retry count/budget runs out (the last `busy` is then returned).
    pub fn verify_with_retry(
        &mut self,
        id: &str,
        source: &str,
        opts: VerifyOpts,
        policy: &BusyRetryPolicy,
    ) -> Result<(Response, RetryReport), String> {
        let mut report = RetryReport::default();
        loop {
            let response = self.verify_source(id, source, opts.clone())?;
            if response.status != Some(Status::Busy) || report.busy_retries >= policy.max_retries {
                return Ok((response, report));
            }
            let hint = Duration::from_millis(response.retry_after_ms.unwrap_or(1).max(1));
            let delay = policy.backoff(report.busy_retries, hint);
            if report.slept + delay > policy.budget {
                report.budget_exhausted = true;
                return Ok((response, report));
            }
            std::thread::sleep(delay);
            report.slept += delay;
            report.busy_retries += 1;
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response, String> {
        self.request(&Request::control("ping", Command::Ping))
    }

    /// Server counter snapshot, as `key=value` pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, String)>, String> {
        Ok(self
            .request(&Request::control("stats", Command::Stats))?
            .info)
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<Response, String> {
        self.request(&Request::control("shutdown", Command::Shutdown))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential_with_floor() {
        let policy = BusyRetryPolicy {
            cap: Duration::from_millis(800),
            seed: 7,
            ..BusyRetryPolicy::default()
        };
        let hint = Duration::from_millis(50);
        let mut prev_base = 0u64;
        for attempt in 0..12 {
            let d = policy.backoff(attempt, hint);
            let base = (50u64 << attempt.min(20)).min(800);
            // base <= delay <= base + base/2 (jitter span).
            assert!(d >= Duration::from_millis(base), "attempt {attempt}: {d:?}");
            assert!(
                d <= Duration::from_millis(base + base / 2),
                "attempt {attempt}: {d:?}"
            );
            assert!(base >= prev_base, "monotone until the cap");
            prev_base = base;
        }
        // Large attempt numbers must not overflow the shift.
        let _ = policy.backoff(u32::MAX, hint);
        // A zero hint is floored, never a zero sleep (no hot-spin).
        assert!(policy.backoff(0, Duration::ZERO) >= Duration::from_millis(1));
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_differs_across_seeds() {
        let hint = Duration::from_millis(100);
        let a = BusyRetryPolicy {
            seed: 1,
            ..BusyRetryPolicy::default()
        };
        let b = BusyRetryPolicy {
            seed: 1,
            ..BusyRetryPolicy::default()
        };
        let c = BusyRetryPolicy {
            seed: 2,
            ..BusyRetryPolicy::default()
        };
        let schedule_a: Vec<Duration> = (0..8).map(|i| a.backoff(i, hint)).collect();
        let schedule_b: Vec<Duration> = (0..8).map(|i| b.backoff(i, hint)).collect();
        let schedule_c: Vec<Duration> = (0..8).map(|i| c.backoff(i, hint)).collect();
        assert_eq!(schedule_a, schedule_b, "same seed, same schedule");
        assert_ne!(schedule_a, schedule_c, "different seeds de-synchronize");
    }
}
