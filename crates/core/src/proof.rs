//! Floyd/Hoare proof automata (§7, after Heizmann et al.).
//!
//! A proof candidate is a finite set of assertions. The induced proof
//! automaton has as states *sets of assertions* (those that provably hold),
//! with transitions `δ(Φ, a) = { ψ | {⋀Φ} a {ψ} is a valid Hoare triple }`.
//! States and transitions are computed lazily and memoized; when the
//! refinement loop adds assertions, cached transitions are *extended*
//! rather than recomputed (each cache entry remembers how many assertions
//! it has examined).

use program::concurrent::{LetterId, Program};
use smt::linear::VarId;
use smt::solver::{check, AssertionScope};
use smt::term::{TermId, TermPool};
use std::collections::HashMap;

/// Index of a proof-automaton state (an interned assertion set).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ProofStateId(pub u32);

impl ProofStateId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Cumulative solver-query counters, the paper's proof-check cost metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProofStats {
    /// Hoare-triple validity checks performed.
    pub hoare_checks: usize,
    /// Transition-cache hits.
    pub cache_hits: usize,
    /// Assertions currently in the pool.
    pub num_assertions: usize,
}

struct ProofState {
    /// Sorted assertion indices that hold at this state.
    set: Vec<u32>,
    /// `⋀ set` as a term.
    conj: TermId,
    /// Memo: is the conjunction unsatisfiable (the state "is ⊥")?
    bottom: Option<bool>,
}

struct LetterRelation {
    /// Relation formula over program vars (pre) and primed vars (post).
    formula: TermId,
    /// Written program var → primed var.
    primed: HashMap<VarId, VarId>,
}

/// The Floyd/Hoare proof automaton over a growing assertion pool.
pub struct ProofAutomaton {
    assertions: Vec<TermId>,
    assertion_index: HashMap<TermId, u32>,
    states: Vec<ProofState>,
    state_interner: HashMap<Vec<u32>, ProofStateId>,
    /// (state, letter) → (successor, number of assertions examined).
    transitions: HashMap<(ProofStateId, LetterId), (ProofStateId, usize)>,
    /// Per-letter relation, built once.
    relations: HashMap<LetterId, LetterRelation>,
    /// Canonical primed variable per program variable.
    primed_vars: HashMap<VarId, VarId>,
    /// ψ renamed to primed vars, memoized per (letter, ψ).
    renamed_post: HashMap<(LetterId, TermId), TermId>,
    /// Initial-state memo per (init∧pre formula, assertions examined).
    initial_cache: Option<(TermId, ProofStateId, usize)>,
    stats: ProofStats,
}

impl ProofAutomaton {
    /// An empty proof (no assertions).
    pub fn new() -> ProofAutomaton {
        ProofAutomaton {
            assertions: Vec::new(),
            assertion_index: HashMap::new(),
            states: Vec::new(),
            state_interner: HashMap::new(),
            transitions: HashMap::new(),
            relations: HashMap::new(),
            primed_vars: HashMap::new(),
            renamed_post: HashMap::new(),
            initial_cache: None,
            stats: ProofStats::default(),
        }
    }

    /// Query counters.
    pub fn stats(&self) -> ProofStats {
        ProofStats {
            num_assertions: self.assertions.len(),
            ..self.stats
        }
    }

    /// Number of assertions — the paper's *proof size* metric.
    pub fn proof_size(&self) -> usize {
        self.assertions.len()
    }

    /// The assertion pool in insertion order — what the supervisor harvests
    /// (via [`smt::transfer`]) to recycle a partial proof across restarts.
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// Adds an assertion (deduplicated); returns whether it was new.
    pub fn add_assertion(&mut self, assertion: TermId) -> bool {
        if assertion == TermPool::TRUE {
            return false; // trivial, never useful
        }
        if self.assertion_index.contains_key(&assertion) {
            return false;
        }
        let idx = self.assertions.len() as u32;
        self.assertions.push(assertion);
        self.assertion_index.insert(assertion, idx);
        true
    }

    /// The assertion set of a state (sorted indices into the pool).
    pub fn assertion_set(&self, s: ProofStateId) -> &[u32] {
        &self.states[s.index()].set
    }

    /// The conjunction `⋀Φ` of a state's assertions.
    pub fn conjunction(&self, s: ProofStateId) -> TermId {
        self.states[s.index()].conj
    }

    /// `true` iff the state's conjunction is unsatisfiable — the state
    /// denotes unreachable configurations, covering any trace through it.
    pub fn is_bottom(&mut self, pool: &mut TermPool, s: ProofStateId) -> bool {
        if let Some(b) = self.states[s.index()].bottom {
            return b;
        }
        let conj = self.states[s.index()].conj;
        let b = check(pool, &[conj]).is_unsat();
        self.states[s.index()].bottom = Some(b);
        b
    }

    /// `true` iff `⋀Φ ⊨ post` (conservative under solver `Unknown`).
    pub fn implies_post(&mut self, pool: &mut TermPool, s: ProofStateId, post: TermId) -> bool {
        let conj = self.states[s.index()].conj;
        smt::entails(pool, conj, post)
    }

    /// Interns the proof state for a canonical (sorted, deduplicated)
    /// assertion-index set. Used by the parallel DFS workers to translate a
    /// visited-set key — which carries the pool-independent index set, not
    /// a `ProofStateId` — back into this automaton's state space.
    pub(crate) fn state_for_set(&mut self, pool: &mut TermPool, set: Vec<u32>) -> ProofStateId {
        self.intern_state(pool, set)
    }

    fn intern_state(&mut self, pool: &mut TermPool, set: Vec<u32>) -> ProofStateId {
        if let Some(&id) = self.state_interner.get(&set) {
            return id;
        }
        let conj = pool.and(set.iter().map(|&i| self.assertions[i as usize]));
        let id = ProofStateId(self.states.len() as u32);
        self.states.push(ProofState {
            set: set.clone(),
            conj,
            bottom: None,
        });
        self.state_interner.insert(set, id);
        id
    }

    /// The initial state for a given `init ∧ pre` formula: all assertions
    /// it entails. Extended incrementally as assertions are added.
    pub fn initial_state(&mut self, pool: &mut TermPool, init: TermId) -> ProofStateId {
        let (mut set, mut from) = match &self.initial_cache {
            Some((cached_init, s, upto)) if *cached_init == init => {
                if *upto == self.assertions.len() {
                    return *s;
                }
                (self.states[s.index()].set.clone(), *upto)
            }
            _ => (Vec::new(), 0),
        };
        if from < self.assertions.len() {
            // All entailment checks of this battery share the prefix
            // `init`; the scope front-loads its satisfiability check and
            // replays models, so most assertions cost an evaluation.
            // Under the CDCL engine the scope also keeps one warm solver:
            // the prefix is encoded once and each query push/pops an
            // assertion level, reusing the simplex basis and any theory
            // lemmas learned by earlier checks in the battery.
            let mut scope = AssertionScope::new(pool, &[init]);
            while from < self.assertions.len() {
                let a = self.assertions[from];
                self.stats.hoare_checks += 1;
                let neg = pool.not(a);
                if scope.check(pool, neg).is_unsat() {
                    set.push(from as u32);
                }
                from += 1;
            }
        }
        set.sort_unstable();
        let id = self.intern_state(pool, set);
        self.initial_cache = Some((init, id, self.assertions.len()));
        id
    }

    fn primed_var(&mut self, pool: &mut TermPool, v: VarId) -> VarId {
        if let Some(&p) = self.primed_vars.get(&v) {
            return p;
        }
        let p = pool.fresh_var(&format!("{}!post", pool.var_name(v)));
        self.primed_vars.insert(v, p);
        p
    }

    fn relation(&mut self, pool: &mut TermPool, program: &Program, l: LetterId) -> TermId {
        if let Some(r) = self.relations.get(&l) {
            return r.formula;
        }
        // `stmt` borrows `program`, which is disjoint from `self`/`pool`,
        // so no clone of the statement is needed.
        let stmt = program.statement(l);
        let primed: HashMap<VarId, VarId> = stmt
            .writes()
            .iter()
            .map(|&w| (w, self.primed_var(pool, w)))
            .collect();
        let (formula, _aux) = stmt.relation(pool, &primed);
        self.relations.insert(l, LetterRelation { formula, primed });
        formula
    }

    /// ψ with the letter's written variables renamed to their primed
    /// versions (memoized).
    fn rename_post(&mut self, pool: &mut TermPool, l: LetterId, psi: TermId) -> TermId {
        if let Some(&r) = self.renamed_post.get(&(l, psi)) {
            return r;
        }
        let map = &self.relations[&l].primed;
        let renamed = pool.rename(psi, &|v| map.get(&v).copied().unwrap_or(v));
        self.renamed_post.insert((l, psi), renamed);
        renamed
    }

    /// Is `{⋀Φ} a {ψ}` a valid Hoare triple? Conservative under `Unknown`.
    fn hoare_valid(
        &mut self,
        pool: &mut TermPool,
        program: &Program,
        phi_conj: TermId,
        l: LetterId,
        psi: TermId,
    ) -> bool {
        self.stats.hoare_checks += 1;
        let rel = self.relation(pool, program, l);
        let psi_primed = self.rename_post(pool, l, psi);
        let neg = pool.not(psi_primed);
        check(pool, &[phi_conj, rel, neg]).is_unsat()
    }

    /// Validity of the Hoare triple `{pre} l {post}`: no execution of
    /// statement `l` from a `pre`-state reaches a `¬post`-state. This is
    /// the exact solver query the proof automaton's transitions are built
    /// from, exposed so tests can validate interpolant chains (each
    /// consecutive pair of a sequence interpolant must form a valid triple
    /// with the trace statement between them).
    pub fn hoare_triple_valid(
        &mut self,
        pool: &mut TermPool,
        program: &Program,
        pre: TermId,
        l: LetterId,
        post: TermId,
    ) -> bool {
        self.hoare_valid(pool, program, pre, l, post)
    }

    /// `δ(Φ, a)`: the state of all assertions valid after executing `a`
    /// from `⋀Φ`. Memoized; extended when new assertions appear.
    pub fn step(
        &mut self,
        pool: &mut TermPool,
        program: &Program,
        s: ProofStateId,
        l: LetterId,
    ) -> ProofStateId {
        let total = self.assertions.len();
        let (mut set, mut from) = match self.transitions.get(&(s, l)) {
            Some(&(succ, upto)) => {
                if upto == total {
                    self.stats.cache_hits += 1;
                    return succ;
                }
                (self.states[succ.index()].set.clone(), upto)
            }
            None => (Vec::new(), 0),
        };
        let phi_conj = self.states[s.index()].conj;
        if from < total {
            // Every Hoare check of this battery shares the prefix
            // `⋀Φ ∧ rel(l)`; build it once and assert each ¬ψ′ under a
            // scope, so an unsatisfiable prefix or a reusable model
            // answers without a cold solve per assertion.
            let rel = self.relation(pool, program, l);
            let mut scope = AssertionScope::new(pool, &[phi_conj, rel]);
            while from < total {
                let psi = self.assertions[from];
                self.stats.hoare_checks += 1;
                let psi_primed = self.rename_post(pool, l, psi);
                let neg = pool.not(psi_primed);
                if scope.check(pool, neg).is_unsat() {
                    set.push(from as u32);
                }
                from += 1;
            }
        }
        set.sort_unstable();
        let succ = self.intern_state(pool, set);
        self.transitions.insert((s, l), (succ, total));
        succ
    }
}

impl Default for ProofAutomaton {
    fn default() -> Self {
        ProofAutomaton::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::bitset::BitSet;
    use automata::dfa::DfaBuilder;
    use program::stmt::{SimpleStmt, Statement};
    use program::thread::{Thread, ThreadId};
    use smt::linear::LinExpr;

    /// One thread: x := x + 1.
    fn incr_program(pool: &mut TermPool) -> Program {
        let mut b = Program::builder("incr");
        let x = pool.var("x");
        b.add_global(x, 0);
        let l = b.add_statement(Statement::simple(
            ThreadId(0),
            "x := x + 1",
            SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
            pool,
        ));
        let mut cfg = DfaBuilder::new();
        let q0 = cfg.add_state(false);
        let q1 = cfg.add_state(true);
        cfg.add_transition(q0, l, q1);
        b.add_thread(Thread::new("t", cfg.build(q0), BitSet::new(2)));
        b.build(pool)
    }

    #[test]
    fn initial_state_collects_entailed_assertions() {
        let mut pool = TermPool::new();
        let p = incr_program(&mut pool);
        let x = pool.var("x");
        let mut proof = ProofAutomaton::new();
        let ge0 = pool.ge_const(x, 0);
        let ge5 = pool.ge_const(x, 5);
        proof.add_assertion(ge0);
        proof.add_assertion(ge5);
        let init = p.init_formula(); // x = 0
        let s0 = proof.initial_state(&mut pool, init);
        assert_eq!(proof.assertion_set(s0), &[0], "x=0 ⊨ x≥0 but not x≥5");
    }

    #[test]
    fn step_propagates_hoare_triples() {
        let mut pool = TermPool::new();
        let p = incr_program(&mut pool);
        let x = pool.var("x");
        let mut proof = ProofAutomaton::new();
        let ge0 = pool.ge_const(x, 0);
        let ge1 = pool.ge_const(x, 1);
        proof.add_assertion(ge0);
        proof.add_assertion(ge1);
        let s0 = proof.initial_state(&mut pool, p.init_formula());
        let s1 = proof.step(&mut pool, &p, s0, LetterId(0));
        // After x := x + 1 from x = 0 (i.e. from {x≥0}): both x≥0 and x≥1.
        assert_eq!(proof.assertion_set(s1), &[0, 1]);
    }

    #[test]
    fn bottom_detection() {
        let mut pool = TermPool::new();
        let p = incr_program(&mut pool);
        let x = pool.var("x");
        let mut proof = ProofAutomaton::new();
        let ge1 = pool.ge_const(x, 1);
        let le0 = pool.le_const(x, 0);
        proof.add_assertion(ge1);
        proof.add_assertion(le0);
        let s0 = proof.initial_state(&mut pool, TermPool::TRUE);
        assert!(!proof.is_bottom(&mut pool, s0), "⊤ state is not bottom");
        // Build the contradictory state by hand.
        let s = proof.intern_state(&mut pool, vec![0, 1]);
        assert!(proof.is_bottom(&mut pool, s));
        let _ = p;
    }

    #[test]
    fn transitions_extend_when_assertions_grow() {
        let mut pool = TermPool::new();
        let p = incr_program(&mut pool);
        let x = pool.var("x");
        let mut proof = ProofAutomaton::new();
        let ge0 = pool.ge_const(x, 0);
        proof.add_assertion(ge0);
        let s0 = proof.initial_state(&mut pool, p.init_formula());
        let s1 = proof.step(&mut pool, &p, s0, LetterId(0));
        assert_eq!(proof.assertion_set(s1), &[0]);
        // Add x ≥ 1 and re-step: the memoized transition must be extended.
        let ge1 = pool.ge_const(x, 1);
        proof.add_assertion(ge1);
        let s0b = proof.initial_state(&mut pool, p.init_formula());
        let s1b = proof.step(&mut pool, &p, s0b, LetterId(0));
        assert_eq!(proof.assertion_set(s1b), &[0, 1]);
    }

    #[test]
    fn implies_post() {
        let mut pool = TermPool::new();
        let p = incr_program(&mut pool);
        let x = pool.var("x");
        let mut proof = ProofAutomaton::new();
        let ge0 = pool.ge_const(x, 0);
        let ge1 = pool.ge_const(x, 1);
        proof.add_assertion(ge0);
        proof.add_assertion(ge1);
        // From init x = 0 the initial state carries x ≥ 0; after the
        // increment both x ≥ 0 and x ≥ 1 hold.
        let s0 = proof.initial_state(&mut pool, p.init_formula());
        let s1 = proof.step(&mut pool, &p, s0, LetterId(0));
        let post_weak = pool.ge_const(x, 0);
        let post_strong = pool.ge_const(x, 2);
        assert!(proof.implies_post(&mut pool, s1, post_weak));
        assert!(!proof.implies_post(&mut pool, s1, post_strong));
    }

    #[test]
    fn duplicate_assertions_ignored() {
        let mut pool = TermPool::new();
        let x = pool.var("x");
        let mut proof = ProofAutomaton::new();
        let a = pool.ge_const(x, 0);
        assert!(proof.add_assertion(a));
        assert!(!proof.add_assertion(a));
        assert!(!proof.add_assertion(TermPool::TRUE));
        assert_eq!(proof.proof_size(), 1);
    }
}
