//! Finite automata substrate for the sound-sequentialization verifier.
//!
//! Every automaton manipulated by the verifier — thread control-flow graphs,
//! interleaving products, sleep set automata, π-reductions and Floyd/Hoare
//! proof automata — is an instance of the [`Dfa`] (or [`Nfa`]) type defined
//! here. The crate provides the standard constructions the paper relies on:
//!
//! * reachability and trimming,
//! * products and intersections,
//! * language emptiness, membership and inclusion,
//! * complement (over a totalized transition function),
//! * partition-refinement minimization,
//! * bounded language enumeration (used heavily by the property tests that
//!   certify soundness and minimality of reductions),
//! * DOT export for debugging.
//!
//! # Example
//!
//! ```
//! use automata::dfa::DfaBuilder;
//!
//! let mut b = DfaBuilder::new();
//! let q0 = b.add_state(false);
//! let q1 = b.add_state(true);
//! b.add_transition(q0, 'a', q1);
//! b.add_transition(q1, 'b', q0);
//! let dfa = b.build(q0);
//! assert!(dfa.accepts(['a'].iter().copied()));
//! assert!(dfa.accepts(['a', 'b', 'a'].iter().copied()));
//! assert!(!dfa.accepts(['b'].iter().copied()));
//! ```

pub mod bitset;
pub mod dfa;
pub mod dot;
pub mod explore;
pub mod minimize;
pub mod nfa;
pub mod ops;

pub use bitset::BitSet;
pub use dfa::{Dfa, DfaBuilder, StateId};
pub use nfa::{Nfa, NfaBuilder};
