//! **CPL** — a small concurrent imperative language, the frontend of the
//! verifier.
//!
//! The paper's tool analyzes C programs with pthread primitives; parsing C
//! is orthogonal to the contribution, so this reproduction uses a compact
//! language that preserves everything the algorithms care about: shared
//! integer/boolean state, per-thread control flow, `atomic` blocks,
//! `assume`/`assert`/`havoc`, nondeterministic branches and a fixed list
//! of spawned threads.
//!
//! ```text
//! var pendingIo: int = 1;
//! var stoppingFlag: bool = false;
//!
//! thread user {
//!     while (*) {
//!         atomic { assume !stoppingFlag; pendingIo := pendingIo + 1; }
//!         assert !stopped;
//!         atomic {
//!             pendingIo := pendingIo - 1;
//!             if (pendingIo == 0) { stoppingEvent := true; }
//!         }
//!     }
//! }
//!
//! spawn user * 3;
//! ```
//!
//! Pipeline: [`lexer`] → [`parser`] → [`typecheck`] → [`lower`] (to the
//! [`program::Program`] model). [`compile`] runs the whole pipeline.

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod print;
pub mod typecheck;

use smt::term::TermPool;

/// A compilation error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for Error {}

/// Parses, typechecks and lowers a CPL source file into a [`program::Program`].
///
/// # Errors
///
/// Returns the first lexical, syntactic, type or lowering error.
///
/// # Example
///
/// ```
/// use smt::term::TermPool;
///
/// let src = r#"
///     var x: int = 0;
///     thread inc { x := x + 1; assert x >= 1; }
///     spawn inc;
/// "#;
/// let mut pool = TermPool::new();
/// let program = cpl::compile(src, &mut pool).unwrap();
/// assert_eq!(program.num_threads(), 1);
/// ```
pub fn compile(source: &str, pool: &mut TermPool) -> Result<program::Program, Error> {
    let ast = parser::parse(source)?;
    typecheck::check(&ast)?;
    lower::lower(&ast, pool)
}
