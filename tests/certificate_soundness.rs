//! Certificate soundness battery: an unmutated certificate always passes
//! the independent checker, and every single-point mutation of a valid
//! certificate — flipped bound, dropped obligation, weakened or permuted
//! annotation, re-homed assertion, truncated trace, foreign fingerprint —
//! is rejected in `Full` mode.
//!
//! Verification runs once per fixture program (the expensive part); each
//! property case then re-compiles the program into a fresh pool, parses
//! the certificate text, mutates it, and re-checks — exactly the
//! store→serve path a mutated store record would take.

use proptest::prelude::*;
use seqver::bench_suite::{self, Expected};
use seqver::gemcutter::certify::{check_certificate, CertMutation, Certificate, CertifyMode};
use seqver::gemcutter::verify::{verify, Verdict, VerifierConfig};
use seqver::program::concurrent::Program;
use seqver::smt::TermPool;
use std::sync::OnceLock;

/// One verified fixture: CPL source plus its certificate, serialized.
struct Fixture {
    source: String,
    cert_text: String,
}

fn compile(source: &str, pool: &mut TermPool) -> Program {
    seqver::cpl::compile(source, pool).expect("fixture source compiles")
}

/// Verifies the first few small corpus programs of `expected` ground
/// truth under the default (certifying) sequential configuration and
/// returns their serialized certificates.
fn fixtures(expected: Expected, want: usize) -> Vec<Fixture> {
    let mut out = Vec::new();
    for b in bench_suite::all() {
        if b.expected != expected || b.name.ends_with("-3") || b.name.ends_with("-4") {
            continue;
        }
        let mut pool = TermPool::new();
        let program = compile(&b.source, &mut pool);
        let outcome = verify(&mut pool, &program, &VerifierConfig::gemcutter_seq());
        match (&outcome.verdict, expected) {
            (Verdict::Correct, Expected::Safe) | (Verdict::Incorrect { .. }, Expected::Unsafe) => {}
            other => panic!("{}: unexpected verdict {other:?}", b.name),
        }
        let cert = outcome
            .certificate
            .unwrap_or_else(|| panic!("{}: conclusive verdict without a certificate", b.name));
        let report = check_certificate(&mut pool, &program, &cert, CertifyMode::Full);
        assert!(
            report.ok,
            "{}: fresh certificate rejected: {report}",
            b.name
        );
        out.push(Fixture {
            source: b.source.clone(),
            cert_text: cert.to_text(),
        });
        if out.len() == want {
            break;
        }
    }
    assert_eq!(out.len(), want, "not enough {expected:?} corpus fixtures");
    out
}

fn safe_fixtures() -> &'static [Fixture] {
    static FIX: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIX.get_or_init(|| fixtures(Expected::Safe, 2))
}

fn unsafe_fixtures() -> &'static [Fixture] {
    static FIX: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIX.get_or_init(|| fixtures(Expected::Unsafe, 2))
}

/// Parses a fixture back and re-checks it in a fresh pool, optionally
/// after mutating. Returns `None` when the mutation had no applicable
/// site (the certificate is untouched then).
fn check_mutated(
    fixture: &Fixture,
    mutation: Option<CertMutation>,
    salt: u64,
    mode: CertifyMode,
) -> Option<bool> {
    let mut pool = TermPool::new();
    let program = compile(&fixture.source, &mut pool);
    let mut cert = Certificate::parse(&fixture.cert_text).expect("fixture certificate parses");
    if let Some(m) = mutation {
        if !m.apply(&mut cert, salt) {
            return None;
        }
    }
    Some(check_certificate(&mut pool, &program, &cert, mode).ok)
}

#[test]
fn unmutated_certificates_pass_in_every_mode() {
    for fixture in safe_fixtures().iter().chain(unsafe_fixtures()) {
        for mode in [
            CertifyMode::Structural,
            CertifyMode::Sample,
            CertifyMode::Full,
        ] {
            assert_eq!(
                check_mutated(fixture, None, 0, mode),
                Some(true),
                "clean certificate rejected in {} mode",
                mode.name()
            );
        }
    }
}

#[test]
fn certificate_text_roundtrips_bit_identically() {
    for fixture in safe_fixtures().iter().chain(unsafe_fixtures()) {
        let cert = Certificate::parse(&fixture.cert_text).expect("parses");
        assert_eq!(cert.to_text(), fixture.cert_text);
    }
}

/// The mutations applicable to a CORRECT (proof) certificate.
const PROOF_MUTATIONS: [CertMutation; 6] = [
    CertMutation::WeakenAnnotation,
    CertMutation::DropObligation,
    CertMutation::RehomeAssertion,
    CertMutation::FlipBound,
    CertMutation::PermuteAnnotation,
    CertMutation::ForeignFingerprint,
];

/// The mutations applicable to a BUG (trace) certificate.
const TRACE_MUTATIONS: [CertMutation; 2] = [
    CertMutation::TruncateTrace,
    CertMutation::ForeignFingerprint,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_proof_mutation_is_rejected(
        which in 0usize..2,
        mutation in proptest::sample::select(PROOF_MUTATIONS.to_vec()),
        salt in any::<u64>(),
    ) {
        let fixture = &safe_fixtures()[which];
        if let Some(ok) = check_mutated(fixture, Some(mutation), salt, CertifyMode::Full) {
            prop_assert!(!ok, "mutation {} (salt {salt}) survived the checker", mutation.name());
        }
    }

    #[test]
    fn every_trace_mutation_is_rejected(
        which in 0usize..2,
        mutation in proptest::sample::select(TRACE_MUTATIONS.to_vec()),
        salt in any::<u64>(),
    ) {
        let fixture = &unsafe_fixtures()[which];
        if let Some(ok) = check_mutated(fixture, Some(mutation), salt, CertifyMode::Full) {
            prop_assert!(!ok, "mutation {} (salt {salt}) survived the checker", mutation.name());
        }
    }
}

/// Beyond sampling: every injector-supported mutation must also be caught
/// deterministically with salt 0 — the exact configuration the serve-side
/// fault injector uses.
#[test]
fn injector_kinds_are_caught_at_salt_zero() {
    for kind in CertMutation::injector_kinds() {
        let mut caught_somewhere = false;
        for fixture in safe_fixtures().iter().chain(unsafe_fixtures()) {
            // `None` means the kind has no applicable site on this
            // certificate shape.
            if let Some(ok) = check_mutated(fixture, Some(kind), 0, CertifyMode::Full) {
                assert!(!ok, "injector mutation {} survived", kind.name());
                caught_somewhere = true;
            }
        }
        assert!(
            caught_somewhere,
            "injector mutation {} applied nowhere",
            kind.name()
        );
    }
}
