//! Proof-store corruption battery: the persistent store behind
//! `seqver serve` must load *leniently* no matter what happened to the
//! file — a flipped bit, a truncation, an empty file or a foreign format
//! may cost warm starts, but can never panic the daemon and can never
//! smuggle in a record (or query-cache entry) that differs from one this
//! build wrote. The properties here drive randomly generated stores
//! through random byte-level damage and check exactly that — first
//! against the snapshot file, then (the torn-tail battery) against the
//! write-ahead journal: flips, truncations, duplicated frames and
//! stale-sequence frames must degrade to replaying the valid prefix,
//! never to a panic and never to a corrupted surviving record.

use gemcutter::snapshot::journal_frame;
use proptest::collection::vec;
use proptest::prelude::*;
use serve::store::{journal_path, ProofStore, StoreRecord, StoredVerdict};
use smt::linear::Rel;
use smt::qcache::CachedVerdict;
use smt::transfer::ExportedTerm;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn atom() -> SBox<ExportedTerm> {
    (
        vec(("[a-z]{1,4}", prop_oneof![-9i128..0, 1i128..9]), 0..3),
        -1000i128..1000,
        prop_oneof![Just(Rel::Le0), Just(Rel::Eq0)],
    )
        .prop_map(|(coeffs, constant, rel)| ExportedTerm::Atom {
            coeffs,
            constant,
            rel,
        })
}

/// Assertions as the harvester produces them: atoms, shallow conjunctions
/// and disjunctions, and the boolean constants.
fn term() -> SBox<ExportedTerm> {
    prop_oneof![
        atom(),
        atom(),
        Just(ExportedTerm::True),
        Just(ExportedTerm::False),
        vec(atom(), 0..3).prop_map(ExportedTerm::And),
        vec(atom(), 0..3).prop_map(ExportedTerm::Or),
    ]
}

fn verdict() -> SBox<StoredVerdict> {
    prop_oneof![
        Just(StoredVerdict::Correct).boxed(),
        vec(any::<u32>(), 0..6).prop_map(StoredVerdict::Incorrect),
    ]
}

fn record() -> SBox<StoreRecord> {
    (
        any::<u64>(),
        "[a-z][a-z0-9-]{0,10}",
        verdict(),
        0u64..10_000,
        vec(term(), 0..4),
    )
        .prop_map(
            |(fingerprint, name, verdict, rounds, assertions)| StoreRecord {
                fingerprint,
                name,
                verdict,
                rounds,
                assertions,
                certificate: None,
            },
        )
}

fn cached_verdict() -> SBox<CachedVerdict> {
    prop_oneof![
        Just(CachedVerdict::Unsat).boxed(),
        vec(("[a-z]{1,4}", -50i128..50), 0..3).prop_map(CachedVerdict::Sat),
    ]
}

fn store() -> SBox<ProofStore> {
    (vec(record(), 0..5), vec((atom(), cached_verdict()), 0..4)).prop_map(|(records, qcache)| {
        let mut store = ProofStore::in_memory();
        for r in records {
            store.insert(r);
        }
        store.set_qcache_entries(qcache);
        store
    })
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Every surviving record and query-cache entry must be byte-for-byte one
/// the original store held — lenient loading may *drop*, never *invent or
/// alter*.
fn assert_no_wrong_content(original: &ProofStore, loaded: &ProofStore) {
    for r in loaded.records() {
        let source = original.lookup(r.fingerprint);
        assert_eq!(
            source,
            Some(r),
            "record {:016x} survived corruption with altered content",
            r.fingerprint
        );
    }
    for entry in loaded.qcache_entries() {
        assert!(
            original.qcache_entries().contains(entry),
            "qcache entry survived corruption with altered content: {entry:?}"
        );
    }
}

/// A unique scratch directory per call (the suite runs in parallel).
fn scratch_dir() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "seqver-journal-prop-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Lays a store out on disk the way a crashed daemon leaves it: `base`
/// records folded into the snapshot, `extras` only as journal frames
/// (sequence numbers 1..). Returns the store path and a reference store
/// holding everything, against which recovery is judged.
///
/// Fingerprints are reassigned to be unique so that "which records
/// survived" is well defined (random fingerprints can collide once the
/// shrinker drives them toward zero).
fn write_store_with_journal(
    dir: &Path,
    base: &mut [StoreRecord],
    extras: &mut [StoreRecord],
) -> (PathBuf, ProofStore) {
    for (i, r) in base.iter_mut().enumerate() {
        r.fingerprint = 0x8000_0000_0000_0000 | i as u64;
    }
    for (i, r) in extras.iter_mut().enumerate() {
        r.fingerprint = 0x4000_0000_0000_0000 | i as u64;
    }
    let path = dir.join("proofs.store");
    let (mut on_disk, warnings) = ProofStore::open(&path);
    assert!(warnings.is_empty(), "{warnings:?}");
    for r in base.iter() {
        on_disk.insert(r.clone());
    }
    on_disk.flush().unwrap();
    drop(on_disk);
    let mut journal = String::new();
    for (i, r) in extras.iter().enumerate() {
        journal.push_str(&journal_frame(i as u64 + 1, &r.to_text()));
    }
    std::fs::write(journal_path(&path), journal).unwrap();
    let mut reference = ProofStore::in_memory();
    for r in base.iter().chain(extras.iter()) {
        reference.insert(r.clone());
    }
    (path, reference)
}

/// The extras that survived `loaded` must be a *prefix* of the appended
/// order: journal recovery truncates at the first bad frame, it never
/// resurrects a record from beyond the tear.
fn assert_extras_are_a_prefix(loaded: &ProofStore, extras: &[StoreRecord]) {
    let survived: Vec<bool> = extras
        .iter()
        .map(|r| loaded.lookup(r.fingerprint).is_some())
        .collect();
    let prefix_len = survived.iter().take_while(|&&s| s).count();
    assert!(
        survived.iter().skip(prefix_len).all(|&s| !s),
        "journal recovery kept a record from beyond the tear: {survived:?}"
    );
}

/// Loads possibly-invalid bytes the way the daemon does: valid UTF-8 goes
/// straight to the parser; invalid UTF-8 goes through a real file and
/// [`ProofStore::open`], which must degrade to a cold start, not panic.
fn load_damaged(bytes: &[u8]) -> (ProofStore, Vec<String>) {
    match std::str::from_utf8(bytes) {
        Ok(text) => ProofStore::parse(text),
        Err(_) => {
            static N: AtomicUsize = AtomicUsize::new(0);
            let path = std::env::temp_dir().join(format!(
                "seqver-corrupt-{}-{}.store",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::write(&path, bytes).unwrap();
            let loaded = ProofStore::open(&path);
            let _ = std::fs::remove_file(&path);
            loaded
        }
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An undamaged store round-trips bit-identically, with no warnings.
    #[test]
    fn round_trip_is_identity(store in store()) {
        let (reparsed, warnings) = ProofStore::parse(&store.to_text());
        prop_assert!(warnings.is_empty(), "clean store warned: {warnings:?}");
        prop_assert_eq!(reparsed.records(), store.records());
        prop_assert_eq!(reparsed.qcache_entries(), store.qcache_entries());
    }

    /// A single flipped byte anywhere in the file never panics the loader
    /// and never yields a record that differs from an original. (FNV-1a is
    /// not cryptographic, but a one-byte substitution cannot preserve it.)
    #[test]
    fn byte_flip_never_yields_wrong_content(
        store in store(),
        position in any::<usize>(),
        replacement in any::<u8>(),
    ) {
        let mut bytes = store.to_text().into_bytes();
        let at = position % bytes.len();
        if bytes[at] != replacement {
            bytes[at] = replacement;
            let (loaded, _warnings) = load_damaged(&bytes);
            assert_no_wrong_content(&store, &loaded);
        }
    }

    /// A burst of random damage (several flipped bytes) is no worse: still
    /// no panic, still nothing invented.
    #[test]
    fn multi_byte_damage_never_yields_wrong_content(
        store in store(),
        flips in vec((any::<usize>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = store.to_text().into_bytes();
        for (position, replacement) in flips {
            let at = position % bytes.len();
            bytes[at] = replacement;
        }
        let (loaded, _warnings) = load_damaged(&bytes);
        assert_no_wrong_content(&store, &loaded);
    }

    /// Truncation at any byte boundary loads leniently; when the `end`
    /// completeness marker is gone the store cold-starts outright (the
    /// atomic writer never produces such a file, so it is not trusted).
    #[test]
    fn truncation_degrades_to_cold_start(
        store in store(),
        cut in any::<usize>(),
    ) {
        let text = store.to_text();
        let mut at = cut % (text.len() + 1);
        while !text.is_char_boundary(at) {
            at -= 1;
        }
        let truncated = &text[..at];
        let (loaded, warnings) = ProofStore::parse(truncated);
        assert_no_wrong_content(&store, &loaded);
        if !truncated.lines().any(|l| l == "end") {
            prop_assert!(
                loaded.is_empty() && loaded.qcache_entries().is_empty(),
                "store without its completeness marker must cold-start"
            );
            prop_assert!(!warnings.is_empty(), "cold start must be explained");
        }
    }

    /// Foreign or future files never panic and never contribute records.
    #[test]
    fn foreign_files_cold_start(text in "[ -~\n]{0,200}") {
        if !text.starts_with("seqver-store v") {
            let (loaded, _warnings) = ProofStore::parse(&text);
            prop_assert!(loaded.is_empty());
            prop_assert!(loaded.qcache_entries().is_empty());
        }
    }

    /// An undamaged snapshot + journal pair replays to exactly the union:
    /// every folded record, every journaled record, nothing else.
    #[test]
    fn journal_replay_is_identity(
        base in vec(record(), 0..3),
        extras in vec(record(), 1..5),
    ) {
        let (mut base, mut extras) = (base, extras);
        let dir = scratch_dir();
        let (path, reference) = write_store_with_journal(&dir, &mut base, &mut extras);
        let (loaded, warnings) = ProofStore::open(&path);
        std::fs::remove_dir_all(&dir).unwrap();
        prop_assert!(warnings.is_empty(), "{warnings:?}");
        prop_assert_eq!(loaded.records(), reference.records());
    }

    /// One flipped byte anywhere in the journal: never a panic, never an
    /// altered surviving record, the snapshot's records all intact, and
    /// the surviving journaled records an exact prefix of append order.
    #[test]
    fn journal_byte_flip_recovers_a_clean_prefix(
        base in vec(record(), 0..3),
        extras in vec(record(), 1..5),
        position in any::<usize>(),
        replacement in any::<u8>(),
    ) {
        let (mut base, mut extras) = (base, extras);
        let dir = scratch_dir();
        let (path, reference) = write_store_with_journal(&dir, &mut base, &mut extras);
        let wal = journal_path(&path);
        let mut bytes = std::fs::read(&wal).unwrap();
        let at = position % bytes.len();
        let flipped = bytes[at] != replacement;
        bytes[at] = replacement;
        std::fs::write(&wal, &bytes).unwrap();
        let (loaded, _warnings) = ProofStore::open(&path);
        std::fs::remove_dir_all(&dir).unwrap();
        if flipped {
            assert_no_wrong_content(&reference, &loaded);
            for r in base.iter() {
                prop_assert_eq!(loaded.lookup(r.fingerprint), Some(r),
                    "snapshot record lost to journal damage");
            }
            assert_extras_are_a_prefix(&loaded, &extras);
        }
    }

    /// Truncating the journal at any byte boundary replays the surviving
    /// whole-frame prefix and drops the tail — the crash the journal
    /// exists to absorb.
    #[test]
    fn journal_truncation_replays_the_prefix(
        base in vec(record(), 0..3),
        extras in vec(record(), 1..5),
        cut in any::<usize>(),
    ) {
        let (mut base, mut extras) = (base, extras);
        let dir = scratch_dir();
        let (path, reference) = write_store_with_journal(&dir, &mut base, &mut extras);
        let wal = journal_path(&path);
        let bytes = std::fs::read(&wal).unwrap();
        let keep = cut % (bytes.len() + 1);
        std::fs::write(&wal, &bytes[..keep]).unwrap();
        let (loaded, _warnings) = ProofStore::open(&path);
        // Recovery physically truncates the torn tail, so what is left on
        // disk must itself be a whole-frame prefix no longer than the cut.
        let after = std::fs::metadata(&wal).unwrap().len() as usize;
        std::fs::remove_dir_all(&dir).unwrap();
        prop_assert!(after <= keep, "recovery grew the journal: {after} > {keep}");
        assert_no_wrong_content(&reference, &loaded);
        for r in base.iter() {
            prop_assert_eq!(loaded.lookup(r.fingerprint), Some(r));
        }
        assert_extras_are_a_prefix(&loaded, &extras);
    }

    /// Duplicated frames (a batch re-written after a crashed compaction)
    /// and stale-sequence frames are skipped, not double-applied: replay
    /// yields exactly the reference store, with the skips explained.
    #[test]
    fn duplicated_and_stale_frames_are_skipped(
        base in vec(record(), 0..3),
        extras in vec(record(), 1..5),
    ) {
        let (mut base, mut extras) = (base, extras);
        let dir = scratch_dir();
        let (path, reference) = write_store_with_journal(&dir, &mut base, &mut extras);
        let wal = journal_path(&path);
        let mut journal = String::from_utf8(std::fs::read(&wal).unwrap()).unwrap();
        // A stale frame below every live sequence number...
        journal.push_str(&journal_frame(0, "record: 0 stale 0 0\n"));
        // ...and the whole batch duplicated at its original numbers.
        for (i, r) in extras.iter().enumerate() {
            journal.push_str(&journal_frame(i as u64 + 1, &r.to_text()));
        }
        std::fs::write(&wal, journal).unwrap();
        let (loaded, warnings) = ProofStore::open(&path);
        std::fs::remove_dir_all(&dir).unwrap();
        prop_assert_eq!(loaded.records(), reference.records());
        prop_assert!(
            warnings.iter().any(|w| w.contains("stale")),
            "skipped frames must be explained: {:?}", warnings
        );
    }

    /// The full disk path — durable flush, reopen — is also an identity.
    #[test]
    fn flush_and_reopen_is_identity(store in store()) {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "seqver-store-prop-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("proofs.store");
        let (mut on_disk, warnings) = ProofStore::open(&path);
        prop_assert!(warnings.is_empty());
        for r in store.records() {
            on_disk.insert(r.clone());
        }
        on_disk.set_qcache_entries(store.qcache_entries().to_vec());
        on_disk.flush().unwrap();
        let (reopened, warnings) = ProofStore::open(&path);
        std::fs::remove_dir_all(&dir).unwrap();
        prop_assert!(warnings.is_empty(), "{warnings:?}");
        prop_assert_eq!(reopened.records(), store.records());
        prop_assert_eq!(reopened.qcache_entries(), store.qcache_entries());
    }
}
