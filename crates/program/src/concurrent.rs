//! The concurrent program `P = T1 ∥ … ∥ Tn` and its interleaving product.
//!
//! The interleaving product automaton (§3 of the paper) is *never built
//! eagerly* by the verifier — its size is exponential in the number of
//! threads. [`Program`] exposes on-demand navigation ([`Program::step`],
//! [`Program::enabled`]); the explicit construction
//! ([`Program::explicit_product`]) exists for tests and for the
//! language-theoretic experiments of §4.

use crate::stmt::Statement;
pub use crate::thread::LetterId;
use crate::thread::{Thread, ThreadId};
use automata::dfa::{Dfa, DfaBuilder, StateId};
use smt::linear::VarId;
use smt::term::{TermId, TermPool};
use std::collections::HashMap;
use std::fmt;

/// A state of the interleaving product: one control location per thread.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProductState(pub Vec<StateId>);

impl ProductState {
    /// The location of thread `t`.
    pub fn location(&self, t: ThreadId) -> StateId {
        self.0[t.index()]
    }
}

impl fmt::Debug for ProductState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", l.index())?;
        }
        write!(f, "⟩")
    }
}

/// Which words of the product count as accepted — i.e. what the verifier
/// must prove about them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Spec {
    /// Accept when *all* threads are at their exit; prove `post` there
    /// (given `pre` initially). This is the paper's formal setting.
    PrePost,
    /// Accept when the given thread is at one of its error locations;
    /// prove such states unreachable. This is the `assert` setting used by
    /// the benchmarks (footnote 4: one analysis per asserting thread).
    ErrorOf(ThreadId),
}

/// A concurrent program: threads, the global statement alphabet, initial
/// condition and pre/post specification.
#[derive(Clone, Debug)]
pub struct Program {
    threads: Vec<Thread>,
    statements: Vec<Statement>,
    globals: Vec<VarId>,
    init_formula: TermId,
    init_values: HashMap<VarId, i128>,
    pre: TermId,
    post: TermId,
    name: String,
}

impl Program {
    /// Starts building a program.
    pub fn builder(name: &str) -> ProgramBuilder {
        ProgramBuilder {
            name: name.to_owned(),
            threads: Vec::new(),
            statements: Vec::new(),
            globals: Vec::new(),
            init_formula: TermPool::TRUE,
            init_values: HashMap::new(),
            init_constraints: Vec::new(),
            pre: TermPool::TRUE,
            post: TermPool::TRUE,
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The threads.
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// The thread with id `t`.
    pub fn thread(&self, t: ThreadId) -> &Thread {
        &self.threads[t.index()]
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The statement behind letter `l`.
    pub fn statement(&self, l: LetterId) -> &Statement {
        &self.statements[l.index()]
    }

    /// The owning thread of letter `l`.
    pub fn thread_of(&self, l: LetterId) -> ThreadId {
        self.statements[l.index()].thread()
    }

    /// Size of the global alphabet.
    pub fn num_letters(&self) -> usize {
        self.statements.len()
    }

    /// All letters.
    pub fn letters(&self) -> impl Iterator<Item = LetterId> {
        (0..self.statements.len() as u32).map(LetterId)
    }

    /// The global program variables.
    pub fn globals(&self) -> &[VarId] {
        &self.globals
    }

    /// The initial condition as a formula.
    pub fn init_formula(&self) -> TermId {
        self.init_formula
    }

    /// Concrete initial values (for the interpreter); variables initialized
    /// nondeterministically are absent.
    pub fn init_values(&self) -> &HashMap<VarId, i128> {
        &self.init_values
    }

    /// The precondition.
    pub fn pre(&self) -> TermId {
        self.pre
    }

    /// The postcondition.
    pub fn post(&self) -> TermId {
        self.post
    }

    /// `size(P) = Σ |Ti|` (§3).
    pub fn size(&self) -> usize {
        self.threads.iter().map(Thread::size).sum()
    }

    /// The initial product state.
    pub fn initial_state(&self) -> ProductState {
        ProductState(self.threads.iter().map(Thread::entry).collect())
    }

    /// `δ(q, l)` of the interleaving product.
    pub fn step(&self, q: &ProductState, l: LetterId) -> Option<ProductState> {
        let t = self.thread_of(l);
        let next = self.threads[t.index()].cfg().step(q.location(t), l)?;
        let mut locs = q.0.clone();
        locs[t.index()] = next;
        Some(ProductState(locs))
    }

    /// Letters enabled at `q`, in increasing letter order.
    pub fn enabled(&self, q: &ProductState) -> Vec<LetterId> {
        let mut out: Vec<LetterId> = self
            .threads
            .iter()
            .enumerate()
            .flat_map(|(i, t)| t.cfg().enabled(q.location(ThreadId(i as u32))))
            .collect();
        out.sort_unstable();
        out
    }

    /// Letters of thread `t` enabled at `q`.
    pub fn enabled_in_thread(&self, q: &ProductState, t: ThreadId) -> Vec<LetterId> {
        self.threads[t.index()]
            .cfg()
            .enabled(q.location(t))
            .collect()
    }

    /// Whether `q` is accepting for `spec`.
    pub fn is_accepting(&self, q: &ProductState, spec: Spec) -> bool {
        match spec {
            Spec::PrePost => self
                .threads
                .iter()
                .enumerate()
                .all(|(i, t)| t.is_exit(q.location(ThreadId(i as u32)))),
            Spec::ErrorOf(t) => self.threads[t.index()].is_error(q.location(t)),
        }
    }

    /// The threads that contain asserts (error locations).
    pub fn asserting_threads(&self) -> Vec<ThreadId> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.has_error_locations())
            .map(|(i, _)| ThreadId(i as u32))
            .collect()
    }

    /// Runs a word through the product from the initial state.
    pub fn run(&self, word: &[LetterId]) -> Option<ProductState> {
        let mut q = self.initial_state();
        for &l in word {
            q = self.step(&q, l)?;
        }
        Some(q)
    }

    /// Builds the explicit interleaving product DFA for `spec`.
    ///
    /// Exponential in the number of threads — intended for tests and the
    /// reduction-size experiments only.
    pub fn explicit_product(&self, spec: Spec) -> Dfa<LetterId> {
        let mut builder = DfaBuilder::new();
        let mut ids: HashMap<ProductState, StateId> = HashMap::new();
        let init = self.initial_state();
        let init_id = builder.add_state(self.is_accepting(&init, spec));
        ids.insert(init.clone(), init_id);
        let mut work = vec![init];
        while let Some(q) = work.pop() {
            let from = ids[&q];
            for l in self.enabled(&q) {
                let next = self.step(&q, l).expect("enabled letter steps");
                let to = match ids.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = builder.add_state(self.is_accepting(&next, spec));
                        ids.insert(next.clone(), id);
                        work.push(next);
                        id
                    }
                };
                builder.add_transition(from, l, to);
            }
        }
        builder.build(init_id)
    }
}

/// Incremental constructor for [`Program`]; validates thread/letter
/// consistency at [`ProgramBuilder::build`].
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    name: String,
    threads: Vec<Thread>,
    statements: Vec<Statement>,
    globals: Vec<VarId>,
    init_formula: TermId,
    init_values: HashMap<VarId, i128>,
    init_constraints: Vec<TermId>,
    pre: TermId,
    post: TermId,
}

impl ProgramBuilder {
    /// Registers a statement, returning its letter.
    pub fn add_statement(&mut self, stmt: Statement) -> LetterId {
        self.statements.push(stmt);
        LetterId(self.statements.len() as u32 - 1)
    }

    /// Adds a thread (must be added in `ThreadId` order).
    pub fn add_thread(&mut self, thread: Thread) -> ThreadId {
        self.threads.push(thread);
        ThreadId(self.threads.len() as u32 - 1)
    }

    /// Declares a global variable with a concrete initial value.
    pub fn add_global(&mut self, v: VarId, init: i128) {
        self.globals.push(v);
        self.init_values.insert(v, init);
    }

    /// Declares a global variable with a nondeterministic initial value
    /// (unconstrained by the initial condition).
    pub fn add_global_nondet(&mut self, v: VarId) {
        self.globals.push(v);
    }

    /// Adds an extra conjunct to the initial condition (e.g. `0 ≤ b ≤ 1`
    /// for a nondeterministically initialized boolean).
    pub fn add_init_constraint(&mut self, constraint: TermId) {
        self.init_constraints.push(constraint);
    }

    /// Sets the pre/postcondition pair.
    pub fn set_pre_post(&mut self, pre: TermId, post: TermId) {
        self.pre = pre;
        self.post = post;
    }

    /// Finalizes the program, computing the initial-condition formula.
    ///
    /// # Panics
    ///
    /// Panics if a thread's CFG uses a letter owned by another thread or an
    /// out-of-range letter.
    pub fn build(mut self, pool: &mut TermPool) -> Program {
        for (i, t) in self.threads.iter().enumerate() {
            for l in t.letters() {
                assert!(
                    l.index() < self.statements.len(),
                    "thread {} uses unknown letter {l:?}",
                    t.name()
                );
                assert_eq!(
                    self.statements[l.index()].thread(),
                    ThreadId(i as u32),
                    "thread {} uses a letter owned by another thread",
                    t.name()
                );
            }
        }
        let mut conjuncts: Vec<TermId> = self
            .globals
            .iter()
            .filter_map(|v| self.init_values.get(v).map(|&k| (*v, k)))
            .map(|(v, k)| pool.eq_const(v, k))
            .collect();
        conjuncts.extend(self.init_constraints.iter().copied());
        self.init_formula = pool.and(conjuncts);
        Program {
            threads: self.threads,
            statements: self.statements,
            globals: self.globals,
            init_formula: self.init_formula,
            init_values: self.init_values,
            pre: self.pre,
            post: self.post,
            name: self.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::SimpleStmt;
    use automata::bitset::BitSet;
    use automata::dfa::DfaBuilder;
    use smt::linear::LinExpr;

    /// Two threads, each a single increment of its own counter.
    pub(crate) fn two_increments(pool: &mut TermPool) -> Program {
        let mut b = Program::builder("two-increments");
        let x = pool.var("x");
        let y = pool.var("y");
        b.add_global(x, 0);
        b.add_global(y, 0);
        let lx = b.add_statement(Statement::simple(
            ThreadId(0),
            "x := x + 1",
            SimpleStmt::Assign(x, LinExpr::var(x).add(&LinExpr::constant(1))),
            pool,
        ));
        let ly = b.add_statement(Statement::simple(
            ThreadId(1),
            "y := y + 1",
            SimpleStmt::Assign(y, LinExpr::var(y).add(&LinExpr::constant(1))),
            pool,
        ));
        for (l, _) in [(lx, "t0"), (ly, "t1")] {
            let mut cfg = DfaBuilder::new();
            let entry = cfg.add_state(false);
            let exit = cfg.add_state(true);
            cfg.add_transition(entry, l, exit);
            b.add_thread(Thread::new("inc", cfg.build(entry), BitSet::new(2)));
        }
        b.build(pool)
    }

    #[test]
    fn product_navigation() {
        let mut pool = TermPool::new();
        let p = two_increments(&mut pool);
        assert_eq!(p.num_threads(), 2);
        assert_eq!(p.size(), 4);
        let q0 = p.initial_state();
        assert_eq!(p.enabled(&q0), vec![LetterId(0), LetterId(1)]);
        let q1 = p.step(&q0, LetterId(0)).unwrap();
        assert_eq!(p.enabled(&q1), vec![LetterId(1)]);
        let q2 = p.step(&q1, LetterId(1)).unwrap();
        assert!(p.is_accepting(&q2, Spec::PrePost));
        assert!(!p.is_accepting(&q1, Spec::PrePost));
        assert!(p.step(&q2, LetterId(0)).is_none());
    }

    #[test]
    fn run_words() {
        let mut pool = TermPool::new();
        let p = two_increments(&mut pool);
        assert!(p.run(&[LetterId(0), LetterId(1)]).is_some());
        assert!(p.run(&[LetterId(1), LetterId(0)]).is_some());
        assert!(p.run(&[LetterId(0), LetterId(0)]).is_none());
    }

    #[test]
    fn explicit_product_is_diamond() {
        let mut pool = TermPool::new();
        let p = two_increments(&mut pool);
        let d = p.explicit_product(Spec::PrePost);
        assert_eq!(d.num_states(), 4);
        assert!(d.accepts([LetterId(0), LetterId(1)].iter().copied()));
        assert!(d.accepts([LetterId(1), LetterId(0)].iter().copied()));
        assert!(!d.accepts([LetterId(0)].iter().copied()));
    }

    #[test]
    fn init_formula_from_values() {
        let mut pool = TermPool::new();
        let p = two_increments(&mut pool);
        let x = pool.var("x");
        let expected = pool.eq_const(x, 0);
        assert!(smt::entails(&mut pool, p.init_formula(), expected));
    }

    #[test]
    #[should_panic(expected = "owned by another thread")]
    fn wrong_letter_ownership_panics() {
        let mut pool = TermPool::new();
        let mut b = Program::builder("bad");
        let x = pool.var("x");
        let l = b.add_statement(Statement::simple(
            ThreadId(1), // claims thread 1
            "x := 0",
            SimpleStmt::Assign(x, LinExpr::constant(0)),
            &pool,
        ));
        let mut cfg = DfaBuilder::new();
        let entry = cfg.add_state(false);
        let exit = cfg.add_state(true);
        cfg.add_transition(entry, l, exit);
        // ... but is used by thread 0.
        b.add_thread(Thread::new("t", cfg.build(entry), BitSet::new(2)));
        let _ = b.build(&mut pool);
    }
}
