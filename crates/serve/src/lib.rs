//! Verification as a service: the `seqver serve` daemon and everything it
//! speaks and persists.
//!
//! The one-shot CLI rebuilds its proof library from nothing on every
//! invocation. This crate turns the verifier into a long-running service
//! whose proof state survives restarts and whose per-request failures stay
//! contained — the serving-side analogue of the proof-transfer ideas the
//! supervisor already uses *within* a process:
//!
//! * [`proto`] — the length-prefixed text wire protocol: framing with
//!   slow-loris/oversize/malformed-input defenses, request and response
//!   grammars.
//! * [`store`] — the crash-safe persistent proof store: per-record
//!   checksums over program fingerprints, harvested Floyd/Hoare assertions
//!   and definitive verdicts, plus exported query-cache entries; written
//!   atomically and durably after every request, loaded leniently so a
//!   corrupted file degrades to a cold start, never a panic or a wrong
//!   assertion.
//! * [`server`] — the daemon: bounded-concurrency worker pool over a
//!   `TcpListener`, admission control with explicit `busy` shedding,
//!   panic quarantine, deadline/step budgets per request, and
//!   SIGINT/SIGTERM draining.
//! * [`client`] — a small blocking client used by `seqver submit`, the
//!   benches and the tests.
//!
//! Everything is `std`-only: sockets are `std::net`, concurrency is the
//! worker-thread idiom of `gemcutter::portfolio`, persistence rides on
//! `gemcutter::snapshot`'s atomic durable writes.

pub mod client;
pub mod proto;
pub mod server;
pub mod store;
