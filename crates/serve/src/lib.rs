//! Verification as a service: the `seqver serve` daemon and everything it
//! speaks and persists.
//!
//! The one-shot CLI rebuilds its proof library from nothing on every
//! invocation. This crate turns the verifier into a long-running service
//! whose proof state survives restarts and whose per-request failures stay
//! contained — the serving-side analogue of the proof-transfer ideas the
//! supervisor already uses *within* a process:
//!
//! * [`proto`] — the length-prefixed text wire protocol: framing with
//!   slow-loris/oversize/malformed-input defenses, request and response
//!   grammars.
//! * [`store`] — the crash-safe persistent proof store: a write-ahead
//!   journal of per-record checksummed frames fsynced by a group-commit
//!   leader before the client is acknowledged, folded into an atomic
//!   snapshot by background compaction; loaded leniently so a corrupted
//!   file or torn journal tail degrades to replaying the valid prefix,
//!   never a panic or a wrong assertion.
//! * [`crash`] — deterministic crash-point injection (`--crash-at
//!   SITE:N`): named abort sites on every durability boundary, so the
//!   crash sweep can kill the daemon between any two steps and assert
//!   what a restart recovers.
//! * [`server`] — the daemon: bounded-concurrency worker pool over a
//!   `TcpListener`, admission control with explicit `busy` shedding,
//!   panic quarantine, deadline/step budgets per request, and
//!   SIGINT/SIGTERM draining.
//! * [`client`] — a small blocking client used by `seqver submit`, the
//!   benches and the tests.
//!
//! Everything is `std`-only: sockets are `std::net`, concurrency is the
//! worker-thread idiom of `gemcutter::portfolio`, persistence rides on
//! `gemcutter::snapshot`'s atomic durable writes.

pub mod certfault;
pub mod client;
pub mod crash;
pub mod proto;
pub mod server;
pub mod store;
