//! **Figure 1(c)**: proof size over the number of threads for the
//! bluetooth driver, comparing the `seq` preference order (red circles in
//! the paper), `lockstep` (blue +) and three random orders (×).
//!
//! Run: `cargo run --release -p bench --bin fig1c [MAX_THREADS]`

use bench_suite::generators::bluetooth;
use gemcutter::verify::{verify, Verdict, VerifierConfig};
use smt::term::TermPool;

fn main() {
    let max_threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("Figure 1(c): proof size over # user threads (bluetooth driver)\n");
    let configs = [
        VerifierConfig::gemcutter_seq(),
        VerifierConfig::gemcutter_lockstep(),
        VerifierConfig::gemcutter_random(1),
        VerifierConfig::gemcutter_random(2),
        VerifierConfig::gemcutter_random(3),
    ];
    print!("{:>8}", "threads");
    for c in &configs {
        print!(" {:>18}", c.name);
    }
    println!("   (cells: proof size / rounds)");
    let mut seq_sizes = Vec::new();
    for n in 2..=max_threads {
        print!("{n:>8}");
        for config in &configs {
            let mut pool = TermPool::new();
            let p = cpl::compile(&bluetooth(n), &mut pool).expect("bluetooth compiles");
            let outcome = verify(&mut pool, &p, config);
            match outcome.verdict {
                Verdict::Correct => {
                    print!(
                        " {:>12} / {:>3}",
                        outcome.stats.proof_size, outcome.stats.rounds
                    );
                    if config.name == "gemcutter-seq" {
                        seq_sizes.push(outcome.stats.proof_size);
                    }
                }
                Verdict::Incorrect { .. } => print!(" {:>18}", "BUG?!"),
                Verdict::GaveUp(_) => print!(" {:>18}", "gave-up"),
            }
        }
        println!();
    }
    println!();
    println!("Paper shape: different preference orders give substantially different proof sizes;");
    println!("with conditional commutativity the seq-order proof grows only mildly with n");
    println!("(the paper's tool reports a constant 12 assertions / 3 rounds).");
    if seq_sizes.len() >= 2 {
        let growth = seq_sizes.last().unwrap() - seq_sizes[0];
        println!(
            "Measured seq-order proof sizes: {seq_sizes:?} (total growth {growth} over {} instances)",
            seq_sizes.len()
        );
    }
}
