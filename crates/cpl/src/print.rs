//! Pretty-printer: renders an [`Ast`] back to parseable CPL source.
//!
//! `parse(print(ast)) == ast` (up to expression parenthesization, which
//! the printer makes explicit) — checked by the round-trip property test.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a full compilation unit as CPL source.
pub fn to_source(ast: &Ast) -> String {
    let mut out = String::new();
    for g in &ast.globals {
        let _ = writeln!(out, "var {};", decl(g));
    }
    if let Some(pre) = &ast.requires {
        let _ = writeln!(out, "requires {};", expr(pre));
    }
    if let Some(post) = &ast.ensures {
        let _ = writeln!(out, "ensures {};", expr(post));
    }
    for t in &ast.threads {
        let _ = writeln!(out, "thread {} {{", t.name);
        for l in &t.locals {
            let _ = writeln!(out, "    local {};", decl(l));
        }
        for s in &t.body {
            stmt(&mut out, s, 1);
        }
        out.push_str("}\n");
    }
    for s in &ast.spawns {
        if s.count == 1 {
            let _ = writeln!(out, "spawn {};", s.template);
        } else {
            let _ = writeln!(out, "spawn {} * {};", s.template, s.count);
        }
    }
    out
}

fn decl(v: &VarDecl) -> String {
    let init = match &v.init {
        Init::Const(k) if *k < 0 => format!(" = (0 - {})", -k),
        Init::Const(k) => format!(" = {k}"),
        Init::ConstBool(b) => format!(" = {b}"),
        Init::Nondet => " = *".to_owned(),
    };
    format!("{}: {}{init}", v.name, v.ty)
}

/// Fully parenthesized expression rendering (round-trip safe).
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(n) if *n < 0 => format!("(0 - {})", -n),
        Expr::Int(n) => n.to_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Var(v) => v.clone(),
        Expr::Neg(inner) => format!("(-{})", expr(inner)),
        Expr::Not(inner) => format!("(!{})", expr(inner)),
        Expr::Bin(op, a, b) => format!("({} {} {})", expr(a), op.symbol(), expr(b)),
        Expr::Nondet => "*".to_owned(),
    }
}

fn stmt(out: &mut String, s: &Stmt, depth: usize) {
    let pad = "    ".repeat(depth);
    match s {
        Stmt::Assign(x, e) => {
            let _ = writeln!(out, "{pad}{x} := {};", expr(e));
        }
        Stmt::Havoc(x) => {
            let _ = writeln!(out, "{pad}havoc {x};");
        }
        Stmt::Assume(e) => {
            let _ = writeln!(out, "{pad}assume {};", expr(e));
        }
        Stmt::Assert(e) => {
            let _ = writeln!(out, "{pad}assert {};", expr(e));
        }
        Stmt::Skip => {
            let _ = writeln!(out, "{pad}skip;");
        }
        Stmt::If(c, then_branch, else_branch) => {
            let _ = writeln!(out, "{pad}if ({}) {{", expr(c));
            for s in then_branch {
                stmt(out, s, depth + 1);
            }
            if else_branch.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_branch {
                    stmt(out, s, depth + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::While(c, body) => {
            let _ = writeln!(out, "{pad}while ({}) {{", expr(c));
            for s in body {
                stmt(out, s, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Atomic(body) => {
            let _ = writeln!(out, "{pad}atomic {{");
            for s in body {
                stmt(out, s, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trips_bluetooth_style_source() {
        let src = r#"
            var pendingIo: int = 1;
            var stoppingFlag: bool = false;
            thread user {
                local n: int = *;
                while (*) {
                    atomic { assume !stoppingFlag; pendingIo := pendingIo + 1; }
                    if (pendingIo == 0) { n := n - 1; } else { skip; }
                }
            }
            spawn user * 3;
        "#;
        let ast = parse(src).unwrap();
        let printed = to_source(&ast);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(ast, reparsed, "\n{printed}");
    }

    #[test]
    fn negative_literals_round_trip() {
        let src = "var x: int = 0; thread t { x := 0 - 5; assume x < 0 - 1; } spawn t;";
        let ast = parse(src).unwrap();
        let printed = to_source(&ast);
        assert_eq!(ast, parse(&printed).unwrap());
    }

    #[test]
    fn requires_ensures_round_trip() {
        let src =
            "var x: int; requires x >= 0 && x <= 9; ensures x == 1; thread t { x := 1; } spawn t;";
        let ast = parse(src).unwrap();
        let printed = to_source(&ast);
        assert_eq!(ast, parse(&printed).unwrap());
    }
}
