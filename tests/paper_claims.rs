//! Direct checks of the paper's headline claims on the motivating example
//! and on the theory (§2, §4–§7).

use seqver::automata::explore::accepted_words;
use seqver::bench_suite::generators::{bluetooth, bluetooth_buggy};
use seqver::cpl;
use seqver::gemcutter::verify::{verify, Verdict, VerifierConfig};
use seqver::program::commutativity::{CommutativityLevel, CommutativityOracle};
use seqver::program::concurrent::Spec;
use seqver::reduction::mazurkiewicz::{check_reduction_minimal, check_reduction_sound};
use seqver::reduction::order::{LockstepOrder, PreferenceOrder, RandomOrder, SeqOrder};
use seqver::reduction::reduce::{reduction_automaton, ReductionConfig};
use seqver::smt::TermPool;

/// §2: the corrected bluetooth driver is verified for every preference
/// order, and under the lockstep order the number of refinement rounds
/// stays constant as users are added (the paper reports a constant 3
/// rounds / 12 assertions for its tool).
#[test]
fn bluetooth_lockstep_rounds_stay_constant() {
    let mut rounds = Vec::new();
    for n in 1..=4usize {
        let mut pool = TermPool::new();
        let p = cpl::compile(&bluetooth(n), &mut pool).unwrap();
        let outcome = verify(&mut pool, &p, &VerifierConfig::gemcutter_lockstep());
        assert!(outcome.verdict.is_correct(), "n={n}: {:?}", outcome.verdict);
        rounds.push(outcome.stats.rounds);
    }
    let min = *rounds.iter().min().unwrap();
    let max = *rounds.iter().max().unwrap();
    assert!(
        max - min <= 1,
        "lockstep rounds should stay (near-)constant, got {rounds:?}"
    );
}

/// §2: the original KISS driver's bug is found, and the witness ends in
/// the failing assert.
#[test]
fn bluetooth_bug_is_found_with_failing_assert_witness() {
    let mut pool = TermPool::new();
    let p = cpl::compile(&bluetooth_buggy(1), &mut pool).unwrap();
    let outcome = verify(&mut pool, &p, &VerifierConfig::gemcutter_seq());
    let Verdict::Incorrect { trace } = &outcome.verdict else {
        panic!("KISS bug not found: {:?}", outcome.verdict);
    };
    let last = *trace.last().expect("nonempty witness");
    assert!(
        p.statement(last).label().contains("fail"),
        "witness must end in the failing assert edge"
    );
}

/// §4/Thm 5.3 + Thm 6.6 on a program with *conditional* structure: every
/// preference order yields a sound and minimal reduction of the product
/// language (bounded check).
#[test]
fn reductions_of_cpl_programs_are_sound_and_minimal() {
    let source = r#"
        var a: int = 0;
        var b: int = 0;
        thread left  { a := 1; a := 2; }
        thread right { b := 1; b := 2; }
        spawn left;
        spawn right;
    "#;
    let mut pool = TermPool::new();
    let p = cpl::compile(source, &mut pool).unwrap();
    let product = p.explicit_product(Spec::PrePost);
    let full_words = accepted_words(&product, 4);
    assert_eq!(full_words.len(), 6, "C(4,2) interleavings");
    let orders: Vec<Box<dyn PreferenceOrder>> = vec![
        Box::new(SeqOrder::new()),
        Box::new(LockstepOrder::new()),
        Box::new(RandomOrder::new(7)),
        Box::new(RandomOrder::new(8)),
    ];
    for order in &orders {
        let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
        let red = reduction_automaton(
            &mut pool,
            &p,
            Spec::PrePost,
            order.as_ref(),
            &mut oracle,
            ReductionConfig::default(),
        );
        let red_words = accepted_words(&red, 4);
        let commute = |x, y| p.thread_of(x) != p.thread_of(y);
        check_reduction_sound(&full_words, &red_words, commute)
            .unwrap_or_else(|w| panic!("{}: unsound, missing {w:?}", order.name()));
        check_reduction_minimal(&red_words, commute)
            .unwrap_or_else(|(u, v)| panic!("{}: redundant {u:?}/{v:?}", order.name()));
        assert_eq!(
            red_words.len(),
            1,
            "{}: full commutativity → one class",
            order.name()
        );
    }
}

/// §7: proof-sensitive commutativity never changes verdicts, only costs.
#[test]
fn proof_sensitivity_preserves_verdicts() {
    for n in 1..=3usize {
        let mut pool = TermPool::new();
        let p = cpl::compile(&bluetooth(n), &mut pool).unwrap();
        let with_ps = verify(&mut pool, &p, &VerifierConfig::gemcutter_seq());
        let mut pool2 = TermPool::new();
        let p2 = cpl::compile(&bluetooth(n), &mut pool2).unwrap();
        let without_ps = verify(
            &mut pool2,
            &p2,
            &VerifierConfig::gemcutter_seq().without_proof_sensitivity(),
        );
        assert!(with_ps.verdict.is_correct());
        assert!(without_ps.verdict.is_correct());
    }
}

/// §2's conditional commutativity fact, checked directly: `enter` of one
/// user and the `exit` block of another commute under `pendingIo > 1` but
/// not unconditionally.
#[test]
fn enter_exit_conditional_commutativity() {
    let mut pool = TermPool::new();
    let p = cpl::compile(&bluetooth(2), &mut pool).unwrap();
    // Find an `enter` atomic of thread 0 and an `exit` atomic of thread 1.
    let enter = p
        .letters()
        .find(|&l| p.thread_of(l).index() == 0 && p.statement(l).label().contains("pendingIo + 1"))
        .expect("enter letter");
    let exit = p
        .letters()
        .find(|&l| p.thread_of(l).index() == 1 && p.statement(l).label().contains("pendingIo - 1"))
        .expect("exit letter");
    let mut oracle = CommutativityOracle::new(CommutativityLevel::Semantic);
    assert!(
        !oracle.commute(&mut pool, &p, enter, exit),
        "enter/exit must not commute unconditionally"
    );
    let pending = pool.var("pendingIo");
    let gt1 = pool.ge_const(pending, 2);
    assert!(
        oracle.commute_under(&mut pool, &p, gt1, enter, exit),
        "enter/exit commute under pendingIo > 1 (§2)"
    );
}

/// The baseline and GemCutter agree on verdicts wherever both conclude.
#[test]
fn baseline_and_gemcutter_agree() {
    for src in [bluetooth(1), bluetooth_buggy(1)] {
        let mut pool = TermPool::new();
        let p = cpl::compile(&src, &mut pool).unwrap();
        let gem = verify(&mut pool, &p, &VerifierConfig::gemcutter_seq());
        let mut pool2 = TermPool::new();
        let p2 = cpl::compile(&src, &mut pool2).unwrap();
        let auto = verify(&mut pool2, &p2, &VerifierConfig::automizer());
        assert_eq!(
            gem.verdict.is_correct(),
            auto.verdict.is_correct(),
            "verdict disagreement"
        );
    }
}
