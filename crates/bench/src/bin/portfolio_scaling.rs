//! **Portfolio scaling**: wall-clock of the multi-threaded shared-proof
//! portfolio ([`gemcutter::portfolio::parallel_verify`]) at 1, 2 and 4
//! engines vs. the single-threaded adaptive portfolio on the multi-round
//! corpus benchmarks (those where refinement needs several rounds, so
//! there are assertions worth sharing).
//!
//! Run: `cargo run --release -p bench --bin portfolio_scaling`
//! (`SEQVER_QUICK=1` restricts to the small instances.)

use bench_suite::Benchmark;
use gemcutter::govern::Category;
use gemcutter::portfolio::{adaptive_verify, default_portfolio, parallel_verify, ParallelConfig};
use gemcutter::verify::{verify, Verdict, VerifierConfig};
use smt::term::TermPool;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Engine counts to scale over (prefixes of the §8 portfolio).
const ENGINE_COUNTS: [usize; 3] = [1, 2, 4];

/// Per-engine DFS worker counts for the `--dfs-threads` matrix.
const DFS_THREADS: [usize; 3] = [1, 2, 4];

/// Engines in the parallel-portfolio row of the matrix (kept small so
/// engines × dfs-threads stays within a 4-core CI runner's oversubscription
/// tolerance: 2 engines × 4 DFS workers = 8 threads).
const MATRIX_ENGINES: usize = 2;

/// A benchmark belongs to the "large state space" speedup subset when the
/// 1-thread baseline visits at least this many proof-check states — below
/// that, spawn/steal overhead dominates and per-benchmark wall-clock is
/// noise. Falls back to the whole measured set when the subset is empty.
const LARGE_VISITED: usize = 2_000;

/// A benchmark is "multi-round" when the adaptive baseline needs at least
/// this many refinement rounds — otherwise there is nothing to parallelize.
const MIN_ROUNDS: usize = 4;

fn main() {
    let corpus = bench::corpus();
    let configs = default_portfolio();
    println!("Portfolio scaling: adaptive (1 thread) vs parallel (n threads)\n");
    print!("  {:24} {:>9} {:>7}", "benchmark", "adaptive", "rounds");
    for n in ENGINE_COUNTS {
        print!(" {:>11}", format!("par({n})"));
    }
    println!(" {:>9} {:>8} {:>16}", "speedup", "qc-hit", "give-up");

    let mut parallel4_wins = 0usize;
    let mut measured = 0usize;
    let mut give_ups: BTreeMap<Category, usize> = BTreeMap::new();
    for b in &corpus {
        // Baseline: single-threaded adaptive portfolio over a shared proof.
        let mut pool = TermPool::new();
        let p = b.compile(&mut pool);
        let t0 = Instant::now();
        let (adaptive, _) = adaptive_verify(&mut pool, &p, &configs, 600);
        let adaptive_time = t0.elapsed();
        if let Verdict::GaveUp(g) = &adaptive.verdict {
            // Inconclusive: record the resource category instead of timings.
            *give_ups.entry(g.category).or_insert(0) += 1;
            let dashes = ENGINE_COUNTS.map(|_| format!(" {:>11}", "-")).concat();
            println!(
                "  {:24} {:>9} {:>7}{dashes} {:>9} {:>8} {:>16}",
                b.name,
                "-",
                adaptive.stats.rounds,
                "-",
                "-",
                g.category.name()
            );
            continue;
        }
        if adaptive.stats.rounds < MIN_ROUNDS {
            continue; // trivial: no sharing to measure
        }
        measured += 1;

        let mut times: Vec<Duration> = Vec::new();
        // Hit rate of the widest parallel run: workers share one cache, so
        // this shows the cross-engine reuse the scaling column buys.
        let mut widest_hit_rate = f64::NAN;
        for &n in &ENGINE_COUNTS {
            let mut pool = TermPool::new();
            let p = b.compile(&mut pool);
            let t0 = Instant::now();
            let result = parallel_verify(&pool, &p, &configs[..n], &ParallelConfig::default());
            times.push(t0.elapsed());
            widest_hit_rate = result.outcome.stats.qcache_hit_rate();
            assert_eq!(
                result.outcome.verdict.is_correct(),
                adaptive.verdict.is_correct(),
                "parallel({n}) disagrees with adaptive on {}",
                b.name
            );
        }
        let par4 = *times.last().expect("nonempty");
        if par4 < adaptive_time {
            parallel4_wins += 1;
        }
        print!(
            "  {:24} {:>8.1}ms {:>7}",
            b.name,
            adaptive_time.as_secs_f64() * 1e3,
            adaptive.stats.rounds
        );
        for t in &times {
            print!(" {:>9.1}ms", t.as_secs_f64() * 1e3);
        }
        println!(
            " {:>8.2}x {:>7.0}% {:>16}",
            adaptive_time.as_secs_f64() / par4.as_secs_f64().max(1e-9),
            widest_hit_rate * 100.0,
            "-"
        );
    }
    println!();
    if give_ups.is_empty() {
        println!("give-ups by category: none");
    } else {
        let tally: Vec<String> = give_ups
            .iter()
            .map(|(cat, n)| format!("{}={n}", cat.name()))
            .collect();
        println!("give-ups by category: {}", tally.join(" "));
    }
    println!(
        "parallel(4) beat the single-threaded adaptive portfolio on {parallel4_wins}/{measured} multi-round benchmarks"
    );
    assert!(
        measured == 0 || parallel4_wins > 0,
        "expected parallel(4) to win at least one multi-round benchmark"
    );

    dfs_matrix(&corpus, &configs);
}

/// One aggregated cell of the engines × dfs-threads matrix.
struct Cell {
    mode: &'static str,
    threads: usize,
    /// Every benchmark matched the 1-thread baseline's verdict and round
    /// count (asserted per benchmark too — a false cell means the asserts
    /// were compiled out, so CI still gates on the JSON).
    identity: bool,
    total: Duration,
    visited: usize,
    steals: usize,
}

impl Cell {
    fn json(&self) -> String {
        format!(
            "    {{\"mode\": \"{}\", \"dfs_threads\": {}, \"identity\": {}, \
             \"total_ms\": {:.3}, \"visited\": {}, \"steals\": {}}}",
            self.mode,
            self.threads,
            self.identity,
            self.total.as_secs_f64() * 1e3,
            self.visited,
            self.steals,
        )
    }
}

/// The `--dfs-threads` matrix: sequential single-engine vs deterministic
/// 2-engine parallel portfolio, each at 1/2/4 DFS workers per engine.
/// Verdicts and round counts must be identical down every column (the
/// parallel DFS is a scout — conclusive results are re-derived on the
/// canonical sequential path), which is asserted per benchmark and
/// recorded per cell in `BENCH_pardfs.json` for the CI jq gate. Speedup
/// is *reported*, not asserted: this binary must also pass on single-core
/// machines, so the `speedup_4t >= 1.5` gate lives in CI where the runner
/// shape is known.
fn dfs_matrix(corpus: &[Benchmark], configs: &[VerifierConfig]) {
    println!();
    println!("DFS-threads matrix: verdict/round identity and scaling per engine mode\n");
    print!("  {:10} {:>4}", "mode", "dfs");
    println!(
        " {:>10} {:>10} {:>9} {:>9}",
        "total", "visited", "steals", "identity"
    );

    // Baselines per mode at 1 thread: (verdict-is-correct, rounds) per
    // benchmark, indexed in corpus order. `None` marks give-ups/trivial
    // benchmarks excluded from the comparison.
    let mut cells: Vec<Cell> = Vec::new();
    let mut seq_baseline: Vec<Option<(bool, usize, usize)>> = Vec::new();
    let mut par_baseline: Vec<Option<(bool, usize)>> = Vec::new();
    for &mode in &["seq", "par2"] {
        for &t in &DFS_THREADS {
            let mut cell = Cell {
                mode,
                threads: t,
                identity: true,
                total: Duration::ZERO,
                visited: 0,
                steals: 0,
            };
            for (i, b) in corpus.iter().enumerate() {
                let mut pool = TermPool::new();
                let p = b.compile(&mut pool);
                let t0 = Instant::now();
                let (correct, rounds, visited, steals, gave_up) = match mode {
                    "seq" => {
                        let cfg = VerifierConfig::gemcutter_seq().with_dfs_threads(t);
                        let out = verify(&mut pool, &p, &cfg);
                        (
                            out.verdict.is_correct(),
                            out.stats.rounds,
                            out.stats.visited_states,
                            out.stats.dfs_steals,
                            out.verdict.give_up().is_some(),
                        )
                    }
                    _ => {
                        let members: Vec<VerifierConfig> = configs[..MATRIX_ENGINES]
                            .iter()
                            .map(|c| c.clone().with_dfs_threads(t))
                            .collect();
                        let pcfg = ParallelConfig {
                            deterministic: true,
                            ..ParallelConfig::default()
                        };
                        let r = parallel_verify(&pool, &p, &members, &pcfg);
                        (
                            r.outcome.verdict.is_correct(),
                            r.outcome.stats.rounds,
                            r.outcome.stats.visited_states,
                            r.outcome.stats.dfs_steals,
                            r.outcome.verdict.give_up().is_some(),
                        )
                    }
                };
                cell.total += t0.elapsed();
                cell.visited += visited;
                cell.steals += steals;
                if t == 1 {
                    let entry = if gave_up {
                        None
                    } else {
                        Some((correct, rounds))
                    };
                    match mode {
                        "seq" => seq_baseline.push(entry.map(|(c, r)| (c, r, visited))),
                        _ => par_baseline.push(entry),
                    }
                    continue;
                }
                let base = match mode {
                    "seq" => seq_baseline[i].map(|(c, r, _)| (c, r)),
                    _ => par_baseline[i],
                };
                let Some((base_correct, base_rounds)) = base else {
                    continue; // baseline inconclusive: nothing to compare
                };
                if gave_up || correct != base_correct || rounds != base_rounds {
                    cell.identity = false;
                }
                assert!(
                    cell.identity,
                    "{mode}/dfs={t} diverged from the 1-thread baseline on {} \
                     (verdict {correct} vs {base_correct}, rounds {rounds} vs {base_rounds})",
                    b.name
                );
            }
            println!(
                "  {:10} {:>4} {:>8.1}ms {:>10} {:>9} {:>9}",
                cell.mode,
                cell.threads,
                cell.total.as_secs_f64() * 1e3,
                cell.visited,
                cell.steals,
                cell.identity
            );
            cells.push(cell);
        }
    }

    // 4-thread speedup of the single-engine sequential mode on the
    // large-state-space subset, re-measured per benchmark so small
    // instances don't drown the signal in spawn overhead.
    let large: Vec<usize> = seq_baseline
        .iter()
        .enumerate()
        .filter_map(|(i, e)| e.filter(|&(_, _, v)| v >= LARGE_VISITED).map(|_| i))
        .collect();
    let subset: Vec<usize> = if large.is_empty() {
        (0..corpus.len())
            .filter(|&i| seq_baseline[i].is_some())
            .collect()
    } else {
        large.clone()
    };
    let mut t1 = Duration::ZERO;
    let mut t4 = Duration::ZERO;
    for &i in &subset {
        for (threads, acc) in [(1usize, &mut t1), (4usize, &mut t4)] {
            let mut pool = TermPool::new();
            let p = corpus[i].compile(&mut pool);
            let cfg = VerifierConfig::gemcutter_seq().with_dfs_threads(threads);
            let t0 = Instant::now();
            let out = verify(&mut pool, &p, &cfg);
            *acc += t0.elapsed();
            assert!(
                out.verdict.give_up().is_none(),
                "speedup rerun gave up on {}",
                corpus[i].name
            );
        }
    }
    let speedup_4t = t1.as_secs_f64() / t4.as_secs_f64().max(1e-9);
    println!();
    println!(
        "dfs-threads speedup (seq engine, {} subset of {} benchmarks): {:.2}x at 4 threads \
         ({:.1}ms -> {:.1}ms)",
        if large.is_empty() { "full" } else { "large" },
        subset.len(),
        speedup_4t,
        t1.as_secs_f64() * 1e3,
        t4.as_secs_f64() * 1e3,
    );

    let cells_json: Vec<String> = cells.iter().map(Cell::json).collect();
    let json = format!(
        "{{\n  \"corpus\": \"{}\",\n  \"benchmarks\": {},\n  \"identity\": {},\n  \
         \"speedup_4t\": {speedup_4t:.4},\n  \"speedup_subset\": \"{}\",\n  \
         \"speedup_subset_size\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        if std::env::var("SEQVER_QUICK").is_ok() {
            "quick"
        } else {
            "full"
        },
        corpus.len(),
        cells.iter().all(|c| c.identity),
        if large.is_empty() { "full" } else { "large" },
        subset.len(),
        cells_json.join(",\n"),
    );
    std::fs::write("BENCH_pardfs.json", json).expect("write BENCH_pardfs.json");
    println!("wrote BENCH_pardfs.json");
}
