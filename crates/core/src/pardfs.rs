//! Work-stealing parallel proof-check DFS (ROADMAP item 3).
//!
//! The portfolio parallelizes *across* preference orders; this module
//! parallelizes *within* one engine's proof-coverage check. N workers
//! traverse the reduction cooperatively:
//!
//! * each worker owns a deque of edge tasks — it pushes and pops at the
//!   back (so locally the traversal stays depth-first in preference
//!   order), and idle workers steal from the *front* of a victim's deque,
//!   which holds the least-preferred edges, i.e. exactly the subtrees the
//!   owner would reach last;
//! * the visited set and the cross-round [`UselessCache`] are sharded
//!   16 ways behind `Mutex`es (the `smt::qcache` pattern) and shared by
//!   all workers;
//! * each worker runs on its own [`TermPool`] clone — sharing the query
//!   cache and resource governor like portfolio workers do — and
//!   discharges Hoare obligations thread-locally. The engine's proof
//!   assertions are published to helper pools through the `ExportedTerm`
//!   transfer path *in order*, so assertion indices agree across workers
//!   and the canonical sorted assertion-index set is a valid cross-worker
//!   state key even though per-pool `ProofStateId`s diverge.
//!
//! # Determinism: scout + canonical replay
//!
//! The parallel traversal is a *scout*: it runs entirely on helper
//! clones — the engine's own pool, proof automaton and cross-round
//! useless-cache are never touched — and decides whether an uncovered
//! trace exists, racing all workers and stopping at the first hit. The
//! scout's answer is schedule-dependent in two ways that must not leak:
//! *which* counterexample it finds, and *in which order* it interns
//! proof states (certificates renumber states densely in interning
//! order, so interning order is part of the certificate bytes).
//!
//! So for every conclusive scout outcome, [`routed_check_proof`] replays
//! the sequential DFS on the engine's own state — same proof automaton,
//! same persistent useless-cache — and reports *its* result. The replay
//! is what `--dfs-threads 1` would have executed, byte for byte:
//! verdicts, traces, round counts, proof-state interning order and
//! certificate text are pure functions of (program, proof, order),
//! independent of thread count and steal schedule.
//!
//! The speedup comes from what the scout leaves behind: its workers
//! share the engine's query cache, so by the time the replay runs, the
//! Hoare checks, commutativity queries and annotation successors it
//! needs are warm — the replay is roughly one round of pure graph
//! traversal (the same economics as `record_reduction`'s re-walk),
//! while the solver work that dominates a cold round was done by N
//! workers concurrently.
//!
//! Soundness does not rest on the scout at all — the replay re-derives
//! the verdict — but the scout's shared useless-cache marks must still
//! be sound, because later *scout* rounds consult them: a mark is
//! recorded only when a subtree was fully explored without finding a
//! counterexample, which is sound under the current (hence any
//! stronger) proof — exactly the sequential invariant. Tasks abandoned
//! when the scout stops early never finalize their ancestors, so no
//! unsound mark is ever recorded.
//!
//! # Resource accounting
//!
//! Only the canonical sequential pass charges [`Category::DfsStates`]
//! (and checks the cumulative `stats.visited` bound) — the scout polls
//! the governor for deadlines, cancellation and sticky trips but counts
//! its own states against a *fresh* per-round `max_visited` budget and
//! charges nothing. Run-wide `dfs-states` step budgets and injected
//! fault plans therefore fire at exactly the same charge index at every
//! thread count, which is what keeps verdicts and certificates
//! byte-identical across `--dfs-threads` even near a resource boundary.
//!
//! The one caveat (shared with the portfolio's `wall_clock_budget`):
//! when the `max_visited` bound, the wall-clock deadline or a solver-side
//! governor budget trips *mid-scout*, the scout's inconclusive result is
//! returned directly (there is nothing deterministic to replay), and the
//! point of interruption depends on the schedule — runs near a resource
//! boundary may give up where an unbounded run would have concluded.
//! Verdicts can only degrade to "inconclusive", never flip.
//!
//! [`Category::DfsStates`]: crate::govern::Category::DfsStates

use crate::check::{check_proof, CheckConfig, CheckResult, CheckStats, UselessCache};
use crate::proof::ProofAutomaton;
use automata::bitset::BitSet;
use program::commutativity::CommutativityOracle;
use program::concurrent::{LetterId, ProductState, Program, Spec};
use reduction::order::{OrderContext, PreferenceOrder};
use reduction::persistent::{MembraneMode, PersistentSets};
use smt::term::{TermId, TermPool};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shard count for the visited set and the shared useless-cache; matches
/// `smt::qcache`.
const NUM_SHARDS: usize = 16;

/// Pool-independent identity of a DFS state: product location, canonical
/// sorted assertion-index set, sleep set, order context. Workers import
/// the engine's assertions in the same order, so index sets — unlike
/// `ProofStateId`s — agree across pools.
type ParKey = (ProductState, Arc<Vec<u32>>, BitSet, OrderContext);

fn shard_of<T: Hash + ?Sized>(key: &T) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % NUM_SHARDS
}

/// Status of a state in the shared visited set. `Claimed` plays the role
/// of the sequential `OnStack`: some worker is still exploring the state,
/// so an edge reaching it may close a cycle and taints its source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    Claimed,
    DoneClean,
    DoneTainted,
}

struct SharedVisited {
    shards: Vec<Mutex<HashMap<ParKey, Slot>>>,
}

impl SharedVisited {
    fn new() -> SharedVisited {
        SharedVisited {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Atomically claims `key` for the calling worker. `None` means the
    /// claim succeeded and the caller now owns the state; `Some(slot)`
    /// reports the existing status.
    fn try_claim(&self, key: &ParKey) -> Option<Slot> {
        let mut shard = self.shards[shard_of(key)].lock().unwrap();
        match shard.get(key) {
            Some(&s) => Some(s),
            None => {
                shard.insert(key.clone(), Slot::Claimed);
                None
            }
        }
    }

    fn set(&self, key: &ParKey, slot: Slot) {
        self.shards[shard_of(key)]
            .lock()
            .unwrap()
            .insert(key.clone(), slot);
    }
}

/// Sharded, worker-shared flavour of the cross-round [`UselessCache`].
/// Shards by product state, so a probe locks exactly one shard.
struct SharedUselessCache {
    shards: Vec<Mutex<UselessCache>>,
}

impl SharedUselessCache {
    fn new() -> SharedUselessCache {
        SharedUselessCache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(UselessCache::new()))
                .collect(),
        }
    }

    fn is_useless(
        &self,
        q: &ProductState,
        sleep: &BitSet,
        ctx: OrderContext,
        assertions: &[u32],
    ) -> bool {
        self.shards[shard_of(q)]
            .lock()
            .unwrap()
            .is_useless(q, sleep, ctx, assertions)
    }

    fn mark(&self, q: ProductState, sleep: BitSet, ctx: OrderContext, assertions: Vec<u32>) {
        self.shards[shard_of(&q)]
            .lock()
            .unwrap()
            .mark(q, sleep, ctx, assertions)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }
}

/// Reverse-linked path into a state, for counterexample reconstruction.
struct TraceNode {
    letter: LetterId,
    parent: Option<Arc<TraceNode>>,
}

/// Completion cell of an expanded state: finalized (and, when clean,
/// recorded as useless) once all `pending` children have completed.
struct Node {
    key: ParKey,
    parent: Option<Arc<Node>>,
    pending: AtomicUsize,
    tainted: AtomicBool,
}

/// Everything an edge task needs about its source state. Shared by all
/// the state's outgoing edge tasks.
struct ParentInfo {
    q: ProductState,
    aset: Arc<Vec<u32>>,
    sleep: BitSet,
    ctx: OrderContext,
    enabled: Vec<LetterId>,
    node: Arc<Node>,
    trace: Option<Arc<TraceNode>>,
}

enum Task {
    Root,
    Edge {
        parent: Arc<ParentInfo>,
        letter: LetterId,
    },
}

struct Shared<'a> {
    program: &'a Program,
    spec: Spec,
    order: &'a dyn PreferenceOrder,
    persistent: Option<&'a PersistentSets>,
    config: &'a CheckConfig,
    membrane_mode: MembraneMode,
    n_letters: usize,
    visited: SharedVisited,
    useless: &'a SharedUselessCache,
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks queued or in flight; workers exit when it reaches zero.
    pending: AtomicUsize,
    stop: AtomicBool,
    outcome: Mutex<Option<CheckResult>>,
    visited_count: AtomicUsize,
    cache_skips: AtomicUsize,
    useless_probes: AtomicUsize,
    steals: AtomicUsize,
    tasks_done: Vec<AtomicUsize>,
}

impl Shared<'_> {
    fn push(&self, wid: usize, task: Task) {
        // Increment before queueing so an idle worker can never observe
        // zero while a freshly pushed task is still invisible.
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.deques[wid].lock().unwrap().push_back(task);
    }

    fn pop_or_steal(&self, wid: usize) -> Option<Task> {
        if let Some(t) = self.deques[wid].lock().unwrap().pop_back() {
            return Some(t);
        }
        let n = self.deques.len();
        for i in 1..n {
            let victim = (wid + i) % n;
            if let Some(t) = self.deques[victim].lock().unwrap().pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Records the first terminal outcome and stops all workers.
    fn fail(&self, result: CheckResult) {
        let mut o = self.outcome.lock().unwrap();
        if o.is_none() {
            *o = Some(result);
        }
        self.stop.store(true, Ordering::Relaxed);
    }
}

fn materialize(trace: &Option<Arc<TraceNode>>) -> Vec<LetterId> {
    let mut out = Vec::new();
    let mut cur = trace.clone();
    while let Some(n) = cur {
        out.push(n.letter);
        cur = n.parent.clone();
    }
    out.reverse();
    out
}

/// Propagates one child completion into `node`, finalizing it (and its
/// ancestors, transitively) when the last child completes. Mirrors the
/// sequential pop: a clean finalization records a useless mark, a tainted
/// one only closes the slot.
fn complete(shared: &Shared, node: &Arc<Node>, child_tainted: bool) {
    let mut node = Arc::clone(node);
    let mut tainted = child_tainted;
    loop {
        if tainted {
            node.tainted.store(true, Ordering::Relaxed);
        }
        if node.pending.fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        let t = node.tainted.load(Ordering::Acquire);
        if t {
            shared.visited.set(&node.key, Slot::DoneTainted);
        } else {
            shared.visited.set(&node.key, Slot::DoneClean);
            if !shared.config.freeze_useless {
                shared.useless.mark(
                    node.key.0.clone(),
                    node.key.2.clone(),
                    node.key.3,
                    (*node.key.1).clone(),
                );
            }
        }
        let parent = match &node.parent {
            Some(p) => Arc::clone(p),
            None => return,
        };
        tainted = t;
        node = parent;
    }
}

/// A freshly claimed state: count it, classify it, and either finalize it
/// as a leaf or expand it into edge tasks on the calling worker's deque.
#[allow(clippy::too_many_arguments)]
fn enter_state(
    shared: &Shared,
    wid: usize,
    key: ParKey,
    phi: crate::proof::ProofStateId,
    trace: Option<Arc<TraceNode>>,
    parent_node: Option<Arc<Node>>,
    pool: &mut TermPool,
    proof: &mut ProofAutomaton,
) {
    let finish_clean_leaf = |shared: &Shared, parent: &Option<Arc<Node>>| {
        if let Some(p) = parent {
            complete(shared, p, false);
        }
    };

    let n = shared.visited_count.fetch_add(1, Ordering::Relaxed) + 1;
    if n > shared.config.max_visited {
        shared.fail(CheckResult::LimitReached);
        return;
    }
    if proof.is_bottom(pool, phi) {
        shared.visited.set(&key, Slot::DoneClean);
        finish_clean_leaf(shared, &parent_node);
        return;
    }
    if shared.program.is_accepting(&key.0, shared.spec) {
        let violated = match shared.spec {
            Spec::ErrorOf(_) => true,
            Spec::PrePost => !proof.implies_post(pool, phi, shared.program.post()),
        };
        if violated {
            shared.fail(CheckResult::Counterexample(materialize(&trace)));
            return;
        }
        shared.visited.set(&key, Slot::DoneClean);
        finish_clean_leaf(shared, &parent_node);
        return;
    }
    let enabled = shared.program.enabled(&key.0);
    let mut explore: Vec<LetterId> = match shared.persistent {
        Some(ps) => ps.compute(
            shared.program,
            &key.0,
            shared.order,
            key.3,
            shared.membrane_mode,
        ),
        None => enabled.clone(),
    };
    if shared.config.use_sleep {
        explore.retain(|l| !key.2.contains(l.index()));
    }
    explore.sort_by_key(|&l| shared.order.rank(key.3, l, shared.program));
    if explore.is_empty() {
        shared.visited.set(&key, Slot::DoneClean);
        if !shared.config.freeze_useless {
            shared
                .useless
                .mark(key.0.clone(), key.2.clone(), key.3, (*key.1).clone());
        }
        finish_clean_leaf(shared, &parent_node);
        return;
    }
    let node = Arc::new(Node {
        key: key.clone(),
        parent: parent_node,
        pending: AtomicUsize::new(explore.len()),
        tainted: AtomicBool::new(false),
    });
    let info = Arc::new(ParentInfo {
        q: key.0,
        aset: key.1,
        sleep: key.2,
        ctx: key.3,
        enabled,
        node,
        trace,
    });
    // Push in reverse preference order: the owner pops from the back, so
    // the most-preferred letter runs first (the sequential DFS order)
    // while thieves steal the least-preferred subtrees from the front.
    for &letter in explore.iter().rev() {
        shared.push(
            wid,
            Task::Edge {
                parent: Arc::clone(&info),
                letter,
            },
        );
    }
}

/// One edge task: compute the successor state in the worker's own pool,
/// claim it, and hand it to [`enter_state`] if the claim won.
fn process_edge(
    shared: &Shared,
    wid: usize,
    parent: Arc<ParentInfo>,
    a: LetterId,
    pool: &mut TermPool,
    proof: &mut ProofAutomaton,
    oracle: &mut CommutativityOracle,
) {
    let p = &*parent;
    let phi = proof.state_for_set(pool, (*p.aset).clone());
    let next_q = shared
        .program
        .step(&p.q, a)
        .expect("explored letter is enabled");
    let next_phi = proof.step(pool, shared.program, phi, a);
    let next_ctx = shared.order.step(p.ctx, a, shared.program);
    let next_sleep = if shared.config.use_sleep {
        let condition: TermId = if shared.config.proof_sensitive {
            proof.conjunction(phi)
        } else {
            TermPool::TRUE
        };
        let mut s = BitSet::new(shared.n_letters);
        for &b in &p.enabled {
            let earlier =
                p.sleep.contains(b.index()) || shared.order.less(p.ctx, b, a, shared.program);
            if earlier && oracle.commute_under(pool, shared.program, condition, a, b) {
                s.insert(b.index());
            }
        }
        s
    } else {
        BitSet::new(shared.n_letters)
    };
    let next_aset = Arc::new(proof.assertion_set(next_phi).to_vec());
    let key: ParKey = (next_q, next_aset, next_sleep, next_ctx);
    match shared.visited.try_claim(&key) {
        Some(Slot::DoneClean) => {
            complete(shared, &p.node, false);
            return;
        }
        Some(_) => {
            // Claimed (possible cycle through a live state) or tainted.
            complete(shared, &p.node, true);
            return;
        }
        None => {}
    }
    shared.useless_probes.fetch_add(1, Ordering::Relaxed);
    if shared.useless.is_useless(&key.0, &key.2, key.3, &key.1) {
        shared.cache_skips.fetch_add(1, Ordering::Relaxed);
        shared.visited.set(&key, Slot::DoneClean);
        complete(shared, &p.node, false);
        return;
    }
    let trace = Some(Arc::new(TraceNode {
        letter: a,
        parent: p.trace.clone(),
    }));
    let parent_node = Some(Arc::clone(&p.node));
    enter_state(shared, wid, key, next_phi, trace, parent_node, pool, proof);
}

fn process_task(
    shared: &Shared,
    wid: usize,
    task: Task,
    pool: &mut TermPool,
    proof: &mut ProofAutomaton,
    oracle: &mut CommutativityOracle,
    governor: &crate::govern::ResourceGovernor,
) {
    // The scout deliberately does NOT charge `Category::DfsStates`: the
    // canonical sequential pass (the replay on conclusive rounds, or the
    // `--dfs-threads 1` path) owns that accounting, so run-wide step
    // budgets and fault plans keyed on `dfs-states` fire at exactly the
    // same charge index at every thread count. `poll` still observes the
    // deadline, cooperative cancellation and sticky trips (including
    // those raised by helper solver work) so the scout aborts mid-DFS
    // rather than between rounds.
    if let Err(give_up) = governor.poll() {
        shared.fail(CheckResult::Interrupted(give_up));
        return;
    }
    match task {
        Task::Root => {
            let q0 = shared.program.initial_state();
            let sleep0 = BitSet::new(shared.n_letters);
            let init = pool.and([shared.program.init_formula(), shared.program.pre()]);
            let phi0 = proof.initial_state(pool, init);
            let aset0 = Arc::new(proof.assertion_set(phi0).to_vec());
            shared.useless_probes.fetch_add(1, Ordering::Relaxed);
            if shared.useless.is_useless(&q0, &sleep0, 0, &aset0) {
                shared.cache_skips.fetch_add(1, Ordering::Relaxed);
                return; // drains to Proven
            }
            let key: ParKey = (q0, aset0, sleep0, 0);
            shared.visited.set(&key, Slot::Claimed);
            enter_state(shared, wid, key, phi0, None, None, pool, proof);
        }
        Task::Edge { parent, letter } => {
            process_edge(shared, wid, parent, letter, pool, proof, oracle);
        }
    }
}

fn run_worker(
    shared: &Shared,
    wid: usize,
    pool: &mut TermPool,
    proof: &mut ProofAutomaton,
    oracle: &mut CommutativityOracle,
) {
    let governor = pool.governor().clone();
    let mut idle_spins = 0u32;
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match shared.pop_or_steal(wid) {
            Some(task) => {
                idle_spins = 0;
                shared.tasks_done[wid].fetch_add(1, Ordering::Relaxed);
                process_task(shared, wid, task, pool, proof, oracle, &governor);
                shared.pending.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                if shared.pending.load(Ordering::Acquire) == 0 {
                    return;
                }
                idle_spins += 1;
                if idle_spins < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            }
        }
    }
}

/// Per-helper worker state, persistent across rounds of one engine: a
/// `TermPool` clone (sharing query cache and governor), a mirror of the
/// engine's proof automaton, and a private commutativity oracle.
struct HelperState {
    pool: TermPool,
    proof: ProofAutomaton,
    oracle: CommutativityOracle,
    /// How many engine assertions have been imported so far.
    synced: usize,
}

/// Work-stealing parallel DFS state, owned by one engine and reused
/// across its refinement rounds (the shared useless-cache is the
/// cross-round state; helper pools keep their memo tables warm).
pub struct ParDfs {
    threads: usize,
    helpers: Vec<HelperState>,
    useless: SharedUselessCache,
}

impl ParDfs {
    /// A parallel DFS driver for `threads` workers (min 1; the calling
    /// thread always doubles as worker 0).
    pub fn new(threads: usize) -> ParDfs {
        ParDfs {
            threads: threads.max(1),
            helpers: Vec::new(),
            useless: SharedUselessCache::new(),
        }
    }

    /// Entries in the shared cross-round useless-cache.
    pub fn useless_len(&self) -> usize {
        self.useless.len()
    }

    /// Runs one parallel proof-check round (the scout of the module
    /// docs) entirely on helper clones — the engine's `pool`, `proof`
    /// and `oracle` are read (assertion export, cloning) but never
    /// mutated, so the engine's proof-state interning order stays
    /// exactly what the sequential replay produces. The verdict is
    /// schedule-independent; the counterexample identity and the visit
    /// schedule are not — callers wanting deterministic results go
    /// through [`routed_check_proof`].
    #[allow(clippy::too_many_arguments)]
    pub fn check(
        &mut self,
        pool: &mut TermPool,
        program: &Program,
        spec: Spec,
        order: &dyn PreferenceOrder,
        oracle: &CommutativityOracle,
        persistent: Option<&PersistentSets>,
        proof: &ProofAutomaton,
        config: &CheckConfig,
        stats: &mut CheckStats,
    ) -> CheckResult {
        // One helper per worker — the calling thread drives helpers[0].
        while self.helpers.len() < self.threads {
            self.helpers.push(HelperState {
                pool: pool.clone(),
                proof: ProofAutomaton::new(),
                oracle: oracle.clone(),
                synced: 0,
            });
        }
        // Publish the engine's assertions to every helper, in order: same
        // order means same indices, so canonical assertion-index sets in
        // visited keys agree across workers. Re-sync the governor, solver
        // kind and query-cache handle in case the caller swapped them
        // since the helpers were cloned.
        let exported: Vec<_> = proof.assertions().iter().map(|&t| pool.export(t)).collect();
        for h in &mut self.helpers {
            h.pool.set_governor(pool.governor().clone());
            h.pool.set_solver_kind(pool.solver_kind());
            match pool.query_cache() {
                Some(qc) => {
                    if h.pool.query_cache().is_none() {
                        h.pool.set_query_cache(qc.clone());
                    }
                }
                None => {
                    h.pool.take_query_cache();
                }
            }
            for e in &exported[h.synced..] {
                let id = h.pool.import(e);
                h.proof.add_assertion(id);
            }
            h.synced = exported.len();
        }

        let shared = Shared {
            program,
            spec,
            order,
            persistent,
            config,
            membrane_mode: match spec {
                Spec::PrePost => MembraneMode::Terminal,
                Spec::ErrorOf(t) => MembraneMode::ErrorThread(t),
            },
            n_letters: program.num_letters(),
            visited: SharedVisited::new(),
            useless: &self.useless,
            deques: (0..self.threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            pending: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            outcome: Mutex::new(None),
            visited_count: AtomicUsize::new(0),
            cache_skips: AtomicUsize::new(0),
            useless_probes: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            tasks_done: (0..self.threads).map(|_| AtomicUsize::new(0)).collect(),
        };
        shared.push(0, Task::Root);
        let (h0, rest) = self.helpers.split_first_mut().expect("at least one helper");
        std::thread::scope(|s| {
            for (i, h) in rest.iter_mut().enumerate() {
                let shared = &shared;
                s.spawn(move || {
                    run_worker(shared, i + 1, &mut h.pool, &mut h.proof, &mut h.oracle)
                });
            }
            run_worker(&shared, 0, &mut h0.pool, &mut h0.proof, &mut h0.oracle);
        });

        stats.visited += shared.visited_count.load(Ordering::Relaxed);
        stats.cache_skips += shared.cache_skips.load(Ordering::Relaxed);
        stats.useless_probes += shared.useless_probes.load(Ordering::Relaxed);
        stats.steals += shared.steals.load(Ordering::Relaxed);
        let done: Vec<usize> = shared
            .tasks_done
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        stats.par_tasks += done.iter().sum::<usize>();
        stats.max_worker_tasks = stats
            .max_worker_tasks
            .max(done.iter().copied().max().unwrap_or(0));

        let outcome = shared.outcome.into_inner().unwrap();
        outcome.unwrap_or(CheckResult::Proven)
    }
}

/// Routes one proof-check round. `dfs_threads <= 1` runs the sequential
/// [`check_proof`] byte-for-byte (with `useless` as the cross-round
/// cache). Otherwise the parallel scout runs on helper clones and, when
/// it is conclusive, the sequential DFS replays on the engine's own
/// proof and useless-cache to produce the canonical result — warm query
/// cache, cold graph walk (see module docs). Inconclusive scout results
/// (budget trips, cancellation) are returned directly.
///
/// The replay runs with a fresh counter set so it gets the full
/// `max_visited` budget regardless of how many states the scout counted
/// — `check_proof` aborts on the cumulative `stats.visited`, and letting
/// the scout's count leak into that bound would make rounds needing more
/// than ~half the budget give up at `--dfs-threads > 1` where the
/// sequential path proves them. The merged `stats.visited` still reports
/// both passes.
#[allow(clippy::too_many_arguments)]
pub fn routed_check_proof(
    pool: &mut TermPool,
    program: &Program,
    spec: Spec,
    order: &dyn PreferenceOrder,
    oracle: &mut CommutativityOracle,
    persistent: Option<&PersistentSets>,
    proof: &mut ProofAutomaton,
    useless: &mut UselessCache,
    par: &mut Option<ParDfs>,
    config: &CheckConfig,
    stats: &mut CheckStats,
) -> CheckResult {
    if config.dfs_threads <= 1 {
        let r = check_proof(
            pool, program, spec, order, oracle, persistent, proof, useless, config, stats,
        );
        stats.useless_len = useless.len();
        return r;
    }
    let par = par.get_or_insert_with(|| ParDfs::new(config.dfs_threads));
    let scout = par.check(
        pool, program, spec, order, oracle, persistent, proof, config, stats,
    );
    let result = match scout {
        CheckResult::Proven | CheckResult::Counterexample(_) => {
            let mut replay_stats = CheckStats::default();
            let r = check_proof(
                pool,
                program,
                spec,
                order,
                oracle,
                persistent,
                proof,
                useless,
                config,
                &mut replay_stats,
            );
            stats.visited += replay_stats.visited;
            stats.cache_skips += replay_stats.cache_skips;
            stats.useless_probes += replay_stats.useless_probes;
            r
        }
        inconclusive => inconclusive,
    };
    stats.useless_len = par.useless_len() + useless.len();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::dfa::StateId;

    fn key(q: u32, bits: usize) -> ParKey {
        (
            ProductState(vec![StateId(q)]),
            Arc::new(vec![0, 1]),
            BitSet::new(bits),
            0,
        )
    }

    #[test]
    fn claim_protocol() {
        let v = SharedVisited::new();
        let k = key(0, 4);
        assert_eq!(v.try_claim(&k), None, "first claim wins");
        assert_eq!(v.try_claim(&k), Some(Slot::Claimed));
        v.set(&k, Slot::DoneClean);
        assert_eq!(v.try_claim(&k), Some(Slot::DoneClean));
        let k2 = key(1, 4);
        assert_eq!(v.try_claim(&k2), None, "distinct states are independent");
    }

    #[test]
    fn shared_useless_cache_roundtrip() {
        let c = SharedUselessCache::new();
        let q = ProductState(vec![StateId(7)]);
        let s = BitSet::new(4);
        assert!(!c.is_useless(&q, &s, 0, &[1, 2]));
        c.mark(q.clone(), s.clone(), 0, vec![1, 2]);
        assert!(c.is_useless(&q, &s, 0, &[1, 2, 3]), "superset is subsumed");
        assert!(!c.is_useless(&q, &s, 1, &[1, 2]), "context-sensitive");
        assert_eq!(c.len(), 1);
    }
}
