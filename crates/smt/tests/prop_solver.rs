//! Property tests: the DPLL(T) solver, the simplex/branch-and-bound stack
//! and DNF projection are compared against brute-force enumeration over a
//! bounded integer box.

use proptest::prelude::*;
use smt::cube::Dnf;
use smt::linear::{LinExpr, VarId};
use smt::solver::{check, SatResult};
use smt::term::{TermId, TermPool};

/// Number of variables used by generated formulas.
const NUM_VARS: usize = 3;
/// Enumeration box: each variable ranges over `-BOX..=BOX`.
const BOX: i128 = 4;

/// A tiny recursive formula AST we can generate with proptest and then
/// lower into the pool.
#[derive(Clone, Debug)]
enum F {
    Le(Vec<i128>, i128),
    Eq(Vec<i128>, i128),
    And(Box<F>, Box<F>),
    Or(Box<F>, Box<F>),
    Not(Box<F>),
}

fn coeffs() -> impl Strategy<Value = Vec<i128>> {
    proptest::collection::vec(-3i128..=3, NUM_VARS)
}

fn formula() -> impl Strategy<Value = F> {
    let leaf = prop_oneof![
        (coeffs(), -6i128..=6).prop_map(|(c, k)| F::Le(c, k)),
        (coeffs(), -6i128..=6).prop_map(|(c, k)| F::Eq(c, k)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| F::Not(Box::new(a))),
        ]
    })
}

fn lower(pool: &mut TermPool, vars: &[VarId], f: &F) -> TermId {
    match f {
        F::Le(cs, k) => {
            let e = LinExpr::from_terms(cs.iter().enumerate().map(|(i, &c)| (vars[i], c)), -*k);
            pool.atom(e, smt::Rel::Le0)
        }
        F::Eq(cs, k) => {
            let e = LinExpr::from_terms(cs.iter().enumerate().map(|(i, &c)| (vars[i], c)), -*k);
            pool.atom(e, smt::Rel::Eq0)
        }
        F::And(a, b) => {
            let (ta, tb) = (lower(pool, vars, a), lower(pool, vars, b));
            pool.and([ta, tb])
        }
        F::Or(a, b) => {
            let (ta, tb) = (lower(pool, vars, a), lower(pool, vars, b));
            pool.or([ta, tb])
        }
        F::Not(a) => {
            let t = lower(pool, vars, a);
            pool.not(t)
        }
    }
}

/// Enumerates the box and returns a model if one satisfies `t`.
fn brute_force(pool: &TermPool, vars: &[VarId], t: TermId) -> Option<Vec<i128>> {
    let mut assignment = vec![-BOX; NUM_VARS];
    loop {
        let value = |v: VarId| {
            vars.iter()
                .position(|&w| w == v)
                .map(|i| assignment[i])
                .unwrap_or(0)
        };
        if pool.eval(t, &value) {
            return Some(assignment);
        }
        // Increment odometer.
        let mut i = 0;
        loop {
            if i == NUM_VARS {
                return None;
            }
            assignment[i] += 1;
            if assignment[i] <= BOX {
                break;
            }
            assignment[i] = -BOX;
            i += 1;
        }
    }
}

/// Restricts all variables to the enumeration box so that sat verdicts are
/// comparable to brute force.
fn boxed(pool: &mut TermPool, vars: &[VarId], t: TermId) -> TermId {
    let mut parts = vec![t];
    for &v in vars {
        parts.push(pool.ge_const(v, -BOX));
        parts.push(pool.le_const(v, BOX));
    }
    pool.and(parts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The solver agrees with brute force on the bounded box.
    #[test]
    fn solver_matches_brute_force(f in formula()) {
        let mut pool = TermPool::new();
        let vars: Vec<VarId> = (0..NUM_VARS).map(|i| pool.var(&format!("v{i}"))).collect();
        let t = lower(&mut pool, &vars, &f);
        let boxed_t = boxed(&mut pool, &vars, t);
        let expected = brute_force(&pool, &vars, boxed_t);
        match check(&mut pool, &[boxed_t]) {
            SatResult::Sat(m) => {
                prop_assert!(expected.is_some(), "solver sat but brute force unsat");
                // The model must actually satisfy the formula.
                prop_assert!(pool.eval(boxed_t, &|v| m.value(v)));
            }
            SatResult::Unsat => prop_assert!(expected.is_none(), "solver unsat but {expected:?} works"),
            SatResult::Unknown => {} // conservative verdicts are allowed
        }
    }

    /// Double negation is identity on the interned DAG.
    #[test]
    fn double_negation(f in formula()) {
        let mut pool = TermPool::new();
        let vars: Vec<VarId> = (0..NUM_VARS).map(|i| pool.var(&format!("v{i}"))).collect();
        let t = lower(&mut pool, &vars, &f);
        let nt = pool.not(t);
        let nnt = pool.not(nt);
        prop_assert_eq!(nnt, t);
    }

    /// Negation complements evaluation everywhere in the box.
    #[test]
    fn negation_complements_eval(f in formula(), point in proptest::collection::vec(-BOX..=BOX, NUM_VARS)) {
        let mut pool = TermPool::new();
        let vars: Vec<VarId> = (0..NUM_VARS).map(|i| pool.var(&format!("v{i}"))).collect();
        let t = lower(&mut pool, &vars, &f);
        let nt = pool.not(t);
        let value = |v: VarId| {
            vars.iter().position(|&w| w == v).map(|i| point[i]).unwrap_or(0)
        };
        prop_assert_ne!(pool.eval(t, &value), pool.eval(nt, &value));
    }

    /// DNF conversion preserves evaluation at every box point when exact,
    /// and over-approximates otherwise.
    #[test]
    fn dnf_preserves_or_weakens(f in formula(), point in proptest::collection::vec(-BOX..=BOX, NUM_VARS)) {
        let mut pool = TermPool::new();
        let vars: Vec<VarId> = (0..NUM_VARS).map(|i| pool.var(&format!("v{i}"))).collect();
        let t = lower(&mut pool, &vars, &f);
        let dnf = Dnf::from_term(&pool, t);
        let back = dnf.to_term(&mut pool);
        let value = |v: VarId| {
            vars.iter().position(|&w| w == v).map(|i| point[i]).unwrap_or(0)
        };
        let orig = pool.eval(t, &value);
        let converted = pool.eval(back, &value);
        if dnf.is_exact() {
            prop_assert_eq!(orig, converted);
        } else {
            prop_assert!(!orig || converted, "over-approximation must not lose models");
        }
    }

    /// Eliminating a variable yields a formula implied by the original
    /// (∃-projection is an upper bound) at every box point.
    #[test]
    fn elimination_over_approximates(f in formula(), point in proptest::collection::vec(-BOX..=BOX, NUM_VARS)) {
        let mut pool = TermPool::new();
        let vars: Vec<VarId> = (0..NUM_VARS).map(|i| pool.var(&format!("v{i}"))).collect();
        let t = lower(&mut pool, &vars, &f);
        let dnf = Dnf::from_term(&pool, t);
        let projected = dnf.eliminate(vars[0]);
        let back = projected.to_term(&mut pool);
        let value = |v: VarId| {
            vars.iter().position(|&w| w == v).map(|i| point[i]).unwrap_or(0)
        };
        if pool.eval(t, &value) {
            prop_assert!(pool.eval(back, &value), "projection must contain the original");
        }
    }
}
