//! **Figure 8**: for each benchmark, which preference order analyses it
//! fastest — histogram over `seq`, `lockstep`, `rand(1..3)`, split into
//! correct (blue, hatched in the paper) and incorrect (red) programs.
//!
//! Run: `cargo run --release -p bench --bin fig8`

use bench::run_portfolio;
use bench_suite::Expected;
use gemcutter::verify::Verdict;
use std::collections::BTreeMap;

fn main() {
    let corpus = bench::corpus();
    println!("Figure 8: best preference order per benchmark\n");
    // Full portfolio run: every member runs on every benchmark.
    let results = run_portfolio(&corpus, true);

    let mut correct: BTreeMap<String, usize> = BTreeMap::new();
    let mut incorrect: BTreeMap<String, usize> = BTreeMap::new();
    for (run, members) in &results {
        // Fastest conclusive member.
        let best = members
            .iter()
            .filter(|(_, o)| !matches!(o.verdict, Verdict::GaveUp(_)))
            .min_by(|(_, a), (_, b)| a.stats.time.cmp(&b.stats.time));
        let Some((name, _)) = best else { continue };
        let bucket = if run.expected == Expected::Safe {
            &mut correct
        } else {
            &mut incorrect
        };
        *bucket.entry(name.clone()).or_insert(0) += 1;
    }

    println!("{:24} {:>8} {:>10}", "order", "correct", "incorrect");
    let mut orders: Vec<String> = correct.keys().chain(incorrect.keys()).cloned().collect();
    orders.sort();
    orders.dedup();
    for order in &orders {
        let c = correct.get(order).copied().unwrap_or(0);
        let i = incorrect.get(order).copied().unwrap_or(0);
        let bar_c = "#".repeat(c);
        let bar_i = "x".repeat(i);
        println!("{order:24} {c:>8} {i:>10}   |{bar_c}{bar_i}");
    }
    println!();
    let distinct = orders.len();
    println!(
        "Paper shape: the distribution is relatively even — {distinct} distinct orders win at least one benchmark; no order is always optimal."
    );
}
