//! Language-level operations on DFAs: product, intersection, union,
//! complement, inclusion and equivalence.
//!
//! The proof check of the paper reduces to a language inclusion between the
//! reduction automaton and the Floyd/Hoare proof automaton; [`is_subset_of`]
//! is the offline version of that check, used by tests to validate the
//! on-the-fly algorithm.

use crate::dfa::{Dfa, DfaBuilder, StateId};
use std::collections::HashMap;
use std::hash::Hash;

/// How the product of two DFAs combines acceptance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AcceptMode {
    Both,
    FirstNotSecond,
}

/// Lazy product over the *common* alphabet behaviour of partial DFAs.
///
/// For `AcceptMode::FirstNotSecond` the second automaton is implicitly
/// totalized with a rejecting sink, so the result recognizes
/// `L(a) \ L(b)` — exactly what inclusion checking needs.
fn product<L: Copy + Eq + Ord + Hash>(a: &Dfa<L>, b: &Dfa<L>, mode: AcceptMode) -> Dfa<L> {
    /// Product state: second component `None` is the implicit sink of `b`.
    type PState = (StateId, Option<StateId>);

    let accepting = |a_dfa: &Dfa<L>, b_dfa: &Dfa<L>, (p, q): PState| match mode {
        AcceptMode::Both => q.is_some_and(|q| a_dfa.is_accepting(p) && b_dfa.is_accepting(q)),
        AcceptMode::FirstNotSecond => {
            a_dfa.is_accepting(p) && !q.is_some_and(|q| b_dfa.is_accepting(q))
        }
    };

    let mut builder = DfaBuilder::new();
    let mut ids: HashMap<PState, StateId> = HashMap::new();
    let start: PState = (a.initial(), Some(b.initial()));
    let start_id = builder.add_state(accepting(a, b, start));
    ids.insert(start, start_id);
    let mut work = vec![start];

    while let Some((p, q)) = work.pop() {
        let from = ids[&(p, q)];
        for (l, pt) in a.edges(p) {
            let qt = match (mode, q) {
                (AcceptMode::Both, Some(q)) => match b.step(q, l) {
                    Some(t) => Some(t),
                    // Intersection: dead in `b` means dead overall.
                    None => continue,
                },
                (AcceptMode::Both, None) => continue,
                (AcceptMode::FirstNotSecond, Some(q)) => b.step(q, l),
                (AcceptMode::FirstNotSecond, None) => None,
            };
            let next: PState = (pt, qt);
            let to = match ids.get(&next) {
                Some(&id) => id,
                None => {
                    let id = builder.add_state(accepting(a, b, next));
                    ids.insert(next, id);
                    work.push(next);
                    id
                }
            };
            builder.add_transition(from, l, to);
        }
    }
    builder.build(start_id)
}

/// A DFA for `L(a) ∩ L(b)` (only reachable product states are built).
pub fn intersection<L: Copy + Eq + Ord + Hash>(a: &Dfa<L>, b: &Dfa<L>) -> Dfa<L> {
    product(a, b, AcceptMode::Both)
}

/// A DFA for `L(a) \ L(b)`.
pub fn difference<L: Copy + Eq + Ord + Hash>(a: &Dfa<L>, b: &Dfa<L>) -> Dfa<L> {
    product(a, b, AcceptMode::FirstNotSecond)
}

/// A DFA for the complement of `L(a)` relative to `alphabet*`.
///
/// The automaton is totalized with a sink over `alphabet` first.
pub fn complement<L: Copy + Eq + Ord + Hash>(a: &Dfa<L>, alphabet: &[L]) -> Dfa<L> {
    let mut builder = DfaBuilder::new();
    for q in a.states() {
        let id = builder.add_state(!a.is_accepting(q));
        debug_assert_eq!(id.index(), q.index());
    }
    let sink = builder.add_state(true);
    for l in alphabet {
        builder.add_transition(sink, *l, sink);
    }
    for q in a.states() {
        for &l in alphabet {
            let target = a.step(q, l).unwrap_or(sink);
            builder.add_transition(q, l, target);
        }
    }
    builder.build(a.initial())
}

/// `true` iff `L(a) ⊆ L(b)`.
pub fn is_subset_of<L: Copy + Eq + Ord + Hash>(a: &Dfa<L>, b: &Dfa<L>) -> bool {
    difference(a, b).is_empty()
}

/// `true` iff `L(a) = L(b)`.
pub fn are_equivalent<L: Copy + Eq + Ord + Hash>(a: &Dfa<L>, b: &Dfa<L>) -> bool {
    is_subset_of(a, b) && is_subset_of(b, a)
}

/// A shortest word in `L(a) \ L(b)`, if any — the counterexample to
/// inclusion the refinement loop feeds back to the interpolation engine.
pub fn inclusion_counterexample<L: Copy + Eq + Ord + Hash>(
    a: &Dfa<L>,
    b: &Dfa<L>,
) -> Option<Vec<L>> {
    let diff = product(a, b, AcceptMode::FirstNotSecond);
    crate::explore::shortest_accepted_word(&diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::DfaBuilder;
    use crate::explore::enumerate_words;

    /// Words over {a, b} with an even number of `a`s.
    fn even_a() -> Dfa<char> {
        let mut b = DfaBuilder::new();
        let q0 = b.add_state(true);
        let q1 = b.add_state(false);
        b.add_transition(q0, 'a', q1);
        b.add_transition(q1, 'a', q0);
        b.add_transition(q0, 'b', q0);
        b.add_transition(q1, 'b', q1);
        b.build(q0)
    }

    /// Words over {a, b} ending in `b` (or empty... no: non-empty, last is b).
    fn ends_in_b() -> Dfa<char> {
        let mut b = DfaBuilder::new();
        let q0 = b.add_state(false);
        let q1 = b.add_state(true);
        b.add_transition(q0, 'a', q0);
        b.add_transition(q0, 'b', q1);
        b.add_transition(q1, 'a', q0);
        b.add_transition(q1, 'b', q1);
        b.build(q0)
    }

    #[test]
    fn intersection_semantics() {
        let i = intersection(&even_a(), &ends_in_b());
        for w in enumerate_words(&['a', 'b'], 6) {
            let expect =
                even_a().accepts(w.iter().copied()) && ends_in_b().accepts(w.iter().copied());
            assert_eq!(i.accepts(w.iter().copied()), expect, "word {w:?}");
        }
    }

    #[test]
    fn complement_semantics() {
        let c = complement(&even_a(), &['a', 'b']);
        for w in enumerate_words(&['a', 'b'], 6) {
            assert_eq!(
                c.accepts(w.iter().copied()),
                !even_a().accepts(w.iter().copied()),
                "word {w:?}"
            );
        }
    }

    #[test]
    fn inclusion_holds_for_intersection() {
        let i = intersection(&even_a(), &ends_in_b());
        assert!(is_subset_of(&i, &even_a()));
        assert!(is_subset_of(&i, &ends_in_b()));
        assert!(!is_subset_of(&even_a(), &ends_in_b()));
    }

    #[test]
    fn counterexample_is_shortest() {
        // even_a ⊄ ends_in_b; shortest witness is the empty word
        // (ε has zero 'a's, doesn't end in b).
        let cex = inclusion_counterexample(&even_a(), &ends_in_b()).expect("not included");
        assert_eq!(cex, Vec::<char>::new());
        // ends_in_b ⊄ even_a: shortest is "ab"? "b" has 0 a's → in even_a.
        // "ab" ends in b, has one 'a' → witness of length 2.
        let cex2 = inclusion_counterexample(&ends_in_b(), &even_a()).expect("not included");
        assert_eq!(cex2, vec!['a', 'b']);
    }

    #[test]
    fn equivalence_reflexive_and_distinguishes() {
        assert!(are_equivalent(&even_a(), &even_a()));
        assert!(!are_equivalent(&even_a(), &ends_in_b()));
    }

    #[test]
    fn difference_with_partial_second_operand() {
        // b-automaton accepts only "a"; difference must keep "aa", "b", ...
        let mut bb = DfaBuilder::new();
        let q0 = bb.add_state(false);
        let q1 = bb.add_state(true);
        bb.add_transition(q0, 'a', q1);
        let just_a = bb.build(q0);

        let d = difference(&even_a(), &just_a);
        assert!(d.accepts("".chars()));
        assert!(d.accepts("aa".chars()));
        assert!(d.accepts("b".chars()));
        assert!(!d.accepts("a".chars())); // not in even_a anyway
    }
}
