//! Differential testing of the verification entry points on randomly
//! generated concurrent programs: the plain single-order loop
//! ([`verify`]), the single-threaded shared-proof portfolio
//! ([`adaptive_verify`]) and the multi-threaded parallel portfolio
//! ([`parallel_verify`], deterministic mode) must never contradict each
//! other's conclusive verdicts, and every reported bug trace must replay
//! as feasible under exact trace analysis.

use proptest::prelude::*;
use seqver::automata::bitset::BitSet;
use seqver::automata::dfa::DfaBuilder;
use seqver::gemcutter::interpolate::{
    analyze_trace_with_mode, InterpolationMode, InterpolationStats, TraceResult,
};
use seqver::gemcutter::portfolio::{adaptive_verify, parallel_verify, ParallelConfig};
use seqver::gemcutter::verify::{verify, Verdict, VerifierConfig};
use seqver::program::concurrent::{LetterId, Program, Spec};
use seqver::program::stmt::{SimpleStmt, Statement};
use seqver::program::thread::{Thread, ThreadId};
use seqver::smt::linear::LinExpr;
use seqver::smt::TermPool;

/// A random simple statement description: which variable (0..3, where 0–1
/// are shared between threads) and what operation.
#[derive(Clone, Debug)]
struct StmtDesc {
    var: usize,
    op: u8, // 0: := k, 1: += 1, 2: havoc
}

fn stmt_desc() -> impl Strategy<Value = StmtDesc> {
    (0usize..4, 0u8..3).prop_map(|(var, op)| StmtDesc { var, op })
}

/// 2–3 threads with 1–3 statements each.
fn program_desc() -> impl Strategy<Value = Vec<Vec<StmtDesc>>> {
    proptest::collection::vec(proptest::collection::vec(stmt_desc(), 1..=3), 2..=3)
}

/// Builds the random program with an error guard `assume s0 > bound`
/// appended to thread 0, so every generated program has an asserting
/// thread and the corpus mixes safe and unsafe instances.
fn build_program(pool: &mut TermPool, desc: &[Vec<StmtDesc>], bound: i128) -> Program {
    let mut b = Program::builder("random");
    let shared: Vec<_> = (0..2).map(|i| pool.var(&format!("s{i}"))).collect();
    for &v in &shared {
        b.add_global(v, 0);
    }
    let mut letters_per_thread = Vec::new();
    for (t, stmts) in desc.iter().enumerate() {
        let private: Vec<_> = (0..2).map(|i| pool.var(&format!("p{t}_{i}"))).collect();
        for &v in &private {
            b.add_global(v, 0);
        }
        let mut letters = Vec::new();
        for (s, d) in stmts.iter().enumerate() {
            let var = if d.var < 2 {
                shared[d.var]
            } else {
                private[d.var - 2]
            };
            let stmt = match d.op {
                0 => SimpleStmt::Assign(var, LinExpr::constant(s as i128)),
                1 => SimpleStmt::Assign(var, LinExpr::var(var).add(&LinExpr::constant(1))),
                _ => SimpleStmt::Havoc(var),
            };
            letters.push(b.add_statement(Statement::simple(
                ThreadId(t as u32),
                &format!("t{t}s{s}"),
                stmt,
                pool,
            )));
        }
        letters_per_thread.push(letters);
    }
    let le = pool.le_const(shared[0], bound);
    let violated = pool.not(le);
    let guard = b.add_statement(Statement::simple(
        ThreadId(0),
        "assert-fail",
        SimpleStmt::Assume(violated),
        pool,
    ));
    for (t, letters) in letters_per_thread.iter().enumerate() {
        let mut cfg = DfaBuilder::new();
        let mut prev = cfg.add_state(letters.is_empty());
        let entry = prev;
        for (i, &l) in letters.iter().enumerate() {
            let next = cfg.add_state(i + 1 == letters.len());
            cfg.add_transition(prev, l, next);
            prev = next;
        }
        let mut errors = BitSet::new(letters.len() + 2);
        if t == 0 {
            // Thread 0 carries the assertion: its exit has an edge into an
            // error location guarded by the violated condition.
            let err = cfg.add_state(false);
            cfg.add_transition(prev, guard, err);
            errors.insert(err.index());
        }
        b.add_thread(Thread::new("t", cfg.build(entry), errors));
    }
    b.build(pool)
}

/// The portfolio used by the differential runs (kept small: the random
/// programs are tiny and three orders cover the interesting diversity).
fn configs(seed: u64) -> Vec<VerifierConfig> {
    vec![
        VerifierConfig::gemcutter_seq(),
        VerifierConfig::gemcutter_lockstep(),
        VerifierConfig::gemcutter_random(seed),
    ]
}

/// Replays `trace` through exact feasibility analysis.
fn replay_is_feasible(pool: &mut TermPool, program: &Program, trace: &[LetterId]) -> bool {
    let mut stats = InterpolationStats::default();
    matches!(
        analyze_trace_with_mode(
            pool,
            program,
            trace,
            Spec::ErrorOf(ThreadId(0)),
            InterpolationMode::SpChain,
            &mut stats,
        ),
        TraceResult::Feasible
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn verification_entry_points_agree(
        desc in program_desc(),
        bound in 0i128..4,
        seed in 0u64..100,
    ) {
        let mut pool = TermPool::new();
        let p = build_program(&mut pool, &desc, bound);
        let configs = configs(seed);

        // (name, verdict) from every entry point.
        let mut verdicts: Vec<(String, Verdict)> = Vec::new();
        for config in &configs {
            let outcome = verify(&mut pool, &p, config);
            verdicts.push((format!("verify/{}", config.name), outcome.verdict));
        }
        let (adaptive, _) = adaptive_verify(&mut pool, &p, &configs, 300);
        verdicts.push(("adaptive".to_owned(), adaptive.verdict));
        let pcfg = ParallelConfig { deterministic: true, ..ParallelConfig::default() };
        let parallel = parallel_verify(&pool, &p, &configs, &pcfg);
        verdicts.push(("parallel-det".to_owned(), parallel.outcome.verdict));

        // No two conclusive verdicts may contradict.
        let correct: Vec<&str> = verdicts
            .iter()
            .filter(|(_, v)| matches!(v, Verdict::Correct))
            .map(|(n, _)| n.as_str())
            .collect();
        let incorrect: Vec<&str> = verdicts
            .iter()
            .filter(|(_, v)| matches!(v, Verdict::Incorrect { .. }))
            .map(|(n, _)| n.as_str())
            .collect();
        prop_assert!(
            correct.is_empty() || incorrect.is_empty(),
            "contradiction: {correct:?} proved safe, {incorrect:?} found bugs ({desc:?}, bound {bound})"
        );

        // Every reported bug trace replays as feasible.
        for (name, verdict) in &verdicts {
            if let Verdict::Incorrect { trace } = verdict {
                prop_assert!(
                    replay_is_feasible(&mut pool, &p, trace),
                    "{name}: reported trace does not replay as feasible"
                );
            }
        }
    }

    /// The query cache is a pure memoization layer: with it on or off,
    /// every configuration must produce the identical verdict (including
    /// the counterexample trace), the same number of refinement rounds
    /// and the same final proof size.
    #[test]
    fn qcache_on_off_runs_are_identical(
        desc in program_desc(),
        bound in 0i128..4,
        seed in 0u64..100,
    ) {
        for config in configs(seed) {
            let mut cached_pool = TermPool::new();
            let cached_program = build_program(&mut cached_pool, &desc, bound);
            let cached = verify(&mut cached_pool, &cached_program, &config);

            let mut cold_pool = TermPool::new();
            let cold_program = build_program(&mut cold_pool, &desc, bound);
            let cold_config = config.clone().without_qcache();
            let cold = verify(&mut cold_pool, &cold_program, &cold_config);

            prop_assert_eq!(
                &cached.verdict, &cold.verdict,
                "{}: verdict differs with cache on/off", config.name
            );
            prop_assert_eq!(
                cached.stats.rounds, cold.stats.rounds,
                "{}: round count differs with cache on/off", config.name
            );
            prop_assert_eq!(
                cached.stats.proof_size, cold.stats.proof_size,
                "{}: proof size differs with cache on/off", config.name
            );
            prop_assert_eq!(
                (cold.stats.qcache_hits, cold.stats.qcache_misses),
                (0, 0),
                "{}: cache-off run must not touch the cache", config.name
            );
        }
    }
}
