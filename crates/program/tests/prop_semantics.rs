//! Differential property tests of statement semantics: the concrete
//! interpreter, the SSA relation encoding and the strongest-postcondition
//! engine must agree.
//!
//! For a random statement `s` and a random concrete pre-state `σ`:
//!
//! * every interpreter successor `σ'` satisfies the SSA encoding of `s`
//!   (with pre/post versions pinned to `σ`/`σ'`);
//! * every interpreter successor of a state satisfying `φ` satisfies
//!   `post_image(φ, s)` — i.e. sp over-approximates the concrete step;
//! * if the interpreter has *no* successor (blocking assume), the SSA
//!   encoding is unsatisfiable when pinned to `σ`.

use automata::bitset::BitSet;
use automata::dfa::DfaBuilder;
use program::concurrent::{LetterId, Program};
use program::interp::Interpreter;
use program::stmt::{SimpleStmt, Statement};
use program::thread::{Thread, ThreadId};
use program::var::Versions;
use proptest::prelude::*;
use smt::cube::Dnf;
use smt::linear::{LinExpr, VarId};
use smt::solver::check;
use smt::term::{TermId, TermPool};

const NUM_VARS: usize = 3;

/// Description of one random simple step.
#[derive(Clone, Debug)]
enum StepDesc {
    AssignConst(usize, i128),
    AssignLinear(usize, usize, i128), // x := y + k
    Havoc(usize),
    AssumeLe(usize, i128),
    AssumeEq(usize, usize), // x == y
}

fn step_desc() -> impl Strategy<Value = StepDesc> {
    prop_oneof![
        (0..NUM_VARS, -3i128..=3).prop_map(|(x, k)| StepDesc::AssignConst(x, k)),
        (0..NUM_VARS, 0..NUM_VARS, -2i128..=2)
            .prop_map(|(x, y, k)| StepDesc::AssignLinear(x, y, k)),
        (0..NUM_VARS).prop_map(StepDesc::Havoc),
        (0..NUM_VARS, -2i128..=4).prop_map(|(x, k)| StepDesc::AssumeLe(x, k)),
        (0..NUM_VARS, 0..NUM_VARS).prop_map(|(x, y)| StepDesc::AssumeEq(x, y)),
    ]
}

/// A statement: 1–2 paths, each 1–3 steps (path count > 1 models atomic
/// branching).
fn stmt_desc() -> impl Strategy<Value = Vec<Vec<StepDesc>>> {
    proptest::collection::vec(proptest::collection::vec(step_desc(), 1..=3), 1..=2)
}

fn build(pool: &mut TermPool, desc: &[Vec<StepDesc>], initial: &[i128]) -> (Program, Vec<VarId>) {
    let vars: Vec<VarId> = (0..NUM_VARS).map(|i| pool.var(&format!("x{i}"))).collect();
    let lower = |pool: &mut TermPool, s: &StepDesc| -> SimpleStmt {
        match *s {
            StepDesc::AssignConst(x, k) => SimpleStmt::Assign(vars[x], LinExpr::constant(k)),
            StepDesc::AssignLinear(x, y, k) => {
                SimpleStmt::Assign(vars[x], LinExpr::var(vars[y]).add(&LinExpr::constant(k)))
            }
            StepDesc::Havoc(x) => SimpleStmt::Havoc(vars[x]),
            StepDesc::AssumeLe(x, k) => {
                let g = pool.le_const(vars[x], k);
                SimpleStmt::Assume(g)
            }
            StepDesc::AssumeEq(x, y) => {
                let g = pool.eq(&LinExpr::var(vars[x]), &LinExpr::var(vars[y]));
                SimpleStmt::Assume(g)
            }
        }
    };
    let paths: Vec<Vec<SimpleStmt>> = desc
        .iter()
        .map(|p| p.iter().map(|s| lower(pool, s)).collect())
        .collect();
    let mut b = Program::builder("prop");
    for (i, &v) in vars.iter().enumerate() {
        b.add_global(v, initial[i]);
    }
    let stmt = Statement::atomic(ThreadId(0), "s", paths, pool);
    let letter = b.add_statement(stmt);
    let mut cfg = DfaBuilder::new();
    let entry = cfg.add_state(false);
    let exit = cfg.add_state(true);
    cfg.add_transition(entry, letter, exit);
    b.add_thread(Thread::new("t", cfg.build(entry), BitSet::new(2)));
    (b.build(pool), vars)
}

/// Pins SSA variables to pre/post values.
fn pin(
    pool: &mut TermPool,
    vars: &[VarId],
    versions: &Versions,
    pre: &[i128],
    post: &[i128],
) -> Vec<TermId> {
    let mut out = Vec::new();
    for (i, &v) in vars.iter().enumerate() {
        out.push(pool.eq_const(v, pre[i]));
        let current = versions.current(v);
        if current != v {
            out.push(pool.eq_const(current, post[i]));
        } else {
            // Unwritten: post must equal pre for the state to be a real
            // successor — enforced by the caller's successor states.
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interpreter_successors_satisfy_ssa_encoding(
        desc in stmt_desc(),
        initial in proptest::collection::vec(-2i128..=2, NUM_VARS),
    ) {
        let mut pool = TermPool::new();
        let (p, vars) = build(&mut pool, &desc, &initial);
        let interp = Interpreter::new(&p).with_havoc_domain(vec![-1, 0, 2]);
        let init_state = interp.initial_states().remove(0);
        let succs = interp.step(&pool, &init_state, LetterId(0));

        let mut versions = Versions::new();
        let stmt = p.statement(LetterId(0)).clone();
        let formula = stmt.encode_ssa(&mut pool, &mut versions);

        let has_havoc = desc
            .iter()
            .any(|p| p.iter().any(|s| matches!(s, StepDesc::Havoc(_))));
        if succs.is_empty() && !has_havoc {
            // Blocked: the encoding pinned to the pre-state is unsat.
            // (Only meaningful without havoc — the interpreter explores a
            // finite havoc domain and thus under-approximates.)
            let mut assertions = vec![formula];
            for (i, &v) in vars.iter().enumerate() {
                assertions.push(pool.eq_const(v, initial[i]));
            }
            prop_assert!(
                check(&mut pool, &assertions).is_unsat(),
                "blocked concretely but SSA-satisfiable"
            );
        }
        for succ in &succs {
            let post: Vec<i128> = vars.iter().map(|&v| succ.value(v)).collect();
            let mut assertions = vec![formula];
            assertions.extend(pin(&mut pool, &vars, &versions, &initial, &post));
            prop_assert!(
                check(&mut pool, &assertions).is_sat(),
                "concrete successor {post:?} violates the SSA encoding"
            );
        }
    }

    #[test]
    fn post_image_over_approximates_concrete_step(
        desc in stmt_desc(),
        initial in proptest::collection::vec(-2i128..=2, NUM_VARS),
    ) {
        let mut pool = TermPool::new();
        let (p, vars) = build(&mut pool, &desc, &initial);
        let interp = Interpreter::new(&p).with_havoc_domain(vec![-1, 0, 2]);
        let init_state = interp.initial_states().remove(0);
        let succs = interp.step(&pool, &init_state, LetterId(0));

        // φ = exact initial state.
        let phi = {
            let eqs: Vec<TermId> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| pool.eq_const(v, initial[i]))
                .collect();
            pool.and(eqs)
        };
        let stmt = p.statement(LetterId(0)).clone();
        let state = Dnf::from_term(&pool, phi);
        let (post, _exact) = stmt.post_image(&mut pool, &state);
        let post_term = post.to_term(&mut pool);
        for succ in &succs {
            let value = |v: VarId| succ.value(v);
            prop_assert!(
                pool.eval(post_term, &value),
                "successor escapes post_image: {:?}",
                succ.values
            );
        }
    }
}
